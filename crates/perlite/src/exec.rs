//! The run-time op-tree walker.
//!
//! Mirrors Perl 4's `eval()` recursion: every op node dispatched is one
//! virtual command; node fetches, value-stack traffic, SV flag checks and
//! string⇄number conversions ("shimmering") are all charged against the
//! simulated machine. Scalar and array slots were resolved at compile
//! time, so their accesses are a couple of loads; hash elements pay a full
//! charged hash translation (§3.3's ~210-instruction cost).

use interp_core::{
    CommandSet, Dispatch, DispatchStrategy, Language, Phase, RunStats, TraceSink,
};
use interp_host::{Machine, RoutineId, SimHash, SimStr};
use std::collections::HashMap;

use crate::error::PerlError;
use crate::ops::*;
use crate::parser::parse_program;

/// A Perl scalar value. `Str` holds simulated-memory strings; numeric use
/// of a string (and vice versa) pays a charged conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Value {
    Undef,
    Int(i64),
    Str(SimStr),
}

/// Control flow escaping an op.
enum PFlow {
    Val(Value),
    Last,
    Next,
    Return(Value),
}

struct Routines {
    runops: RoutineId,
    pp_arith: RoutineId,
    pp_string: RoutineId,
    pp_match: RoutineId,
    pp_hash: RoutineId,
    pp_io: RoutineId,
    pp_sub: RoutineId,
    pp_ctrl: RoutineId,
}

/// The Perlite interpreter.
pub struct Perlite<'a, S: TraceSink> {
    m: &'a mut Machine<S>,
    rt: Routines,
    commands: CommandSet,
    prog: Program,
    scalars: Vec<Value>,
    scalar_base: u32,
    arrays: Vec<Vec<Value>>,
    array_regions: Vec<u32>,
    hashes: Vec<SimHash>,
    hash_values: Vec<Value>,
    groups: Vec<Option<SimStr>>,
    files: HashMap<String, i32>,
    /// Dynamic-scope save frames (one per active sub call + a base frame).
    locals: Vec<Vec<(SlotId, Value)>>,
    /// `@_` stacks for active sub calls.
    args: Vec<Vec<Value>>,
    depth: u32,
    /// How hash-element access resolves keys.
    strategy: DispatchStrategy,
    /// Lookup cache for the `InlineCache` tier: `(hash, key content)` →
    /// resolved value slot, modeling a hash-value memo table in front of
    /// the HV (the SV keeps its computed hash; a memo probe replaces the
    /// magic checks, bucket-chain walk, and full key compare). Content
    /// keyed, so dynamically-built keys — regex captures routed through
    /// `%routes` — hit on every repeat.
    hash_ic: HashMap<(HashId, Vec<u8>), Option<u32>>,
}

const ARRAY_REGION: u32 = 4096;

impl<'a, S: TraceSink> Perlite<'a, S> {
    /// Compile `src` (charged as startup/precompilation work, reported
    /// separately in Table 2) and prepare to run it.
    ///
    /// # Errors
    ///
    /// Returns [`PerlError`] on syntax errors.
    pub fn new(machine: &'a mut Machine<S>, src: &str) -> Result<Self, PerlError> {
        machine.set_phase(Phase::Startup);
        let rt = Routines {
            runops: machine.routine_decl("perl_runops", 8192),
            pp_arith: machine.routine_decl("perl_pp_arith", 6144),
            pp_string: machine.routine_decl("perl_pp_string", 8192),
            pp_match: machine.routine_decl("perl_pp_match", 10240),
            pp_hash: machine.routine_decl("perl_pp_hash", 6144),
            pp_io: machine.routine_decl("perl_pp_io", 6144),
            pp_sub: machine.routine_decl("perl_pp_sub", 6144),
            pp_ctrl: machine.routine_decl("perl_pp_ctrl", 6144),
        };
        let prog = parse_program(machine, src)?;
        let scalar_base = machine.malloc(12 * prog.n_scalars.max(1));
        let scalars = vec![Value::Undef; prog.n_scalars as usize];
        let arrays = vec![Vec::new(); prog.n_arrays as usize];
        let array_regions = (0..prog.n_arrays)
            .map(|_| machine.malloc(ARRAY_REGION))
            .collect();
        let hashes = (0..prog.n_hashes).map(|_| machine.hash_new(32)).collect();
        Ok(Perlite {
            m: machine,
            rt,
            commands: CommandSet::new("perlite"),
            prog,
            scalars,
            scalar_base,
            arrays,
            array_regions,
            hashes,
            hash_values: Vec::new(),
            groups: vec![None; 10],
            files: HashMap::new(),
            locals: vec![Vec::new()],
            args: Vec::new(),
            depth: 0,
            strategy: DispatchStrategy::Naive,
            hash_ic: HashMap::new(),
        })
    }

    /// The interpreter's virtual-command set (op names).
    pub fn commands(&self) -> &CommandSet {
        &self.commands
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &RunStats {
        self.m.stats()
    }

    /// Execute the program.
    ///
    /// # Errors
    ///
    /// Returns [`PerlError`] on `die` or run-time errors.
    pub fn run(&mut self) -> Result<(), PerlError> {
        self.m.set_phase(Phase::FetchDecode);
        let top = self.prog.top.clone();
        let flow = self.exec_block(&top)?;
        let _ = flow;
        self.m.end_command();
        Ok(())
    }

    fn exec_block(&mut self, body: &[OpId]) -> Result<PFlow, PerlError> {
        for &op in body {
            match self.exec(op)? {
                PFlow::Val(_) => {}
                other => return Ok(other),
            }
        }
        Ok(PFlow::Val(Value::Undef))
    }

    /// Evaluate an op to a plain value (loop-control flows are errors in
    /// expression position; `return` propagates).
    fn eval(&mut self, op: OpId) -> Result<Value, PerlError> {
        match self.exec(op)? {
            PFlow::Val(v) => Ok(v),
            PFlow::Return(v) => Ok(v),
            _ => Err(PerlError::runtime("loop control used in an expression")),
        }
    }

    /// Dispatch one op node: the virtual-command boundary.
    fn exec(&mut self, id: OpId) -> Result<PFlow, PerlError> {
        if let Err(g) = self.m.guard_check() {
            return Err(PerlError::from(g));
        }
        self.depth += 1;
        let cap = self.m.limits().max_call_depth.min(4000);
        if self.depth > cap {
            self.depth -= 1;
            if cap < 4000 {
                return Err(PerlError::from(interp_guard::GuardError::CallDepth {
                    depth: self.depth + 1,
                    cap,
                }));
            }
            return Err(PerlError::runtime("deep recursion"));
        }
        // --- fetch/decode: runops node fetch + dispatch ---
        self.m.end_command();
        self.m.set_phase(Phase::FetchDecode);
        let runops = self.rt.runops;
        let (op, addr) = {
            let (op, addr) = &self.prog.ops[id as usize];
            (op.clone(), *addr)
        };
        self.m.enter(runops);
        // Perl 4's eval() entry: op-node field loads, context/wantarray
        // determination, argument-stack mark setup, global SP reload/save.
        // The paper measures this at 130-200 native instructions per op
        // (Table 2); the work below plus operand handling lands in that
        // neighborhood.
        self.m.lw(addr); // op type
        self.m.lw(addr + 4); // flags / sibling
        self.m.lw(addr + 8); // operand pointer
        self.m.lw(addr + 12); // pp function pointer
        self.m.alu_n(16); // context setup, wantarray, flag tests
        self.m.branch_fwd(false); // dispatch switch
        let sp_cell = self.scalar_base.wrapping_sub(16); // global SP cell
        self.m.lw(sp_cell);
        self.m.alu_n(9); // stack mark push, argument count checks
        self.m.sw(sp_cell, 0);
        self.m.lw(addr + 4); // re-check op flags on the pp side
        self.m.alu_n(8); // pp prologue: MARK/ORIGMARK, tainting checks
        // Statement bookkeeping Perl 4 performed on every op: curcop
        // file/line maintenance, stack-extension check, signal check,
        // debugger hook test, scope-stack bounds.
        self.m.lw(sp_cell.wrapping_add(4)); // curcop
        self.m.sw(sp_cell.wrapping_add(4), 0);
        self.m.lw(sp_cell.wrapping_add(8)); // stack limit
        self.m.branch_fwd(false); // extend check
        self.m.lw(sp_cell.wrapping_add(12)); // signal flag
        self.m.branch_fwd(false);
        self.m.alu_n(34);
        let cmd = self.commands.intern(op.cmd_name());
        self.m.begin_command(cmd);
        self.m.set_phase(Phase::Execute);
        let out = self.exec_op(&op);
        self.m.leave();
        self.m.end_command();
        self.m.set_phase(Phase::FetchDecode);
        self.depth -= 1;
        out
    }

    fn exec_op(&mut self, op: &Op) -> Result<PFlow, PerlError> {
        use Op::*;
        let v = match op {
            ConstInt(v) => {
                self.m.alu();
                PFlow::Val(Value::Int(*v))
            }
            ConstStr(s) => {
                self.m.alu();
                PFlow::Val(Value::Str(*s))
            }
            Interp(parts) => {
                let s = self.interp(parts)?;
                PFlow::Val(Value::Str(s))
            }
            GetScalar(slot) => {
                let v = self.scalar_read(*slot);
                PFlow::Val(v)
            }
            GetGroup(k) => {
                self.m.alu_n(2);
                PFlow::Val(match self.groups[*k as usize] {
                    Some(s) => Value::Str(s),
                    None => Value::Undef,
                })
            }
            GetElem(arr, idx) => {
                let i = {
                    let iv = self.eval(*idx)?;
                    self.to_int(iv)
                };
                let v = self.array_read(*arr, i);
                PFlow::Val(v)
            }
            GetHElem(h, key) => {
                let kv = self.eval(*key)?;
                let key_s = self.to_str(kv);
                let v = self.hash_read(*h, key_s);
                PFlow::Val(v)
            }
            ArrayLen(arr) => {
                self.m.alu_n(2);
                self.m.lw(self.array_regions[*arr as usize]);
                PFlow::Val(Value::Int(self.arrays[*arr as usize].len() as i64))
            }
            Assign(target, value) => {
                let v = self.eval(*value)?;
                self.store(target, v)?;
                PFlow::Val(v)
            }
            AssignOp(target, kind, value) => {
                let old = self.load_target(target)?;
                let rhs = self.eval(*value)?;
                let v = self.apply_bin(*kind, old, rhs)?;
                self.store(target, v)?;
                PFlow::Val(v)
            }
            PostIncr(target, delta) => {
                let old = self.load_target(target)?;
                let oldi = self.to_int(old);
                self.m.alu();
                self.store(target, Value::Int(oldi + delta))?;
                PFlow::Val(Value::Int(oldi))
            }
            PreIncr(target, delta) => {
                let old = self.load_target(target)?;
                let oldi = self.to_int(old);
                self.m.alu();
                let new = Value::Int(oldi + delta);
                self.store(target, new)?;
                PFlow::Val(new)
            }
            Bin(BinKind::And, a, b) => {
                let av = self.eval(*a)?;
                if !self.truthy(av) {
                    PFlow::Val(av)
                } else {
                    PFlow::Val(self.eval(*b)?)
                }
            }
            Bin(BinKind::Or, a, b) => {
                let av = self.eval(*a)?;
                if self.truthy(av) {
                    PFlow::Val(av)
                } else {
                    PFlow::Val(self.eval(*b)?)
                }
            }
            Bin(kind, a, b) => {
                let av = self.eval(*a)?;
                let bv = self.eval(*b)?;
                PFlow::Val(self.apply_bin(*kind, av, bv)?)
            }
            Un(kind, a) => {
                let av = self.eval(*a)?;
                let pp = self.rt.pp_arith;
                let out = match kind {
                    UnKind::Neg => {
                        let v = self.to_int(av);
                        self.m.routine(pp, |m| m.alu());
                        Value::Int(-v)
                    }
                    UnKind::Not => {
                        let t = self.truthy(av);
                        self.m.routine(pp, |m| m.alu());
                        Value::Int(i64::from(!t))
                    }
                    UnKind::BitNot => {
                        let v = self.to_int(av);
                        self.m.routine(pp, |m| m.alu());
                        Value::Int(!v)
                    }
                };
                PFlow::Val(out)
            }
            Ternary(cond, a, b) => {
                let cv = self.eval(*cond)?;
                let taken = self.truthy(cv);
                self.m.branch_fwd(!taken);
                PFlow::Val(if taken {
                    self.eval(*a)?
                } else {
                    self.eval(*b)?
                })
            }
            Match { value, re, negate } => {
                let v = self.eval(*value)?;
                let s = self.to_str(v);
                let matched = self.do_match(*re, s)?;
                self.m.alu();
                PFlow::Val(Value::Int(i64::from(matched != *negate)))
            }
            Subst {
                target,
                re,
                repl,
                global,
            } => {
                let count = self.do_subst(target, *re, repl, *global)?;
                PFlow::Val(Value::Int(count))
            }
            Print { fh, args } => {
                let fd = match fh {
                    Some(name) => *self.files.get(name).ok_or_else(|| {
                        PerlError::runtime(format!("print to unopened filehandle {name}"))
                    })?,
                    None => interp_host::FD_CONSOLE,
                };
                for &arg in args {
                    let v = self.eval(arg)?;
                    let s = self.to_str(v);
                    let io = self.rt.pp_io;
                    let len = self.m.lw(s.0);
                    self.m.routine(io, |m| {
                        m.alu_n(4);
                        m.sys_write(fd, s.data(), len);
                    });
                }
                PFlow::Val(Value::Int(1))
            }
            Call(name, arg_ops) => {
                let def = self
                    .prog
                    .subs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| PerlError::runtime(format!("undefined sub &{name}")))?;
                let mut argv = Vec::with_capacity(arg_ops.len());
                for &a in arg_ops {
                    argv.push(self.eval(a)?);
                }
                let pp = self.rt.pp_sub;
                self.m.enter(pp);
                self.m.alu_n(8); // stack frame, @_ setup
                self.args.push(argv);
                self.locals.push(Vec::new());
                self.m.leave();
                let flow = self.exec_block(&def.body);
                // Restore dynamically-scoped locals. The frame pushed above
                // must still be there; a missing one means the interpreter
                // state was corrupted, which we report instead of panicking.
                let Some(frame) = self.locals.pop() else {
                    return Err(PerlError::runtime("local-variable frame stack underflow"));
                };
                for (slot, old) in frame.into_iter().rev() {
                    self.scalar_write(slot, old);
                }
                self.args.pop();
                let out = match flow? {
                    PFlow::Return(v) | PFlow::Val(v) => v,
                    PFlow::Last | PFlow::Next => {
                        return Err(PerlError::runtime("loop exit through a sub call"))
                    }
                };
                PFlow::Val(out)
            }
            Builtin(kind, args) => PFlow::Val(self.builtin(*kind, args)?),
            SplitAssign(arr, re, value) => {
                let v = self.eval(*value)?;
                let s = self.to_str(v);
                let parts = self.do_split(*re, s)?;
                let n = parts.len() as i64;
                self.array_replace(*arr, parts);
                PFlow::Val(Value::Int(n))
            }
            ListAssign(arr, items) => {
                let mut values = Vec::with_capacity(items.len());
                for &item in items {
                    values.push(self.eval(item)?);
                }
                let n = values.len() as i64;
                self.array_replace(*arr, values);
                PFlow::Val(Value::Int(n))
            }
            JoinArr(sep, arr) => {
                let sv = self.eval(*sep)?;
                let sep_s = self.to_str(sv);
                let elems = self.arrays[*arr as usize].clone();
                let pp = self.rt.pp_string;
                self.m.enter(pp);
                let mut b = self.m.builder_new(32);
                for (i, &e) in elems.iter().enumerate() {
                    if i > 0 {
                        self.m.builder_push_str(&mut b, sep_s);
                    }
                    let es = self.to_str(e);
                    self.m.builder_push_str(&mut b, es);
                }
                let out = self.m.builder_finish(b);
                self.m.leave();
                PFlow::Val(Value::Str(out))
            }
            ArrPush(arr, values) => {
                for &v in values {
                    let val = self.eval(v)?;
                    let n = self.arrays[*arr as usize].len() as u32;
                    self.m.alu_n(2);
                    self.m
                        .sw(self.array_regions[*arr as usize] + (n * 4) % ARRAY_REGION, 0);
                    self.arrays[*arr as usize].push(val);
                }
                PFlow::Val(Value::Int(self.arrays[*arr as usize].len() as i64))
            }
            ArrPop(arr) => {
                self.m.alu_n(2);
                PFlow::Val(self.arrays[*arr as usize].pop().unwrap_or(Value::Undef))
            }
            ArrShift(arr) => {
                self.m.alu_n(3);
                let a = &mut self.arrays[*arr as usize];
                PFlow::Val(if a.is_empty() {
                    Value::Undef
                } else {
                    a.remove(0)
                })
            }
            ArrUnshift(arr, values) => {
                for &v in values.iter().rev() {
                    let val = self.eval(v)?;
                    self.m.alu_n(3);
                    self.arrays[*arr as usize].insert(0, val);
                }
                PFlow::Val(Value::Int(self.arrays[*arr as usize].len() as i64))
            }
            If { arms } => {
                let ctrl = self.rt.pp_ctrl;
                self.m.routine(ctrl, |m| m.alu_n(6)); // enter/leave scope bookkeeping
                for (cond, body) in arms {
                    let taken = match cond {
                        Some(c) => {
                            let cv = self.eval(*c)?;
                            let t = self.truthy(cv);
                            self.m.branch_fwd(!t);
                            t
                        }
                        None => true,
                    };
                    if taken {
                        return self.exec_block(body);
                    }
                }
                PFlow::Val(Value::Undef)
            }
            While { cond, body } => {
                let ctrl = self.rt.pp_ctrl;
                self.m.routine(ctrl, |m| m.alu_n(10)); // loop block setup
                loop {
                    let cv = self.eval(*cond)?;
                    if !self.truthy(cv) {
                        break;
                    }
                    match self.exec_block(body)? {
                        PFlow::Last => break,
                        PFlow::Return(v) => return Ok(PFlow::Return(v)),
                        PFlow::Next | PFlow::Val(_) => {}
                    }
                }
                PFlow::Val(Value::Undef)
            }
            ForC {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.eval(*init)?;
                }
                loop {
                    if let Some(c) = cond {
                        let cv = self.eval(*c)?;
                        if !self.truthy(cv) {
                            break;
                        }
                    }
                    match self.exec_block(body)? {
                        PFlow::Last => break,
                        PFlow::Return(v) => return Ok(PFlow::Return(v)),
                        PFlow::Next | PFlow::Val(_) => {}
                    }
                    if let Some(s) = step {
                        self.eval(*s)?;
                    }
                }
                PFlow::Val(Value::Undef)
            }
            Foreach { var, source, body } => {
                let items = self.list_values(source)?;
                for item in items {
                    self.scalar_write(*var, item);
                    match self.exec_block(body)? {
                        PFlow::Last => break,
                        PFlow::Return(v) => return Ok(PFlow::Return(v)),
                        PFlow::Next | PFlow::Val(_) => {}
                    }
                }
                PFlow::Val(Value::Undef)
            }
            Last => PFlow::Last,
            Next => PFlow::Next,
            Return(value) => {
                let v = match value {
                    Some(v) => self.eval(*v)?,
                    None => Value::Undef,
                };
                PFlow::Return(v)
            }
            LocalArgs(slots) => {
                let argv = self.args.last().cloned().unwrap_or_default();
                for (i, &slot) in slots.iter().enumerate() {
                    let old = self.scalars[slot as usize];
                    if let Some(frame) = self.locals.last_mut() {
                        frame.push((slot, old));
                    }
                    let v = argv.get(i).copied().unwrap_or(Value::Undef);
                    self.scalar_write(slot, v);
                }
                PFlow::Val(Value::Int(argv.len() as i64))
            }
            Local(slots) => {
                for &slot in slots {
                    let old = self.scalars[slot as usize];
                    if let Some(frame) = self.locals.last_mut() {
                        frame.push((slot, old));
                    }
                    self.scalar_write(slot, Value::Undef);
                }
                PFlow::Val(Value::Undef)
            }
            Open(fh, name) => {
                let nv = self.eval(*name)?;
                let s = self.to_str(nv);
                let name_rs = self.m.peek_string(s);
                let fd = self.m.sys_open(name_rs.trim());
                if fd < 0 {
                    PFlow::Val(Value::Int(0))
                } else {
                    self.files.insert(fh.clone(), fd);
                    PFlow::Val(Value::Int(1))
                }
            }
            CloseFh(fh) => {
                if let Some(fd) = self.files.remove(fh) {
                    self.m.sys_close(fd);
                }
                PFlow::Val(Value::Int(1))
            }
            ReadLine(fh) => {
                let fd = *self.files.get(fh).ok_or_else(|| {
                    PerlError::runtime(format!("read from unopened filehandle {fh}"))
                })?;
                let io = self.rt.pp_io;
                let buf = self.m.malloc(4);
                let mut line = Vec::new();
                let mut eof = false;
                loop {
                    let n = self.m.routine(io, |m| m.sys_read(fd, buf, 1));
                    if n <= 0 {
                        eof = true;
                        break;
                    }
                    let c = self.m.lb(buf);
                    line.push(c);
                    if c == b'\n' {
                        break;
                    }
                }
                self.m.mfree(buf);
                if eof && line.is_empty() {
                    PFlow::Val(Value::Undef)
                } else {
                    let s = self.m.str_alloc(&line);
                    PFlow::Val(Value::Str(s))
                }
            }
            Die(args) => {
                let mut msg = String::new();
                for &a in args {
                    let v = self.eval(a)?;
                    let s = self.to_str(v);
                    msg.push_str(&self.m.peek_string(s));
                }
                return Err(PerlError::runtime(if msg.is_empty() {
                    "Died".to_string()
                } else {
                    msg
                }));
            }
        };
        Ok(v)
    }

    // ------------------------------------------------------------------
    // Values
    // ------------------------------------------------------------------

    pub(crate) fn to_int(&mut self, v: Value) -> i64 {
        match v {
            Value::Undef => {
                self.m.alu();
                0
            }
            Value::Int(i) => i,
            Value::Str(s) => {
                // Numeric use of a string: charged parse (shimmer).
                self.m.str_to_int(s).unwrap_or_else(|| {
                    // Perl's prefix semantics: parse the leading digits.
                    let bytes = self.m.peek_str(s);
                    let mut out: i64 = 0;
                    let mut neg = false;
                    let mut it = bytes.iter().peekable();
                    if it.peek() == Some(&&b'-') {
                        neg = true;
                        it.next();
                    }
                    for &c in it {
                        if !c.is_ascii_digit() {
                            break;
                        }
                        out = out * 10 + i64::from(c - b'0');
                    }
                    if neg {
                        -out
                    } else {
                        out
                    }
                })
            }
        }
    }

    pub(crate) fn to_str(&mut self, v: Value) -> SimStr {
        match v {
            Value::Undef => self.m.str_alloc(b""),
            Value::Int(i) => self.m.str_from_int(i),
            Value::Str(s) => s,
        }
    }

    fn truthy(&mut self, v: Value) -> bool {
        match v {
            Value::Undef => {
                self.m.alu();
                false
            }
            Value::Int(i) => {
                self.m.alu();
                i != 0
            }
            Value::Str(s) => {
                let len = self.m.str_len(s);
                self.m.alu();
                if len == 0 {
                    return false;
                }
                if len == 1 {
                    let c = self.m.str_byte(s, 0);
                    return c != b'0';
                }
                true
            }
        }
    }

    fn apply_bin(&mut self, kind: BinKind, a: Value, b: Value) -> Result<Value, PerlError> {
        use BinKind::*;
        match kind {
            Concat => {
                let sa = self.to_str(a);
                let sb = self.to_str(b);
                let pp = self.rt.pp_string;
                self.m.enter(pp);
                let out = self.m.str_concat(sa, sb);
                self.m.leave();
                Ok(Value::Str(out))
            }
            StrEq | StrNe | StrLt | StrGt => {
                let sa = self.to_str(a);
                let sb = self.to_str(b);
                let pp = self.rt.pp_string;
                self.m.enter(pp);
                let ord = self.m.str_cmp(sa, sb);
                self.m.leave();
                let out = match kind {
                    StrEq => ord == std::cmp::Ordering::Equal,
                    StrNe => ord != std::cmp::Ordering::Equal,
                    StrLt => ord == std::cmp::Ordering::Less,
                    _ => ord == std::cmp::Ordering::Greater,
                };
                Ok(Value::Int(i64::from(out)))
            }
            And | Or => unreachable!("short-circuit handled by caller"),
            _ => {
                let ia = self.to_int(a);
                let ib = self.to_int(b);
                let pp = self.rt.pp_arith;
                let out = self.m.routine(pp, |m| {
                    // Operand SVs: flag loads + numeric-validity branches,
                    // then a fresh mortal SV for the result.
                    m.lw(sv_scratch(0));
                    m.branch_fwd(false);
                    m.lw(sv_scratch(1));
                    m.branch_fwd(false);
                    m.alu_n(6);
                    m.sw(sv_scratch(2), 0); // result SV flags
                    m.sw(sv_scratch(3), 0); // result SV value
                    m.alu_n(5); // mortal stack push
                    match kind {
                        Add => Ok(ia.wrapping_add(ib)),
                        Sub => Ok(ia.wrapping_sub(ib)),
                        Mul => {
                            m.mul();
                            Ok(ia.wrapping_mul(ib))
                        }
                        Div => {
                            m.mul();
                            if ib == 0 {
                                Err(PerlError::runtime("Illegal division by zero"))
                            } else {
                                Ok(ia.wrapping_div(ib))
                            }
                        }
                        Mod => {
                            m.mul();
                            if ib == 0 {
                                Err(PerlError::runtime("Illegal modulus zero"))
                            } else {
                                Ok(ia.rem_euclid(ib))
                            }
                        }
                        NumEq => Ok(i64::from(ia == ib)),
                        NumNe => Ok(i64::from(ia != ib)),
                        NumLt => Ok(i64::from(ia < ib)),
                        NumLe => Ok(i64::from(ia <= ib)),
                        NumGt => Ok(i64::from(ia > ib)),
                        NumGe => Ok(i64::from(ia >= ib)),
                        BitAnd => Ok(ia & ib),
                        BitOr => Ok(ia | ib),
                        BitXor => Ok(ia ^ ib),
                        Shl => {
                            m.shift();
                            Ok(ia.wrapping_shl(ib as u32 & 63))
                        }
                        Shr => {
                            m.shift();
                            Ok(ia.wrapping_shr(ib as u32 & 63))
                        }
                        _ => unreachable!(),
                    }
                })?;
                Ok(Value::Int(out))
            }
        }
    }

    // ------------------------------------------------------------------
    // Storage
    // ------------------------------------------------------------------

    fn scalar_read(&mut self, slot: SlotId) -> Value {
        // Compiled-away symbol lookup: two loads + a flag check.
        let addr = self.scalar_base + slot * 12;
        self.m.mem_model(|m| {
            m.lw(addr);
            m.lw(addr + 4);
            m.alu();
        });
        self.scalars[slot as usize]
    }

    fn scalar_write(&mut self, slot: SlotId, v: Value) {
        let addr = self.scalar_base + slot * 12;
        self.m.mem_model(|m| {
            m.sw(addr, 1);
            m.sw(addr + 4, 0);
            m.alu();
        });
        self.scalars[slot as usize] = v;
    }

    fn array_read(&mut self, arr: ArrId, idx: i64) -> Value {
        let region = self.array_regions[arr as usize];
        self.m.mem_model(|m| {
            m.alu_n(2); // bounds check + scale
            m.lw(region + ((idx.max(0) as u32) * 4) % ARRAY_REGION);
        });
        if idx < 0 {
            let a = &self.arrays[arr as usize];
            let n = a.len() as i64;
            return a
                .get((n + idx).max(0) as usize)
                .copied()
                .unwrap_or(Value::Undef);
        }
        self.arrays[arr as usize]
            .get(idx as usize)
            .copied()
            .unwrap_or(Value::Undef)
    }

    fn array_write(&mut self, arr: ArrId, idx: i64, v: Value) {
        let region = self.array_regions[arr as usize];
        self.m.mem_model(|m| {
            m.alu_n(2);
            m.sw(region + ((idx.max(0) as u32) * 4) % ARRAY_REGION, 0);
        });
        if idx < 0 {
            return;
        }
        let a = &mut self.arrays[arr as usize];
        if a.len() <= idx as usize {
            a.resize(idx as usize + 1, Value::Undef);
        }
        a[idx as usize] = v;
    }

    fn array_replace(&mut self, arr: ArrId, values: Vec<Value>) {
        let region = self.array_regions[arr as usize];
        for i in 0..values.len() as u32 {
            self.m.sw(region + (i * 4) % ARRAY_REGION, 0);
        }
        self.arrays[arr as usize] = values;
    }

    /// Resolve `key` in hash `h` to a value slot, through the lookup
    /// cache when the `InlineCache` tier is active: a hit still hashes
    /// the key (the memo is indexed by hash value) but charges only a
    /// memo-line load and tag compare instead of the HV magic checks,
    /// bucket-chain walk, and full key compare. Cached slots stay valid
    /// because existing entries are updated in place; the only
    /// invalidation hazard is a cached *absence* made stale by an
    /// insert, which `hash_write` handles by replacing the cache entry
    /// on every insert.
    fn hash_slot(&mut self, h: HashId, key: SimStr) -> Option<u32> {
        let table = self.hashes[h as usize];
        let pp = self.rt.pp_hash;
        if self.strategy == DispatchStrategy::InlineCache {
            let key_bytes = self.m.peek_str(key);
            if let Some(&slot) = self.hash_ic.get(&(h, key_bytes)) {
                self.m.mem_model(|m| {
                    m.str_hash(key); // the memo is indexed by key hash
                    m.routine(pp, |m| {
                        m.lw(table.0); // memo line
                        m.alu_n(3); // index + tag compare + slot extract
                    });
                });
                return slot;
            }
        }
        let found = self.m.mem_model(|m| {
            m.routine(pp, |m| {
                m.alu_n(6); // HV deref, magic checks
                m.hash_lookup(table, key)
            })
        });
        if self.strategy == DispatchStrategy::InlineCache {
            let key_bytes = self.m.peek_str(key);
            self.hash_ic.insert((h, key_bytes), found);
        }
        found
    }

    fn hash_read(&mut self, h: HashId, key: SimStr) -> Value {
        match self.hash_slot(h, key) {
            Some(idx) => self.hash_values[idx as usize],
            None => Value::Undef,
        }
    }

    fn hash_write(&mut self, h: HashId, key: SimStr, v: Value) {
        match self.hash_slot(h, key) {
            Some(idx) => {
                self.hash_values[idx as usize] = v;
                self.m.alu();
            }
            None => {
                let table = self.hashes[h as usize];
                let idx = self.hash_values.len() as u32;
                self.hash_values.push(v);
                let key_copy = self.m.str_copy(key);
                let pp = self.rt.pp_hash;
                self.m.mem_model(|m| {
                    m.routine(pp, |m| {
                        m.hash_insert(table, key_copy, idx);
                    })
                });
                if self.strategy == DispatchStrategy::InlineCache {
                    // The key now resolves to `idx`; a stale cached
                    // absence would be a semantic bug, so replace it.
                    let key_bytes = self.m.peek_str(key);
                    self.hash_ic.insert((h, key_bytes), Some(idx));
                }
            }
        }
    }

    fn load_target(&mut self, target: &Target) -> Result<Value, PerlError> {
        Ok(match target {
            Target::Scalar(slot) => self.scalar_read(*slot),
            Target::Elem(arr, idx) => {
                let iv = self.eval(*idx)?;
                let i = self.to_int(iv);
                self.array_read(*arr, i)
            }
            Target::HElem(h, key) => {
                let kv = self.eval(*key)?;
                let ks = self.to_str(kv);
                self.hash_read(*h, ks)
            }
        })
    }

    fn store(&mut self, target: &Target, v: Value) -> Result<(), PerlError> {
        match target {
            Target::Scalar(slot) => self.scalar_write(*slot, v),
            Target::Elem(arr, idx) => {
                let iv = self.eval(*idx)?;
                let i = self.to_int(iv);
                self.array_write(*arr, i, v);
            }
            Target::HElem(h, key) => {
                let kv = self.eval(*key)?;
                let ks = self.to_str(kv);
                self.hash_write(*h, ks, v);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Strings, matching, lists
    // ------------------------------------------------------------------

    fn interp(&mut self, parts: &[Part]) -> Result<SimStr, PerlError> {
        let pp = self.rt.pp_string;
        let mut b = {
            self.m.enter(pp);
            let b = self.m.builder_new(32);
            self.m.leave();
            b
        };
        for part in parts {
            match part {
                Part::Lit(s) => {
                    self.m.enter(pp);
                    self.m.builder_push_str(&mut b, *s);
                    self.m.leave();
                }
                Part::Expr(op) => {
                    let v = self.eval(*op)?;
                    let s = self.to_str(v);
                    self.m.enter(pp);
                    self.m.builder_push_str(&mut b, s);
                    self.m.leave();
                }
                Part::Group(k) => {
                    if let Some(s) = self.groups[*k as usize] {
                        self.m.enter(pp);
                        self.m.builder_push_str(&mut b, s);
                        self.m.leave();
                    }
                }
            }
        }
        self.m.enter(pp);
        let out = self.m.builder_finish(b);
        self.m.leave();
        Ok(out)
    }

    /// Run a match, setting `$1`..`$9` on success.
    fn do_match(&mut self, re: ReId, s: SimStr) -> Result<bool, PerlError> {
        let regex = self.prog.regexes[re as usize].clone();
        let pp = self.rt.pp_match;
        self.m.enter(pp);
        let result = regex.search(self.m, s, 0);
        self.m.leave();
        match result {
            Some(r) => {
                for g in self.groups.iter_mut() {
                    *g = None;
                }
                for (k, span) in r.groups.iter().enumerate() {
                    if let Some((a, b)) = span {
                        let sub = self.m.str_substr(s, *a as u32, (*b - *a) as u32);
                        self.groups[k + 1] = Some(sub);
                    }
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn do_subst(
        &mut self,
        target: &Target,
        re: ReId,
        repl: &[Part],
        global: bool,
    ) -> Result<i64, PerlError> {
        let old = self.load_target(target)?;
        let s = self.to_str(old);
        let regex = self.prog.regexes[re as usize].clone();
        let len = self.m.str_len(s) as usize;
        let pp = self.rt.pp_match;
        let mut b = self.m.builder_new(32);
        let mut pos = 0usize;
        let mut count = 0i64;
        loop {
            self.m.enter(pp);
            let found = regex.search(self.m, s, pos);
            self.m.leave();
            let Some(r) = found else {
                break;
            };
            // Copy the unmatched prefix.
            if r.start > pos {
                let pre = self.m.str_substr(s, pos as u32, (r.start - pos) as u32);
                self.m.builder_push_str(&mut b, pre);
            }
            // Save groups for $1..$9 in the replacement.
            for g in self.groups.iter_mut() {
                *g = None;
            }
            for (k, span) in r.groups.iter().enumerate() {
                if let Some((a, bb)) = span {
                    let sub = self.m.str_substr(s, *a as u32, (*bb - *a) as u32);
                    self.groups[k + 1] = Some(sub);
                }
            }
            // Apply the replacement template.
            for part in repl {
                match part {
                    Part::Lit(t) => self.m.builder_push_str(&mut b, *t),
                    Part::Expr(op) => {
                        let v = self.eval(*op)?;
                        let t = self.to_str(v);
                        self.m.builder_push_str(&mut b, t);
                    }
                    Part::Group(k) => {
                        if let Some(t) = self.groups[*k as usize] {
                            self.m.builder_push_str(&mut b, t);
                        }
                    }
                }
            }
            count += 1;
            pos = if r.end > r.start { r.end } else { r.end + 1 };
            if !global || pos > len {
                break;
            }
        }
        // Copy the tail.
        if pos < len {
            let tail = self.m.str_substr(s, pos as u32, (len - pos) as u32);
            self.m.builder_push_str(&mut b, tail);
        }
        let out = self.m.builder_finish(b);
        if count > 0 {
            self.store(target, Value::Str(out))?;
        }
        Ok(count)
    }

    fn do_split(&mut self, re: ReId, s: SimStr) -> Result<Vec<Value>, PerlError> {
        let regex = self.prog.regexes[re as usize].clone();
        let len = self.m.str_len(s) as usize;
        let pp = self.rt.pp_match;
        let mut out = Vec::new();
        let mut pos = 0usize;
        loop {
            self.m.enter(pp);
            let found = regex.search(self.m, s, pos);
            self.m.leave();
            let Some(r) = found else {
                break;
            };
            if r.end == r.start && r.start >= len {
                break;
            }
            let field = self.m.str_substr(s, pos as u32, (r.start.max(pos) - pos) as u32);
            out.push(Value::Str(field));
            pos = if r.end > r.start { r.end } else { r.end + 1 };
            if pos > len {
                break;
            }
        }
        if pos <= len {
            let tail = self.m.str_substr(s, pos as u32, (len - pos) as u32);
            out.push(Value::Str(tail));
        }
        // Perl drops trailing empty fields.
        while let Some(Value::Str(last)) = out.last() {
            if self.m.str_len(*last) == 0 {
                out.pop();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn list_values(&mut self, source: &ListSource) -> Result<Vec<Value>, PerlError> {
        Ok(match source {
            ListSource::Array(arr) => {
                self.m.alu_n(2);
                self.arrays[*arr as usize].clone()
            }
            ListSource::Keys(h) => {
                let table = self.hashes[*h as usize];
                let entries = self.m.hash_entries_uncharged(table);
                // Charge the table walk: one load + compare per entry.
                let pp = self.rt.pp_hash;
                let n = entries.len() as u32;
                self.m.routine(pp, |m| {
                    let head = m.here();
                    for i in 0..n {
                        m.lw(table.0 + (i * 4) % 1024);
                        m.alu();
                        m.loop_back(head, i + 1 < n);
                    }
                });
                entries
                    .into_iter()
                    .map(|(k, _)| Value::Str(self.m.str_alloc(&k)))
                    .collect()
            }
            ListSource::Range(a, b) => {
                let av = self.eval(*a)?;
                let from = self.to_int(av);
                let bv = self.eval(*b)?;
                let to = self.to_int(bv);
                (from..=to).map(Value::Int).collect()
            }
            ListSource::Split(re, value) => {
                let v = self.eval(*value)?;
                let s = self.to_str(v);
                self.do_split(*re, s)?
            }
            ListSource::Exprs(items) => {
                let mut out = Vec::with_capacity(items.len());
                for &item in items {
                    out.push(self.eval(item)?);
                }
                out
            }
        })
    }

    fn builtin(&mut self, kind: BuiltinKind, args: &[OpId]) -> Result<Value, PerlError> {
        use BuiltinKind::*;
        let pp = self.rt.pp_string;
        Ok(match kind {
            Length => {
                let v = self.eval(args[0])?;
                let s = self.to_str(v);
                let n = self.m.routine(pp, |m| m.lw(s.0));
                Value::Int(i64::from(n))
            }
            Substr => {
                let v = self.eval(args[0])?;
                let s = self.to_str(v);
                let ov = self.eval(args[1])?;
                let off = self.to_int(ov);
                let slen = self.m.str_len(s) as i64;
                let off = if off < 0 { (slen + off).max(0) } else { off };
                let n = if args.len() > 2 {
                    let nv = self.eval(args[2])?;
                    self.to_int(nv)
                } else {
                    slen - off
                };
                let out = self.m.str_substr(s, off as u32, n.max(0) as u32);
                Value::Str(out)
            }
            Index => {
                let hv = self.eval(args[0])?;
                let hay = self.to_str(hv);
                let nv = self.eval(args[1])?;
                let needle = self.to_str(nv);
                let from = if args.len() > 2 {
                    let fv = self.eval(args[2])?;
                    self.to_int(fv).max(0) as u32
                } else {
                    0
                };
                let needle_bytes = self.m.peek_str(needle);
                let hay_len = self.m.str_len(hay);
                self.m.enter(pp);
                let mut found: i64 = -1;
                if !needle_bytes.is_empty() {
                    'outer: for start in
                        from..hay_len.saturating_sub(needle_bytes.len() as u32 - 1)
                    {
                        for (k, &nc) in needle_bytes.iter().enumerate() {
                            let c = self.m.str_byte(hay, start + k as u32);
                            if c != nc {
                                continue 'outer;
                            }
                        }
                        found = i64::from(start);
                        break;
                    }
                }
                self.m.leave();
                Value::Int(found)
            }
            Sprintf => {
                let fv = self.eval(args[0])?;
                let fmt_s = self.to_str(fv);
                let fmt = self.m.peek_str(fmt_s);
                let mut values = Vec::new();
                for &a in &args[1..] {
                    values.push(self.eval(a)?);
                }
                let out = self.sprintf(&fmt, &values)?;
                Value::Str(out)
            }
            Chop => {
                // chop($x): remove the last character of an lvalue.
                let target = self.op_as_target(args[0])?;
                let v = self.load_target(&target)?;
                let s = self.to_str(v);
                let len = self.m.str_len(s);
                if len == 0 {
                    Value::Str(self.m.str_alloc(b""))
                } else {
                    let last = self.m.str_byte(s, len - 1);
                    let rest = self.m.str_substr(s, 0, len - 1);
                    self.store(&target, Value::Str(rest))?;
                    Value::Str(self.m.str_alloc(&[last]))
                }
            }
            Uc | Lc => {
                let v = self.eval(args[0])?;
                let s = self.to_str(v);
                let bytes = self.m.peek_str(s);
                self.m.enter(pp);
                let mut b = self.m.builder_new(bytes.len() as u32 + 1);
                for (i, &c) in bytes.iter().enumerate() {
                    self.m.lb(s.data() + i as u32);
                    self.m.alu();
                    let mapped = if kind == Uc {
                        c.to_ascii_uppercase()
                    } else {
                        c.to_ascii_lowercase()
                    };
                    self.m.builder_push(&mut b, mapped);
                }
                let out = self.m.builder_finish(b);
                self.m.leave();
                Value::Str(out)
            }
            Ord => {
                let v = self.eval(args[0])?;
                let s = self.to_str(v);
                let len = self.m.str_len(s);
                Value::Int(if len > 0 {
                    i64::from(self.m.str_byte(s, 0))
                } else {
                    0
                })
            }
            Chr => {
                let v = self.eval(args[0])?;
                let c = self.to_int(v);
                Value::Str(self.m.str_alloc(&[c as u8]))
            }
            Defined => {
                let v = self.eval(args[0])?;
                self.m.alu();
                Value::Int(i64::from(v != Value::Undef))
            }
            Int => {
                let v = self.eval(args[0])?;
                Value::Int(self.to_int(v))
            }
        })
    }

    fn op_as_target(&self, id: OpId) -> Result<Target, PerlError> {
        match &self.prog.ops[id as usize].0 {
            Op::GetScalar(slot) => Ok(Target::Scalar(*slot)),
            Op::GetElem(arr, idx) => Ok(Target::Elem(*arr, *idx)),
            Op::GetHElem(h, key) => Ok(Target::HElem(*h, *key)),
            _ => Err(PerlError::runtime("argument is not an lvalue")),
        }
    }

    fn sprintf(&mut self, fmt: &[u8], values: &[Value]) -> Result<SimStr, PerlError> {
        let pp = self.rt.pp_string;
        self.m.enter(pp);
        let mut b = self.m.builder_new(32);
        let mut vi = 0usize;
        let mut i = 0usize;
        while i < fmt.len() {
            self.m.alu();
            if fmt[i] == b'%' && i + 1 < fmt.len() {
                let mut j = i + 1;
                let mut zero = false;
                let mut width = 0usize;
                if fmt[j] == b'0' {
                    zero = true;
                    j += 1;
                }
                while j < fmt.len() && fmt[j].is_ascii_digit() {
                    width = width * 10 + (fmt[j] - b'0') as usize;
                    j += 1;
                }
                let spec = fmt.get(j).copied().unwrap_or(b'%');
                match spec {
                    b'%' => self.m.builder_push(&mut b, b'%'),
                    b'd' | b'x' | b'c' | b's' => {
                        let Some(&v) = values.get(vi) else {
                            self.m.leave();
                            return Err(PerlError::runtime("sprintf: missing argument"));
                        };
                        vi += 1;
                        match spec {
                            b'd' | b'x' => {
                                let n = self.to_int(v);
                                let text = if spec == b'd' {
                                    n.to_string()
                                } else {
                                    format!("{n:x}")
                                };
                                for _ in 0..width.saturating_sub(text.len()) {
                                    self.m.builder_push(&mut b, if zero { b'0' } else { b' ' });
                                }
                                self.m.builder_push_bytes(&mut b, text.as_bytes());
                            }
                            b'c' => {
                                let n = self.to_int(v) as u8;
                                self.m.builder_push(&mut b, n);
                            }
                            _ => {
                                let s = self.to_str(v);
                                let text_len = self.m.str_len(s) as usize;
                                for _ in 0..width.saturating_sub(text_len) {
                                    self.m.builder_push(&mut b, b' ');
                                }
                                self.m.builder_push_str(&mut b, s);
                            }
                        }
                    }
                    other => {
                        self.m.leave();
                        return Err(PerlError::runtime(format!(
                            "sprintf: bad specifier %{}",
                            other as char
                        )));
                    }
                }
                i = j + 1;
            } else {
                self.m.builder_push(&mut b, fmt[i]);
                i += 1;
            }
        }
        let out = self.m.builder_finish(b);
        self.m.leave();
        Ok(out)
    }
}

impl<S: TraceSink> Dispatch for Perlite<'_, S> {
    fn supported(&self) -> &'static [DispatchStrategy] {
        DispatchStrategy::supported_by(Language::Perlite)
    }

    fn strategy(&self) -> DispatchStrategy {
        self.strategy
    }

    fn set_strategy(&mut self, strategy: DispatchStrategy) {
        self.strategy = strategy.effective_for(Language::Perlite);
        self.hash_ic.clear();
    }
}

/// Scratch SV header addresses used to model mortal-SV traffic (a fixed
/// hot region, like Perl's temporaries arena).
#[inline]
fn sv_scratch(i: u32) -> u32 {
    0x1f00_0000 + i * 4
}
