//! Lexer for the Perl subset.
//!
//! Regex literals (`/pat/`, `s/pat/repl/`, `m/pat/`, `tr`…) are
//! context-sensitive in Perl; the lexer therefore exposes a cursor API the
//! parser drives, including a mode switch for reading regex bodies.

use crate::error::PerlError;

/// A token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bareword identifier (sub names, builtins, filehandles).
    Ident(String),
    /// `$name` (possibly about to be indexed/keyed; the parser looks at
    /// the following `[`/`{`).
    Scalar(String),
    /// `@name`.
    Array(String),
    /// `%name`.
    Hash(String),
    /// Numeric literal (integers only in this subset).
    Num(i64),
    /// Single-quoted string (no interpolation).
    StrSingle(Vec<u8>),
    /// Double-quoted string, split into interpolation parts.
    StrDouble(Vec<StrPart>),
    /// Operator / punctuation.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A piece of a double-quoted string.
#[derive(Debug, Clone, PartialEq)]
pub enum StrPart {
    /// Literal bytes.
    Lit(Vec<u8>),
    /// `$name` interpolation.
    Var(String),
    /// `$name[expr-source]` element interpolation (source re-lexed by the
    /// parser).
    Elem(String, String),
    /// `$name{key-source}` hash-element interpolation.
    HElem(String, String),
}

const PUNCTS: &[&str] = &[
    "<=>", "**", "=~", "!~", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--", "+=", "-=", "*=",
    "/=", ".=", "%=", "x=", "=>", "->", "..", "<", ">", "(", ")", "{", "}", "[", "]", ";", ",", "+",
    "-", "*", "/", "%", ".", "=", "!", "?", ":", "&", "|", "^", "~", "#",
];

/// Cursor-based lexer.
pub struct Lexer {
    src: Vec<u8>,
    pos: usize,
    line: u32,
}

impl Lexer {
    /// Create a lexer over `src`.
    pub fn new(src: &str) -> Self {
        Lexer {
            src: src.as_bytes().to_vec(),
            pos: 0,
            line: 1,
        }
    }

    /// Current 1-based line.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Bytes consumed so far (the startup pass charges per byte).
    pub fn consumed(&self) -> usize {
        self.pos
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'#' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Read the next token.
    ///
    /// # Errors
    ///
    /// Returns [`PerlError`] on malformed literals.
    pub fn next(&mut self) -> Result<Tok, PerlError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(Tok::Eof);
        }
        let c = self.src[self.pos];
        // Variables.
        if c == b'$' || c == b'@' || c == b'%' {
            // `%` is also modulo; only treat as a hash sigil when followed
            // by an identifier character.
            let next_is_word = self
                .src
                .get(self.pos + 1)
                .map(|n| n.is_ascii_alphabetic() || *n == b'_')
                .unwrap_or(false);
            if c != b'%' || next_is_word {
                self.pos += 1;
                let name = self.ident();
                if name.is_empty() {
                    return Err(PerlError::at(self.line, "empty variable name"));
                }
                return Ok(match c {
                    b'$' => Tok::Scalar(name),
                    b'@' => Tok::Array(name),
                    _ => Tok::Hash(name),
                });
            }
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(Tok::Ident(self.ident()));
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            if c == b'0'
                && self.src.get(self.pos + 1).map(|n| n | 32) == Some(b'x')
            {
                self.pos += 2;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_hexdigit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start + 2..self.pos])
                    .map_err(|_| PerlError::at(self.line, "bad hex literal"))?;
                let v = i64::from_str_radix(text, 16)
                    .map_err(|_| PerlError::at(self.line, "bad hex literal"))?;
                return Ok(Tok::Num(v));
            }
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos])
                .map_err(|_| PerlError::at(self.line, "bad number"))?;
            let v = text
                .parse::<i64>()
                .map_err(|_| PerlError::at(self.line, "bad number"))?;
            return Ok(Tok::Num(v));
        }
        if c == b'\'' {
            self.pos += 1;
            let mut out = Vec::new();
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                if self.src[self.pos] == b'\\'
                    && matches!(self.src.get(self.pos + 1), Some(b'\'') | Some(b'\\'))
                {
                    out.push(self.src[self.pos + 1]);
                    self.pos += 2;
                } else {
                    if self.src[self.pos] == b'\n' {
                        self.line += 1;
                    }
                    out.push(self.src[self.pos]);
                    self.pos += 1;
                }
            }
            if self.pos >= self.src.len() {
                return Err(PerlError::at(self.line, "unterminated string"));
            }
            self.pos += 1;
            return Ok(Tok::StrSingle(out));
        }
        if c == b'"' {
            self.pos += 1;
            let parts = self.double_quoted(b'"')?;
            return Ok(Tok::StrDouble(parts));
        }
        // `<FH>` readline.
        if c == b'<' {
            // Lookahead: <IDENT>
            let save = self.pos;
            self.pos += 1;
            let name = self.ident();
            if !name.is_empty() && self.src.get(self.pos) == Some(&b'>') {
                self.pos += 1;
                return Ok(Tok::Punct("<FH>")).map(|_| {
                    // smuggle the handle name through Ident-after convention:
                    Tok::Ident(format!("<{name}>"))
                });
            }
            self.pos = save;
        }
        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                self.pos += p.len();
                return Ok(Tok::Punct(p));
            }
        }
        Err(PerlError::at(
            self.line,
            format!("unexpected character {:?}", c as char),
        ))
    }

    /// Parse the body of a double-quoted string up to `close`, splitting
    /// interpolations.
    fn double_quoted(&mut self, close: u8) -> Result<Vec<StrPart>, PerlError> {
        let mut parts = Vec::new();
        let mut lit = Vec::new();
        while self.pos < self.src.len() && self.src[self.pos] != close {
            let c = self.src[self.pos];
            if c == b'\\' && self.pos + 1 < self.src.len() {
                let e = self.src[self.pos + 1];
                lit.push(match e {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'r' => b'\r',
                    b'0' => 0,
                    other => other,
                });
                self.pos += 2;
                continue;
            }
            if c == b'$'
                && self
                    .src
                    .get(self.pos + 1)
                    .map(|n| n.is_ascii_alphanumeric() || *n == b'_')
                    .unwrap_or(false)
            {
                if !lit.is_empty() {
                    parts.push(StrPart::Lit(std::mem::take(&mut lit)));
                }
                self.pos += 1;
                let name = self.ident();
                // Element interpolation: $a[...] or $h{...}.
                match self.src.get(self.pos) {
                    Some(b'[') => {
                        let inner = self.balanced(b'[', b']')?;
                        parts.push(StrPart::Elem(name, inner));
                    }
                    Some(b'{') => {
                        let inner = self.balanced(b'{', b'}')?;
                        parts.push(StrPart::HElem(name, inner));
                    }
                    _ => parts.push(StrPart::Var(name)),
                }
                continue;
            }
            if c == b'\n' {
                self.line += 1;
            }
            lit.push(c);
            self.pos += 1;
        }
        if self.pos >= self.src.len() {
            return Err(PerlError::at(self.line, "unterminated string"));
        }
        self.pos += 1; // closing quote
        if !lit.is_empty() {
            parts.push(StrPart::Lit(lit));
        }
        Ok(parts)
    }

    /// Read a balanced `open…close` region (after `open` has been seen at
    /// the cursor), returning the inner source text.
    fn balanced(&mut self, open: u8, close: u8) -> Result<String, PerlError> {
        debug_assert_eq!(self.src[self.pos], open);
        self.pos += 1;
        let start = self.pos;
        let mut depth = 1;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    let inner =
                        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.pos += 1;
                    return Ok(inner);
                }
            } else if c == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        Err(PerlError::at(self.line, "unbalanced delimiter"))
    }

    /// Read a regex body delimited by `delim` (cursor must be at the
    /// opening delimiter). Returns the raw pattern text.
    pub fn regex_body(&mut self, delim: u8) -> Result<String, PerlError> {
        debug_assert_eq!(self.src[self.pos], delim);
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != delim {
            if self.src[self.pos] == b'\\' {
                self.pos += 1;
            }
            if self.src[self.pos] == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        if self.pos >= self.src.len() {
            return Err(PerlError::at(self.line, "unterminated regex"));
        }
        let body = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.pos += 1;
        Ok(body)
    }

    /// Peek the next raw byte (after whitespace), without consuming.
    pub fn peek_raw(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    /// Peek the byte at the cursor with no whitespace skipping (used while
    /// reading a substitution's replacement text).
    pub fn peek_raw_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    /// Advance the cursor by one byte.
    pub fn skip_byte(&mut self) {
        if self.src.get(self.pos) == Some(&b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Read trailing regex flags (e.g. `g`, `i`).
    pub fn regex_flags(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tokens(src: &str) -> Vec<Tok> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = lx.next().unwrap();
            let done = t == Tok::Eof;
            out.push(t);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn sigils() {
        assert_eq!(
            all_tokens("$x @arr %h"),
            vec![
                Tok::Scalar("x".into()),
                Tok::Array("arr".into()),
                Tok::Hash("h".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn percent_is_modulo_without_word() {
        assert_eq!(
            all_tokens("$a % 3"),
            vec![
                Tok::Scalar("a".into()),
                Tok::Punct("%"),
                Tok::Num(3),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_interpolation() {
        let toks = all_tokens(r#"'a$b' "x $y z" "$a[0]$h{k}""#);
        assert_eq!(toks[0], Tok::StrSingle(b"a$b".to_vec()));
        assert_eq!(
            toks[1],
            Tok::StrDouble(vec![
                StrPart::Lit(b"x ".to_vec()),
                StrPart::Var("y".into()),
                StrPart::Lit(b" z".to_vec()),
            ])
        );
        assert_eq!(
            toks[2],
            Tok::StrDouble(vec![
                StrPart::Elem("a".into(), "0".into()),
                StrPart::HElem("h".into(), "k".into()),
            ])
        );
    }

    #[test]
    fn numbers_and_escapes() {
        assert_eq!(
            all_tokens(r#"42 0x1f "a\tb\n""#),
            vec![
                Tok::Num(42),
                Tok::Num(31),
                Tok::StrDouble(vec![StrPart::Lit(b"a\tb\n".to_vec())]),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn readline_token() {
        assert_eq!(
            all_tokens("<IN>"),
            vec![Tok::Ident("<IN>".into()), Tok::Eof]
        );
        // Plain `<` comparison still works.
        assert_eq!(
            all_tokens("$a < 3"),
            vec![
                Tok::Scalar("a".into()),
                Tok::Punct("<"),
                Tok::Num(3),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn regex_body_reading() {
        let mut lx = Lexer::new(r#"/ab\/c/ rest"#);
        assert_eq!(lx.peek_raw(), Some(b'/'));
        assert_eq!(lx.regex_body(b'/').unwrap(), r"ab\/c");
        assert_eq!(lx.next().unwrap(), Tok::Ident("rest".into()));
    }

    #[test]
    fn comments_and_lines() {
        let mut lx = Lexer::new("# comment\n$x");
        assert_eq!(lx.next().unwrap(), Tok::Scalar("x".into()));
        assert_eq!(lx.line(), 2);
    }

    #[test]
    fn multi_char_ops_win() {
        assert_eq!(
            all_tokens("$a =~ $b .= $c == 1"),
            vec![
                Tok::Scalar("a".into()),
                Tok::Punct("=~"),
                Tok::Scalar("b".into()),
                Tok::Punct(".="),
                Tok::Scalar("c".into()),
                Tok::Punct("=="),
                Tok::Num(1),
                Tok::Eof
            ]
        );
    }
}
