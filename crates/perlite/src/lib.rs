//! Perlite: a Perl-4-style interpreter, instrumented.
//!
//! Structure follows the paper's description of Perl: programs are
//! *compiled at startup* (every invocation) into an internal op-tree, then
//! executed by a tree walker whose node dispatches are the virtual
//! commands of Table 2. The compilation pass resolves scalar and array
//! names to slots — which is why Perl's memory-model cost is tiny for
//! scalars (§3.3) — while associative arrays keep a run-time hash
//! translation (~hundreds of instructions per access). A backtracking
//! regex engine, compiled alongside the program, dominates the execute
//! profile of text-processing workloads (Figure 2's `match`/`subst` bars).
//!
//! # Example
//!
//! ```
//! use interp_core::NullSink;
//! use interp_host::Machine;
//! use interp_perlite::Perlite;
//!
//! let mut machine = Machine::new(NullSink);
//! let mut perl = Perlite::new(&mut machine, r#"
//!     $x = 6;
//!     $y = $x * 7;
//!     print "answer=$y\n";
//! "#)?;
//! perl.run()?;
//! assert_eq!(machine.console(), b"answer=42\n");
//! # Ok::<(), interp_perlite::PerlError>(())
//! ```

mod error;
mod exec;
mod lexer;
mod ops;
mod parser;
pub mod regex;

pub use error::PerlError;
pub use exec::Perlite;
pub use regex::{MatchResult, Regex};

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{NullSink, Phase};
    use interp_host::Machine;

    fn run(src: &str) -> (String, interp_core::RunStats) {
        let mut m = Machine::new(NullSink);
        let mut p = Perlite::new(&mut m, src).expect("compile");
        p.run().expect("run");
        let console = String::from_utf8_lossy(m.console()).into_owned();
        (console, m.stats().clone())
    }

    #[test]
    fn scalars_and_arithmetic() {
        let (out, _) = run("$a = 6; $b = $a * 7 + 1; print $b;");
        assert_eq!(out, "43");
    }

    #[test]
    fn string_interpolation() {
        let (out, _) = run(r#"$n = 3; $s = "n is $n!"; print "$s\n";"#);
        assert_eq!(out, "n is 3!\n");
    }

    #[test]
    fn string_number_duality() {
        let (out, _) = run(r#"$a = "5"; $b = $a + 2; $c = $b . "x"; print $c;"#);
        assert_eq!(out, "7x");
    }

    #[test]
    fn while_and_for_loops() {
        let (out, _) = run(
            r#"$s = 0; $i = 1;
while ($i <= 10) { $s += $i; $i++; }
print $s, ",";
$t = 0;
for ($j = 0; $j < 5; $j++) { $t += $j; }
print $t;"#,
        );
        assert_eq!(out, "55,10");
    }

    #[test]
    fn foreach_over_range_and_array() {
        let (out, _) = run(
            r#"@a = (2, 4, 6);
$s = 0;
foreach $x (@a) { $s += $x; }
foreach $i (1 .. 4) { $s += $i; }
print $s;"#,
        );
        assert_eq!(out, "22");
    }

    #[test]
    fn last_next_and_modifiers() {
        let (out, _) = run(
            r#"$s = 0;
foreach $i (1 .. 100) {
    next if $i % 2;
    last if $i > 10;
    $s += $i;
}
print $s;"#,
        );
        assert_eq!(out, "30");
    }

    #[test]
    fn subs_with_local_args() {
        let (out, _) = run(
            r#"sub add2 {
    local($a, $b) = @_;
    return $a + $b;
}
sub fact {
    local($n) = @_;
    return 1 if $n <= 1;
    return $n * &fact($n - 1);
}
print add2(3, 4), " ", &fact(6);"#,
        );
        assert_eq!(out, "7 720");
    }

    #[test]
    fn local_is_dynamically_scoped() {
        let (out, _) = run(
            r#"$x = "outer";
sub inner { print $x; }
sub outer {
    local($x) = @_;
    &inner();
}
&outer("inner");
print ",", $x;"#,
        );
        assert_eq!(out, "inner,outer");
    }

    #[test]
    fn arrays_and_builtins() {
        let (out, _) = run(
            r#"@a = (1, 2, 3);
push(@a, 4);
$last = pop(@a);
unshift(@a, 0);
$first = shift(@a);
print join("-", @a), " last=$last first=$first n=", scalar(@a);"#,
        );
        assert_eq!(out, "1-2-3 last=4 first=0 n=3");
    }

    #[test]
    fn array_elements() {
        let (out, _) = run(
            r#"@a = (10, 20, 30);
$a[1] = 21;
$a[5] = 99;
print $a[0] + $a[1], " ", $a[5], " ", $a[4] + 0, " n=", scalar(@a);"#,
        );
        assert_eq!(out, "31 99 0 n=6");
    }

    #[test]
    fn hashes_translate_at_runtime() {
        let (out, stats) = run(
            r#"$h{alpha} = 1;
$h{beta} = 2;
$k = "alpha";
print $h{$k} + $h{beta};"#,
        );
        assert_eq!(out, "3");
        // Hash element accesses pay a charged translation (§3.3).
        assert!(stats.mem_model_instructions > 200);
        assert!(stats.avg_mem_model_cost() > 10.0);
    }

    #[test]
    fn regex_match_and_groups() {
        let (out, _) = run(
            r#"$line = "width=400 height=300";
if ($line =~ /(\w+)=(\d+)/) {
    print "$1:$2";
}
print "," if $line =~ /height/;
print "no" if $line !~ /depth/;"#,
        );
        assert_eq!(out, "width:400,no");
    }

    #[test]
    fn substitution() {
        let (out, _) = run(
            r#"$s = "the cat sat on the mat";
$n = ($s =~ s/at/og/g);
print "$s ($n)";"#,
        );
        assert_eq!(out, "the cog sog on the mog (3)");
    }

    #[test]
    fn substitution_with_groups() {
        let (out, _) = run(
            r#"$s = "name: romer";
$s =~ s/name: (\w+)/author=$1/;
print $s;"#,
        );
        assert_eq!(out, "author=romer");
    }

    #[test]
    fn split_and_join() {
        let (out, _) = run(
            r#"@f = split(/,/, "a,b,,c");
print scalar(@f), ":", join("|", @f);"#,
        );
        assert_eq!(out, "4:a|b||c");
    }

    #[test]
    fn string_builtins() {
        let (out, _) = run(
            r#"$s = "Hello World";
print length($s), " ", substr($s, 6, 5), " ", index($s, "World"), " ", uc(substr($s, 0, 5)), " ", ord("A"), chr(66);"#,
        );
        assert_eq!(out, "11 World 6 HELLO 65B");
    }

    #[test]
    fn sprintf_formats() {
        let (out, _) = run(r#"print sprintf("%05d|%s|%x|%c", 42, "hi", 255, 33);"#);
        assert_eq!(out, "00042|hi|ff|!");
    }

    #[test]
    fn ternary_and_chop() {
        let (out, _) = run(
            r#"$x = 5;
$r = $x > 3 ? "big" : "small";
$line = "text\n";
chop($line);
print "$r $line.";"#,
        );
        assert_eq!(out, "big text.");
    }

    #[test]
    fn file_io() {
        let mut m = Machine::new(NullSink);
        m.fs_add_file("in.txt", b"first\nsecond\n".to_vec());
        let mut p = Perlite::new(
            &mut m,
            r#"open(IN, "in.txt") || die "no file";
while ($line = <IN>) {
    chop($line);
    print "[$line]";
}
close(IN);"#,
        )
        .unwrap();
        p.run().unwrap();
        assert_eq!(m.console(), b"[first][second]");
    }

    #[test]
    fn die_propagates() {
        let mut m = Machine::new(NullSink);
        let mut p = Perlite::new(&mut m, r#"die "custom error";"#).unwrap();
        let err = p.run().unwrap_err();
        assert!(err.message.contains("custom error"));
    }

    #[test]
    fn precompilation_is_attributed_to_startup() {
        let mut m = Machine::new(NullSink);
        let src = r#"$a = 1; $b = 2; print $a + $b;"#;
        let mut p = Perlite::new(&mut m, src).unwrap();
        let startup = p.stats().phase_instructions(Phase::Startup);
        assert!(startup > 200, "startup instructions = {startup}");
        p.run().unwrap();
        // Startup count unchanged by execution.
        assert_eq!(p.stats().phase_instructions(Phase::Startup), startup);
        drop(p);
    }

    #[test]
    fn fetch_decode_sits_between_java_and_tcl() {
        let (_, stats) = run(
            r#"$s = 0;
for ($i = 0; $i < 50; $i++) { $s += $i; }
print $s;"#,
        );
        let fd = stats.avg_fetch_decode();
        assert!(fd > 16.0, "Perl F/D should exceed Java-like 16: {fd}");
        assert!(fd < 1000.0, "Perl F/D should be well under Tcl: {fd}");
    }

    #[test]
    fn keys_iteration() {
        let (out, _) = run(
            r#"$h{a} = 1; $h{b} = 2; $h{c} = 3;
$sum = 0;
foreach $k (keys %h) { $sum += $h{$k}; }
print $sum;"#,
        );
        assert_eq!(out, "6");
    }

    #[test]
    fn hash_element_in_interpolation() {
        let (out, _) = run(
            r#"$color{sky} = "blue";
print "the sky is $color{sky}";"#,
        );
        assert_eq!(out, "the sky is blue");
    }

    #[test]
    fn unless_and_until() {
        let (out, _) = run(
            r#"$i = 0;
until ($i >= 3) { $i++; }
unless ($i == 99) { print "ok $i"; }"#,
        );
        assert_eq!(out, "ok 3");
    }
}
