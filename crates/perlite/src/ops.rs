//! The compiled op-tree.
//!
//! Perl 4 compiles each program at startup into an internal tree and then
//! walks it; each node the walker dispatches is one *virtual command*
//! (Table 2's Perl rows, Figure 2's `match`/`assign`/`concat`/… bars).
//! Nodes carry a simulated-memory address so the walker's node fetches
//! produce real data traffic.

use interp_host::SimStr;

/// Index of an op node.
pub(crate) type OpId = u32;
/// Scalar-variable slot (symbol lookup compiled away, §3.3).
pub(crate) type SlotId = u32;
/// Array-variable slot.
pub(crate) type ArrId = u32;
/// Hash-variable slot (element access is a run-time hash translation).
pub(crate) type HashId = u32;
/// Compiled-regex index.
pub(crate) type ReId = u32;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
    NumEq,
    NumNe,
    NumLt,
    NumLe,
    NumGt,
    NumGe,
    StrEq,
    StrNe,
    StrLt,
    StrGt,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinKind {
    /// Virtual-command name (matches Perl op naming where it matters for
    /// Figure 2).
    pub(crate) fn cmd_name(self) -> &'static str {
        match self {
            BinKind::Add => "add",
            BinKind::Sub => "subtract",
            BinKind::Mul => "multiply",
            BinKind::Div => "divide",
            BinKind::Mod => "modulo",
            BinKind::Concat => "concat",
            BinKind::NumEq => "eq",
            BinKind::NumNe => "ne",
            BinKind::NumLt => "lt",
            BinKind::NumLe => "le",
            BinKind::NumGt => "gt",
            BinKind::NumGe => "ge",
            BinKind::StrEq => "seq",
            BinKind::StrNe => "sne",
            BinKind::StrLt => "slt",
            BinKind::StrGt => "sgt",
            BinKind::And => "and",
            BinKind::Or => "or",
            BinKind::BitAnd => "band",
            BinKind::BitOr => "bor",
            BinKind::BitXor => "bxor",
            BinKind::Shl => "lshift",
            BinKind::Shr => "rshift",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum UnKind {
    Neg,
    Not,
    BitNot,
}

/// String/list builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum BuiltinKind {
    Length,
    Substr,
    Index,
    Sprintf,
    Chop,
    Uc,
    Lc,
    Ord,
    Chr,
    Defined,
    Int,
}

impl BuiltinKind {
    pub(crate) fn cmd_name(self) -> &'static str {
        match self {
            BuiltinKind::Length => "length",
            BuiltinKind::Substr => "substr",
            BuiltinKind::Index => "index",
            BuiltinKind::Sprintf => "sprintf",
            BuiltinKind::Chop => "chop",
            BuiltinKind::Uc => "uc",
            BuiltinKind::Lc => "lc",
            BuiltinKind::Ord => "ord",
            BuiltinKind::Chr => "chr",
            BuiltinKind::Defined => "defined",
            BuiltinKind::Int => "int",
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Target {
    /// `$x` — slot resolved at compile time.
    Scalar(SlotId),
    /// `$a[i]`.
    Elem(ArrId, OpId),
    /// `$h{k}` — hash translation at run time.
    HElem(HashId, OpId),
}

/// A piece of an interpolated string or substitution replacement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Part {
    /// Literal text (materialized in simulated memory at compile time).
    Lit(SimStr),
    /// Value of an expression (compiled from `$var`, `$a[i]`, `$h{k}`).
    Expr(OpId),
    /// Capture group `$k` of the most recent match.
    Group(u8),
}

/// Sources a `foreach` can iterate.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ListSource {
    /// `@array`.
    Array(ArrId),
    /// `keys %hash`.
    Keys(HashId),
    /// `$from .. $to`.
    Range(OpId, OpId),
    /// `split(/re/, expr)`.
    Split(ReId, OpId),
    /// Literal list `(e1, e2, …)`.
    Exprs(Vec<OpId>),
}

/// One op node.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// Integer constant.
    ConstInt(i64),
    /// String constant (interned in simulated memory).
    ConstStr(SimStr),
    /// Interpolated string.
    Interp(Vec<Part>),
    /// Read `$x`.
    GetScalar(SlotId),
    /// Read capture group `$1`..`$9`.
    GetGroup(u8),
    /// Read `$a[i]`.
    GetElem(ArrId, OpId),
    /// Read `$h{k}`.
    GetHElem(HashId, OpId),
    /// `@a` in scalar context (element count).
    ArrayLen(ArrId),
    /// `target = value`.
    Assign(Target, OpId),
    /// `target op= value`.
    AssignOp(Target, BinKind, OpId),
    /// `$x++` / `$x--` (evaluates to the *old* value).
    PostIncr(Target, i64),
    /// `++$x` / `--$x` (evaluates to the new value).
    PreIncr(Target, i64),
    /// Binary operation.
    Bin(BinKind, OpId, OpId),
    /// Unary operation.
    Un(UnKind, OpId),
    /// Ternary `cond ? a : b`.
    Ternary(OpId, OpId, OpId),
    /// `target =~ /re/` (or `!~` when negated).
    Match {
        /// String to match (an expression).
        value: OpId,
        /// Compiled pattern.
        re: ReId,
        /// `!~`.
        negate: bool,
    },
    /// `target =~ s/re/repl/`.
    Subst {
        /// The lvalue being edited.
        target: Target,
        /// Compiled pattern.
        re: ReId,
        /// Replacement template.
        repl: Vec<Part>,
        /// `/g` flag.
        global: bool,
    },
    /// `print ?FH LIST`.
    Print {
        /// Optional filehandle name.
        fh: Option<String>,
        /// Arguments.
        args: Vec<OpId>,
    },
    /// Call a user sub.
    Call(String, Vec<OpId>),
    /// Builtin function.
    Builtin(BuiltinKind, Vec<OpId>),
    /// `@arr = split(/re/, expr)` — evaluates to the element count.
    SplitAssign(ArrId, ReId, OpId),
    /// `@arr = (list)`.
    ListAssign(ArrId, Vec<OpId>),
    /// `join(sep, @arr)`.
    JoinArr(OpId, ArrId),
    /// `push(@arr, v, …)`.
    ArrPush(ArrId, Vec<OpId>),
    /// `pop(@arr)`.
    ArrPop(ArrId),
    /// `shift(@arr)`.
    ArrShift(ArrId),
    /// `unshift(@arr, v, …)`.
    ArrUnshift(ArrId, Vec<OpId>),
    /// `if/elsif/else`.
    If {
        /// Arms: `(condition, body)`; the final arm may be `(None, body)`
        /// for `else`.
        arms: Vec<(Option<OpId>, Vec<OpId>)>,
    },
    /// `while (cond) { body }`.
    While {
        /// Loop condition.
        cond: OpId,
        /// Body statements.
        body: Vec<OpId>,
    },
    /// C-style `for`.
    ForC {
        /// Initializer.
        init: Option<OpId>,
        /// Condition.
        cond: Option<OpId>,
        /// Step.
        step: Option<OpId>,
        /// Body.
        body: Vec<OpId>,
    },
    /// `foreach $v (source) { body }`.
    Foreach {
        /// Loop variable slot.
        var: SlotId,
        /// Iterated values.
        source: ListSource,
        /// Body.
        body: Vec<OpId>,
    },
    /// `last;`
    Last,
    /// `next;`
    Next,
    /// `return expr?;`
    Return(Option<OpId>),
    /// `local($a, $b) = @_;` — bind positional sub arguments with dynamic
    /// scoping.
    LocalArgs(Vec<SlotId>),
    /// `local($x);` — save and undef.
    Local(Vec<SlotId>),
    /// `open(FH, expr)`; evaluates to success.
    Open(String, OpId),
    /// `close(FH)`.
    CloseFh(String),
    /// `<FH>` — read one line; undef at EOF.
    ReadLine(String),
    /// `die LIST`.
    Die(Vec<OpId>),
}

impl Op {
    /// Virtual-command name for per-command attribution.
    pub(crate) fn cmd_name(&self) -> &'static str {
        match self {
            Op::ConstInt(_) | Op::ConstStr(_) => "const",
            Op::Interp(_) => "interp",
            Op::GetScalar(_) => "gvsv",
            Op::GetGroup(_) => "group",
            Op::GetElem(..) => "aelem",
            Op::GetHElem(..) => "helem",
            Op::ArrayLen(_) => "av_len",
            Op::Assign(..) => "assign",
            Op::AssignOp(..) => "assign_op",
            Op::PostIncr(..) | Op::PreIncr(..) => "incr",
            Op::Bin(kind, ..) => kind.cmd_name(),
            Op::Un(..) => "negate",
            Op::Ternary(..) => "cond_expr",
            Op::Match { .. } => "match",
            Op::Subst { .. } => "subst",
            Op::Print { .. } => "print",
            Op::Call(..) => "entersub",
            Op::Builtin(kind, _) => kind.cmd_name(),
            Op::SplitAssign(..) => "split",
            Op::ListAssign(..) => "aassign",
            Op::JoinArr(..) => "join",
            Op::ArrPush(..) => "push",
            Op::ArrPop(_) => "pop",
            Op::ArrShift(_) => "shift",
            Op::ArrUnshift(..) => "unshift",
            Op::If { .. } => "cond",
            Op::While { .. } => "enterloop",
            Op::ForC { .. } => "enterloop",
            Op::Foreach { .. } => "enteriter",
            Op::Last => "last",
            Op::Next => "next",
            Op::Return(_) => "return",
            Op::LocalArgs(_) | Op::Local(_) => "local",
            Op::Open(..) => "open",
            Op::CloseFh(_) => "close",
            Op::ReadLine(_) => "readline",
            Op::Die(_) => "die",
        }
    }
}

/// A user-defined sub.
#[derive(Debug, Clone)]
pub(crate) struct SubDef {
    pub body: Vec<OpId>,
}

/// A compiled program.
#[derive(Debug, Default)]
pub(crate) struct Program {
    /// All op nodes; `.1` is the node's simulated-memory address.
    pub ops: Vec<(Op, u32)>,
    /// Top-level statements.
    pub top: Vec<OpId>,
    /// User subs.
    pub subs: std::collections::HashMap<String, SubDef>,
    /// Compiled regexes.
    pub regexes: Vec<crate::regex::Regex>,
    /// Number of scalar slots.
    pub n_scalars: u32,
    /// Number of array slots.
    pub n_arrays: u32,
    /// Number of hash slots.
    pub n_hashes: u32,
    /// Scalar names, for diagnostics.
    pub scalar_names: Vec<String>,
}
