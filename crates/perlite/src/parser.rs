//! The startup compilation pass: source → op-tree.
//!
//! Perl performs this compilation every time a program is invoked; Table 2
//! reports its instruction count in parentheses. All work here is charged
//! under [`interp_core::Phase::Startup`] by the caller: the pass reads
//! every source byte through charged loads, and every op node it emits is
//! allocated and initialized in simulated memory. Scalar and array names
//! are resolved to slots *now* — the §3.3 point that precompilation
//! "compiles away" most symbol-table translations — while hash elements
//! keep a run-time translation.

use interp_core::TraceSink;
use interp_host::Machine;
use std::collections::HashMap;

use crate::error::PerlError;
use crate::lexer::{Lexer, StrPart, Tok};
use crate::ops::*;
use crate::regex::Regex;

pub(crate) struct Parser<'m, S: TraceSink> {
    m: &'m mut Machine<S>,
    lex: Lexer,
    buf: Option<Tok>,
    prog: Program,
    scalars: HashMap<String, SlotId>,
    arrays: HashMap<String, ArrId>,
    hashes: HashMap<String, HashId>,
    src_sim: interp_host::SimStr,
    charged_upto: usize,
    loop_depth: u32,
    /// Recursive-descent nesting depth, capped so hostile input (e.g. ten
    /// thousand open parens) yields a syntax error instead of exhausting
    /// the Rust call stack.
    nest: u32,
}

/// Deepest statement/expression nesting the parser will follow. Each
/// level costs a full precedence-ladder of Rust frames (tens of KB in
/// debug builds), so the cap must hold total parse recursion far below
/// a 2 MB thread stack.
const MAX_PARSE_NEST: u32 = 40;

/// Compile `src` into a [`Program`] (charged startup work).
pub(crate) fn parse_program<S: TraceSink>(
    m: &mut Machine<S>,
    src: &str,
) -> Result<Program, PerlError> {
    let src_sim = m.str_alloc(src.as_bytes());
    let mut p = Parser {
        m,
        lex: Lexer::new(src),
        buf: None,
        prog: Program::default(),
        scalars: HashMap::new(),
        arrays: HashMap::new(),
        hashes: HashMap::new(),
        src_sim,
        charged_upto: 0,
        loop_depth: 0,
        nest: 0,
    };
    while p.peek()? != &Tok::Eof {
        let stmt = p.statement()?;
        p.prog.top.push(stmt);
    }
    p.prog.n_scalars = p.scalars.len() as u32;
    p.prog.n_arrays = p.arrays.len() as u32;
    p.prog.n_hashes = p.hashes.len() as u32;
    let mut names = vec![String::new(); p.scalars.len()];
    for (name, &slot) in &p.scalars {
        names[slot as usize] = name.clone();
    }
    p.prog.scalar_names = names;
    Ok(p.prog)
}

impl<'m, S: TraceSink> Parser<'m, S> {
    fn err(&self, msg: impl Into<String>) -> PerlError {
        PerlError::at(self.lex.line(), msg.into())
    }

    /// Charge the source bytes the lexer has consumed since the last call.
    fn charge_progress(&mut self) {
        let upto = self.lex.consumed();
        // One byte load + classification per source character, plus
        // per-token overhead charged by callers.
        for i in self.charged_upto..upto {
            self.m.lb(self.src_sim.data() + i as u32);
            self.m.alu();
        }
        self.charged_upto = upto;
    }

    fn peek(&mut self) -> Result<&Tok, PerlError> {
        if self.buf.is_none() {
            let t = self.lex.next()?;
            self.charge_progress();
            self.buf = Some(t);
        }
        Ok(self.buf.as_ref().expect("just filled"))
    }

    fn bump(&mut self) -> Result<Tok, PerlError> {
        self.peek()?;
        Ok(self.buf.take().expect("peeked"))
    }

    fn eat_punct(&mut self, p: &str) -> Result<bool, PerlError> {
        if matches!(self.peek()?, Tok::Punct(q) if *q == p) {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), PerlError> {
        if self.eat_punct(p)? {
            Ok(())
        } else {
            let found = format!("{:?}", self.peek()?);
            Err(self.err(format!("expected `{p}`, found {found}")))
        }
    }

    /// Emit an op node: allocates its record in simulated memory and
    /// initializes it (charged compile-time stores).
    fn emit(&mut self, op: Op) -> OpId {
        let addr = self.m.malloc(16);
        let id = self.prog.ops.len() as OpId;
        self.m.sw(addr, id);
        self.m.sw(addr + 4, 0);
        self.m.sw(addr + 8, 0);
        self.m.alu_n(2);
        self.prog.ops.push((op, addr));
        id
    }

    fn scalar_slot(&mut self, name: &str) -> SlotId {
        let next = self.scalars.len() as SlotId;
        *self.scalars.entry(name.to_string()).or_insert(next)
    }

    fn array_slot(&mut self, name: &str) -> ArrId {
        let next = self.arrays.len() as ArrId;
        *self.arrays.entry(name.to_string()).or_insert(next)
    }

    fn hash_slot(&mut self, name: &str) -> HashId {
        let next = self.hashes.len() as HashId;
        *self.hashes.entry(name.to_string()).or_insert(next)
    }

    /// Compile a regex (charged; stored in the program's regex table).
    fn add_regex(&mut self, pattern: &str) -> Result<ReId, PerlError> {
        let re = Regex::compile(pattern, self.m)?;
        self.prog.regexes.push(re);
        Ok((self.prog.regexes.len() - 1) as ReId)
    }

    /// Read a regex literal from raw source (buffer must be empty).
    fn raw_regex(&mut self) -> Result<(String, String), PerlError> {
        debug_assert!(self.buf.is_none(), "regex context with buffered token");
        let Some(delim) = self.lex.peek_raw() else {
            return Err(self.err("expected a regex"));
        };
        let delim = if delim == b'm' {
            // m/.../; consume the 'm'.
            let t = self.lex.next()?;
            if !matches!(t, Tok::Ident(ref s) if s == "m") {
                return Err(self.err("expected m/…/"));
            }
            self.lex
                .peek_raw()
                .ok_or_else(|| self.err("expected a regex delimiter"))?
        } else {
            delim
        };
        let body = self.lex.regex_body(delim)?;
        let flags = self.lex.regex_flags();
        self.charge_progress();
        Ok((body, flags))
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<OpId, PerlError> {
        self.nest += 1;
        if self.nest > MAX_PARSE_NEST {
            self.nest -= 1;
            return Err(self.err("statement nesting too deep"));
        }
        let out = self.statement_nested();
        self.nest -= 1;
        out
    }

    fn statement_nested(&mut self) -> Result<OpId, PerlError> {
        match self.peek()?.clone() {
            Tok::Ident(word) => match word.as_str() {
                "if" | "unless" => return self.if_statement(),
                "while" | "until" => return self.while_statement(),
                "for" => return self.for_statement(),
                "foreach" => return self.foreach_statement(),
                "sub" => return self.sub_definition(),
                "last" => {
                    self.bump()?;
                    let id = self.emit(Op::Last);
                    return self.finish_simple(id);
                }
                "next" => {
                    self.bump()?;
                    let id = self.emit(Op::Next);
                    return self.finish_simple(id);
                }
                "return" => {
                    self.bump()?;
                    let value = if matches!(self.peek()?, Tok::Punct(";")) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    let id = self.emit(Op::Return(value));
                    return self.finish_simple(id);
                }
                "local" => return self.local_statement(),
                _ => {}
            },
            _ => {}
        }
        let e = self.expr()?;
        self.finish_simple(e)
    }

    /// Consume the trailing `;`, handling `EXPR if COND;` / `EXPR unless
    /// COND;` statement modifiers.
    fn finish_simple(&mut self, stmt: OpId) -> Result<OpId, PerlError> {
        let wrapped = match self.peek()?.clone() {
            Tok::Ident(w) if w == "if" || w == "unless" => {
                self.bump()?;
                let mut cond = self.expr()?;
                if w == "unless" {
                    cond = self.emit(Op::Un(UnKind::Not, cond));
                }
                self.emit(Op::If {
                    arms: vec![(Some(cond), vec![stmt])],
                })
            }
            Tok::Ident(w) if w == "while" => {
                self.bump()?;
                let cond = self.expr()?;
                self.emit(Op::While {
                    cond,
                    body: vec![stmt],
                })
            }
            _ => stmt,
        };
        self.expect_punct(";")?;
        Ok(wrapped)
    }

    fn block(&mut self) -> Result<Vec<OpId>, PerlError> {
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}")? {
            if *self.peek()? == Tok::Eof {
                return Err(self.err("unexpected end of file in block"));
            }
            body.push(self.statement()?);
        }
        Ok(body)
    }

    fn if_statement(&mut self) -> Result<OpId, PerlError> {
        let Tok::Ident(kw) = self.bump()? else {
            unreachable!()
        };
        self.expect_punct("(")?;
        let mut cond = self.expr()?;
        if kw == "unless" {
            cond = self.emit(Op::Un(UnKind::Not, cond));
        }
        self.expect_punct(")")?;
        let body = self.block()?;
        let mut arms = vec![(Some(cond), body)];
        loop {
            match self.peek()?.clone() {
                Tok::Ident(w) if w == "elsif" => {
                    self.bump()?;
                    self.expect_punct("(")?;
                    let c = self.expr()?;
                    self.expect_punct(")")?;
                    let b = self.block()?;
                    arms.push((Some(c), b));
                }
                Tok::Ident(w) if w == "else" => {
                    self.bump()?;
                    let b = self.block()?;
                    arms.push((None, b));
                    break;
                }
                _ => break,
            }
        }
        Ok(self.emit(Op::If { arms }))
    }

    fn while_statement(&mut self) -> Result<OpId, PerlError> {
        let Tok::Ident(kw) = self.bump()? else {
            unreachable!()
        };
        self.expect_punct("(")?;
        let mut cond = self.expr()?;
        if kw == "until" {
            cond = self.emit(Op::Un(UnKind::Not, cond));
        }
        self.expect_punct(")")?;
        self.loop_depth += 1;
        let body = self.block()?;
        self.loop_depth -= 1;
        Ok(self.emit(Op::While { cond, body }))
    }

    fn for_statement(&mut self) -> Result<OpId, PerlError> {
        self.bump()?; // `for`
        // `for my`? no. Distinguish C-style from foreach-style.
        if matches!(self.peek()?, Tok::Scalar(_)) {
            return self.foreach_tail();
        }
        self.expect_punct("(")?;
        let init = if self.eat_punct(";")? {
            None
        } else {
            let e = self.expr()?;
            self.expect_punct(";")?;
            Some(e)
        };
        let cond = if self.eat_punct(";")? {
            None
        } else {
            let e = self.expr()?;
            self.expect_punct(";")?;
            Some(e)
        };
        let step = if self.eat_punct(")")? {
            None
        } else {
            let e = self.expr()?;
            self.expect_punct(")")?;
            Some(e)
        };
        self.loop_depth += 1;
        let body = self.block()?;
        self.loop_depth -= 1;
        Ok(self.emit(Op::ForC {
            init,
            cond,
            step,
            body,
        }))
    }

    fn foreach_statement(&mut self) -> Result<OpId, PerlError> {
        self.bump()?; // `foreach`
        self.foreach_tail()
    }

    fn foreach_tail(&mut self) -> Result<OpId, PerlError> {
        let Tok::Scalar(var) = self.bump()? else {
            return Err(self.err("foreach needs a scalar loop variable"));
        };
        let var = self.scalar_slot(&var);
        self.expect_punct("(")?;
        let source = self.list_source()?;
        self.expect_punct(")")?;
        self.loop_depth += 1;
        let body = self.block()?;
        self.loop_depth -= 1;
        Ok(self.emit(Op::Foreach { var, source, body }))
    }

    /// Parse the parenthesized list a `foreach` iterates (after `(`).
    fn list_source(&mut self) -> Result<ListSource, PerlError> {
        match self.peek()?.clone() {
            Tok::Array(name) => {
                self.bump()?;
                Ok(ListSource::Array(self.array_slot(&name)))
            }
            Tok::Ident(w) if w == "keys" => {
                self.bump()?;
                let Tok::Hash(h) = self.bump()? else {
                    return Err(self.err("keys needs %hash"));
                };
                Ok(ListSource::Keys(self.hash_slot(&h)))
            }
            Tok::Ident(w) if w == "split" => {
                self.bump()?;
                let (re, value) = self.split_args()?;
                Ok(ListSource::Split(re, value))
            }
            _ => {
                let first = self.expr()?;
                if self.eat_punct("..")? {
                    let last = self.expr()?;
                    Ok(ListSource::Range(first, last))
                } else {
                    let mut items = vec![first];
                    while self.eat_punct(",")? {
                        items.push(self.expr()?);
                    }
                    Ok(ListSource::Exprs(items))
                }
            }
        }
    }

    /// Parse `( /re/ , expr )` after `split`.
    fn split_args(&mut self) -> Result<(ReId, OpId), PerlError> {
        self.expect_punct("(")?;
        let (pat, _flags) = self.raw_regex()?;
        let re = self.add_regex(&pat)?;
        self.expect_punct(",")?;
        let value = self.expr()?;
        self.expect_punct(")")?;
        Ok((re, value))
    }

    fn sub_definition(&mut self) -> Result<OpId, PerlError> {
        self.bump()?; // `sub`
        let Tok::Ident(name) = self.bump()? else {
            return Err(self.err("sub needs a name"));
        };
        let body = self.block()?;
        self.prog.subs.insert(name, SubDef { body });
        // A definition contributes no run-time op; emit a no-op constant.
        Ok(self.emit(Op::ConstInt(0)))
    }

    fn local_statement(&mut self) -> Result<OpId, PerlError> {
        self.bump()?; // `local`
        self.expect_punct("(")?;
        let mut slots = Vec::new();
        loop {
            let Tok::Scalar(name) = self.bump()? else {
                return Err(self.err("local takes scalar variables"));
            };
            slots.push(self.scalar_slot(&name));
            if !self.eat_punct(",")? {
                break;
            }
        }
        self.expect_punct(")")?;
        let id = if self.eat_punct("=")? {
            // `local(...) = @_;`
            let Tok::Array(a) = self.bump()? else {
                return Err(self.err("expected @_ after local(...) ="));
            };
            if a != "_" {
                return Err(self.err("only `= @_` is supported after local(...)"));
            }
            self.emit(Op::LocalArgs(slots))
        } else {
            self.emit(Op::Local(slots))
        };
        self.finish_simple(id)
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<OpId, PerlError> {
        self.nest += 1;
        if self.nest > MAX_PARSE_NEST {
            self.nest -= 1;
            return Err(self.err("expression nesting too deep"));
        }
        let out = self.expr_nested();
        self.nest -= 1;
        out
    }

    fn expr_nested(&mut self) -> Result<OpId, PerlError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<OpId, PerlError> {
        let lhs = self.ternary()?;
        for (tok, op) in [
            ("+=", BinKind::Add),
            ("-=", BinKind::Sub),
            ("*=", BinKind::Mul),
            ("/=", BinKind::Div),
            ("%=", BinKind::Mod),
            (".=", BinKind::Concat),
        ] {
            if self.eat_punct(tok)? {
                let target = self.as_target(lhs)?;
                let value = self.assignment()?;
                return Ok(self.emit(Op::AssignOp(target, op, value)));
            }
        }
        if self.eat_punct("=")? {
            // Array assignment forms were handled in `primary` for `@a`.
            let target = self.as_target(lhs)?;
            let value = self.assignment()?;
            return Ok(self.emit(Op::Assign(target, value)));
        }
        Ok(lhs)
    }

    /// Re-interpret an already-parsed expression as an assignable target.
    fn as_target(&mut self, id: OpId) -> Result<Target, PerlError> {
        match &self.prog.ops[id as usize].0 {
            Op::GetScalar(slot) => Ok(Target::Scalar(*slot)),
            Op::GetElem(arr, idx) => Ok(Target::Elem(*arr, *idx)),
            Op::GetHElem(h, key) => Ok(Target::HElem(*h, *key)),
            _ => Err(self.err("left side of assignment is not assignable")),
        }
    }

    fn ternary(&mut self) -> Result<OpId, PerlError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?")? {
            let a = self.assignment()?;
            self.expect_punct(":")?;
            let b = self.assignment()?;
            return Ok(self.emit(Op::Ternary(cond, a, b)));
        }
        Ok(cond)
    }

    fn peek_binop(&mut self) -> Result<Option<(BinKind, u8)>, PerlError> {
        Ok(match self.peek()? {
            Tok::Punct("||") => Some((BinKind::Or, 1)),
            Tok::Punct("&&") => Some((BinKind::And, 2)),
            Tok::Punct("|") => Some((BinKind::BitOr, 3)),
            Tok::Punct("^") => Some((BinKind::BitXor, 3)),
            Tok::Punct("&") => Some((BinKind::BitAnd, 4)),
            Tok::Punct("==") => Some((BinKind::NumEq, 5)),
            Tok::Punct("!=") => Some((BinKind::NumNe, 5)),
            Tok::Ident(w) if w == "eq" => Some((BinKind::StrEq, 5)),
            Tok::Ident(w) if w == "ne" => Some((BinKind::StrNe, 5)),
            Tok::Punct("<") => Some((BinKind::NumLt, 6)),
            Tok::Punct("<=") => Some((BinKind::NumLe, 6)),
            Tok::Punct(">") => Some((BinKind::NumGt, 6)),
            Tok::Punct(">=") => Some((BinKind::NumGe, 6)),
            Tok::Ident(w) if w == "lt" => Some((BinKind::StrLt, 6)),
            Tok::Ident(w) if w == "gt" => Some((BinKind::StrGt, 6)),
            Tok::Punct("<<") => Some((BinKind::Shl, 7)),
            Tok::Punct(">>") => Some((BinKind::Shr, 7)),
            Tok::Punct("+") => Some((BinKind::Add, 8)),
            Tok::Punct("-") => Some((BinKind::Sub, 8)),
            Tok::Punct(".") => Some((BinKind::Concat, 8)),
            Tok::Punct("*") => Some((BinKind::Mul, 9)),
            Tok::Punct("/") => Some((BinKind::Div, 9)),
            Tok::Punct("%") => Some((BinKind::Mod, 9)),
            _ => None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<OpId, PerlError> {
        let mut lhs = self.match_level()?;
        while let Some((kind, prec)) = self.peek_binop()? {
            if prec < min_prec {
                break;
            }
            self.bump()?;
            let rhs = self.binary(prec + 1)?;
            lhs = self.emit(Op::Bin(kind, lhs, rhs));
        }
        Ok(lhs)
    }

    /// `expr =~ /re/`, `expr =~ s/re/repl/flags`, `expr !~ /re/`.
    fn match_level(&mut self) -> Result<OpId, PerlError> {
        let lhs = self.unary()?;
        let negate = if self.eat_punct("=~")? {
            false
        } else if self.eat_punct("!~")? {
            true
        } else {
            return Ok(lhs);
        };
        // Regex context: decide between m// and s///.
        debug_assert!(self.buf.is_none());
        let raw = self
            .lex
            .peek_raw()
            .ok_or_else(|| self.err("expected a pattern after =~"))?;
        if raw == b's' {
            let t = self.lex.next()?;
            self.charge_progress();
            if !matches!(t, Tok::Ident(ref s) if s == "s") {
                return Err(self.err("expected s/…/…/ after =~"));
            }
            let delim = self
                .lex
                .peek_raw()
                .ok_or_else(|| self.err("expected a delimiter"))?;
            let pat = self.lex.regex_body(delim)?;
            // The replacement: read up to the same delimiter (the byte
            // *after* the pattern's closing delimiter is the start).
            let repl_src = {
                // regex_body consumed the closing delimiter; the
                // replacement follows immediately.
                let mut out = Vec::new();
                loop {
                    let Some(c) = self.lex.peek_raw_byte() else {
                        return Err(self.err("unterminated substitution"));
                    };
                    if c == delim {
                        self.lex.skip_byte();
                        break;
                    }
                    if c == b'\\' {
                        self.lex.skip_byte();
                        if let Some(e) = self.lex.peek_raw_byte() {
                            out.push(match e {
                                b'n' => b'\n',
                                b't' => b'\t',
                                other => other,
                            });
                            self.lex.skip_byte();
                        }
                        continue;
                    }
                    out.push(c);
                    self.lex.skip_byte();
                }
                String::from_utf8_lossy(&out).into_owned()
            };
            let flags = self.lex.regex_flags();
            self.charge_progress();
            let re = self.add_regex(&pat)?;
            let repl = self.interp_parts_from_source(&repl_src)?;
            let target = self.as_target(lhs)?;
            if negate {
                return Err(self.err("!~ with s/// is not supported"));
            }
            return Ok(self.emit(Op::Subst {
                target,
                re,
                repl,
                global: flags.contains('g'),
            }));
        }
        let (pat, _flags) = self.raw_regex()?;
        let re = self.add_regex(&pat)?;
        Ok(self.emit(Op::Match {
            value: lhs,
            re,
            negate,
        }))
    }

    /// Compile replacement/interpolation source text into parts.
    fn interp_parts_from_source(&mut self, src: &str) -> Result<Vec<Part>, PerlError> {
        let bytes = src.as_bytes();
        let mut parts = Vec::new();
        let mut lit = Vec::new();
        let mut i = 0usize;
        while i < bytes.len() {
            if bytes[i] == b'$' && i + 1 < bytes.len() {
                let next = bytes[i + 1];
                if next.is_ascii_digit() && next != b'0' {
                    if !lit.is_empty() {
                        let s = self.m.str_alloc(&std::mem::take(&mut lit));
                        parts.push(Part::Lit(s));
                    }
                    parts.push(Part::Group(next - b'0'));
                    i += 2;
                    continue;
                }
                if next.is_ascii_alphabetic() || next == b'_' {
                    let mut j = i + 1;
                    while j < bytes.len()
                        && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if !lit.is_empty() {
                        let s = self.m.str_alloc(&std::mem::take(&mut lit));
                        parts.push(Part::Lit(s));
                    }
                    // The range is ASCII alphanumerics/underscores by
                    // construction, so the lossy path never triggers.
                    let name = String::from_utf8_lossy(&bytes[i + 1..j]).into_owned();
                    let slot = self.scalar_slot(&name);
                    let op = self.emit(Op::GetScalar(slot));
                    parts.push(Part::Expr(op));
                    i = j;
                    continue;
                }
            }
            lit.push(bytes[i]);
            i += 1;
        }
        if !lit.is_empty() {
            let s = self.m.str_alloc(&lit);
            parts.push(Part::Lit(s));
        }
        Ok(parts)
    }

    fn unary(&mut self) -> Result<OpId, PerlError> {
        if self.eat_punct("-")? {
            let inner = self.unary()?;
            return Ok(self.emit(Op::Un(UnKind::Neg, inner)));
        }
        if self.eat_punct("!")? {
            let inner = self.unary()?;
            return Ok(self.emit(Op::Un(UnKind::Not, inner)));
        }
        if self.eat_punct("~")? {
            let inner = self.unary()?;
            return Ok(self.emit(Op::Un(UnKind::BitNot, inner)));
        }
        if self.eat_punct("++")? {
            let inner = self.unary()?;
            let t = self.as_target(inner)?;
            return Ok(self.emit(Op::PreIncr(t, 1)));
        }
        if self.eat_punct("--")? {
            let inner = self.unary()?;
            let t = self.as_target(inner)?;
            return Ok(self.emit(Op::PreIncr(t, -1)));
        }
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("++")? {
                let t = self.as_target(e)?;
                e = self.emit(Op::PostIncr(t, 1));
            } else if self.eat_punct("--")? {
                let t = self.as_target(e)?;
                e = self.emit(Op::PostIncr(t, -1));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<OpId>, PerlError> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")")? {
            loop {
                args.push(self.expr()?);
                if !self.eat_punct(",")? {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(args)
    }

    fn primary(&mut self) -> Result<OpId, PerlError> {
        match self.bump()? {
            Tok::Num(v) => Ok(self.emit(Op::ConstInt(v))),
            Tok::StrSingle(bytes) => {
                let s = self.m.str_alloc(&bytes);
                Ok(self.emit(Op::ConstStr(s)))
            }
            Tok::StrDouble(parts) => {
                let compiled = self.compile_parts(parts)?;
                Ok(self.emit(Op::Interp(compiled)))
            }
            Tok::Scalar(name) => self.scalar_expr(name),
            Tok::Array(name) => {
                // `@a` in expression context: element count; `@a = …` list
                // assignment.
                let arr = self.array_slot(&name);
                if self.eat_punct("=")? {
                    return self.array_assignment(arr);
                }
                Ok(self.emit(Op::ArrayLen(arr)))
            }
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("&") => {
                let Tok::Ident(name) = self.bump()? else {
                    return Err(self.err("expected sub name after `&`"));
                };
                let args = if matches!(self.peek()?, Tok::Punct("(")) {
                    self.call_args()?
                } else {
                    Vec::new()
                };
                Ok(self.emit(Op::Call(name, args)))
            }
            Tok::Ident(word) => self.ident_expr(word),
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    /// `$name`, `$name[expr]`, `$name{key}`, `$1`-`$9`.
    fn scalar_expr(&mut self, name: String) -> Result<OpId, PerlError> {
        if name.len() == 1 && name.as_bytes()[0].is_ascii_digit() && name != "0" {
            return Ok(self.emit(Op::GetGroup(name.as_bytes()[0] - b'0')));
        }
        if self.eat_punct("[")? {
            let arr = self.array_slot(&name);
            let idx = self.expr()?;
            self.expect_punct("]")?;
            return Ok(self.emit(Op::GetElem(arr, idx)));
        }
        if matches!(self.peek()?, Tok::Punct("{")) {
            self.bump()?;
            let h = self.hash_slot(&name);
            // Hash keys: bareword or expression.
            let key = match self.peek()?.clone() {
                Tok::Ident(word) => {
                    self.bump()?;
                    let s = self.m.str_alloc(word.as_bytes());
                    self.emit(Op::ConstStr(s))
                }
                _ => self.expr()?,
            };
            self.expect_punct("}")?;
            return Ok(self.emit(Op::GetHElem(h, key)));
        }
        let slot = self.scalar_slot(&name);
        Ok(self.emit(Op::GetScalar(slot)))
    }

    /// `@arr = split(...)` / `@arr = (list)` / `@arr = ();`
    fn array_assignment(&mut self, arr: ArrId) -> Result<OpId, PerlError> {
        if matches!(self.peek()?, Tok::Ident(w) if w == "split") {
            self.bump()?;
            let (re, value) = self.split_args()?;
            return Ok(self.emit(Op::SplitAssign(arr, re, value)));
        }
        self.expect_punct("(")?;
        let mut items = Vec::new();
        if !self.eat_punct(")")? {
            loop {
                items.push(self.expr()?);
                if !self.eat_punct(",")? {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(self.emit(Op::ListAssign(arr, items)))
    }

    fn compile_parts(&mut self, parts: Vec<StrPart>) -> Result<Vec<Part>, PerlError> {
        let mut out = Vec::new();
        for part in parts {
            match part {
                StrPart::Lit(bytes) => {
                    let s = self.m.str_alloc(&bytes);
                    out.push(Part::Lit(s));
                }
                StrPart::Var(name) => {
                    if name.len() == 1
                        && name.as_bytes()[0].is_ascii_digit()
                        && name != "0"
                    {
                        out.push(Part::Group(name.as_bytes()[0] - b'0'));
                    } else {
                        let slot = self.scalar_slot(&name);
                        let op = self.emit(Op::GetScalar(slot));
                        out.push(Part::Expr(op));
                    }
                }
                StrPart::Elem(name, index_src) => {
                    let arr = self.array_slot(&name);
                    let idx = self.parse_embedded(&index_src)?;
                    let op = self.emit(Op::GetElem(arr, idx));
                    out.push(Part::Expr(op));
                }
                StrPart::HElem(name, key_src) => {
                    let h = self.hash_slot(&name);
                    let key = self.parse_embedded(&key_src)?;
                    let op = self.emit(Op::GetHElem(h, key));
                    out.push(Part::Expr(op));
                }
            }
        }
        Ok(out)
    }

    /// Parse an embedded index/key source fragment (`$a[...]` inside a
    /// string). Barewords become string constants, like hash keys.
    fn parse_embedded(&mut self, src: &str) -> Result<OpId, PerlError> {
        let trimmed = src.trim();
        if trimmed
            .bytes()
            .all(|c| c.is_ascii_alphanumeric() || c == b'_')
            && trimmed
                .bytes()
                .next()
                .map(|c| c.is_ascii_alphabetic() || c == b'_')
                .unwrap_or(false)
        {
            let s = self.m.str_alloc(trimmed.as_bytes());
            return Ok(self.emit(Op::ConstStr(s)));
        }
        // Spin up a sub-parser sharing our slot tables.
        let mut sub = Parser {
            m: self.m,
            lex: Lexer::new(trimmed),
            buf: None,
            prog: std::mem::take(&mut self.prog),
            scalars: std::mem::take(&mut self.scalars),
            arrays: std::mem::take(&mut self.arrays),
            hashes: std::mem::take(&mut self.hashes),
            src_sim: self.src_sim,
            charged_upto: 0,
            loop_depth: 0,
            nest: 0,
        };
        let result = sub.expr();
        self.prog = std::mem::take(&mut sub.prog);
        self.scalars = std::mem::take(&mut sub.scalars);
        self.arrays = std::mem::take(&mut sub.arrays);
        self.hashes = std::mem::take(&mut sub.hashes);
        result
    }

    /// Barewords: builtins, sub calls, `<FH>`, `keys`, `print`, `die`…
    fn ident_expr(&mut self, word: String) -> Result<OpId, PerlError> {
        // `<FH>` readline comes through as Ident("<FH>").
        if word.starts_with('<') && word.ends_with('>') {
            let fh = word[1..word.len() - 1].to_string();
            return Ok(self.emit(Op::ReadLine(fh)));
        }
        match word.as_str() {
            "print" => {
                // Optional filehandle: ALL-CAPS bareword right after print.
                let fh = match self.peek()? {
                    Tok::Ident(name)
                        if !name.is_empty()
                            && name
                                .bytes()
                                .all(|c| c.is_ascii_uppercase() || c == b'_' || c.is_ascii_digit())
                            && name != "STDOUT" =>
                    {
                        let Tok::Ident(name) = self.bump()? else {
                            unreachable!()
                        };
                        Some(name)
                    }
                    Tok::Ident(name) if name == "STDOUT" => {
                        self.bump()?;
                        None
                    }
                    _ => None,
                };
                let mut args = Vec::new();
                if !matches!(self.peek()?, Tok::Punct(";")) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_punct(",")? {
                            break;
                        }
                    }
                }
                Ok(self.emit(Op::Print { fh, args }))
            }
            "die" => {
                let mut args = Vec::new();
                if !matches!(self.peek()?, Tok::Punct(";")) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_punct(",")? {
                            break;
                        }
                    }
                }
                Ok(self.emit(Op::Die(args)))
            }
            "open" => {
                self.expect_punct("(")?;
                let Tok::Ident(fh) = self.bump()? else {
                    return Err(self.err("open needs a filehandle bareword"));
                };
                self.expect_punct(",")?;
                let name = self.expr()?;
                self.expect_punct(")")?;
                Ok(self.emit(Op::Open(fh, name)))
            }
            "close" => {
                self.expect_punct("(")?;
                let Tok::Ident(fh) = self.bump()? else {
                    return Err(self.err("close needs a filehandle bareword"));
                };
                self.expect_punct(")")?;
                Ok(self.emit(Op::CloseFh(fh)))
            }
            "length" => self.one_arg_builtin(BuiltinKind::Length),
            "substr" => self.n_arg_builtin(BuiltinKind::Substr),
            "index" => self.n_arg_builtin(BuiltinKind::Index),
            "sprintf" => self.n_arg_builtin(BuiltinKind::Sprintf),
            "chop" => self.one_arg_builtin(BuiltinKind::Chop),
            "uc" => self.one_arg_builtin(BuiltinKind::Uc),
            "lc" => self.one_arg_builtin(BuiltinKind::Lc),
            "ord" => self.one_arg_builtin(BuiltinKind::Ord),
            "chr" => self.one_arg_builtin(BuiltinKind::Chr),
            "int" => self.one_arg_builtin(BuiltinKind::Int),
            "defined" => self.one_arg_builtin(BuiltinKind::Defined),
            "join" => {
                self.expect_punct("(")?;
                let sep = self.expr()?;
                self.expect_punct(",")?;
                let Tok::Array(a) = self.bump()? else {
                    return Err(self.err("join needs an @array"));
                };
                let arr = self.array_slot(&a);
                self.expect_punct(")")?;
                Ok(self.emit(Op::JoinArr(sep, arr)))
            }
            "push" | "unshift" => {
                self.expect_punct("(")?;
                let Tok::Array(a) = self.bump()? else {
                    return Err(self.err("push needs an @array"));
                };
                let arr = self.array_slot(&a);
                let mut values = Vec::new();
                while self.eat_punct(",")? {
                    values.push(self.expr()?);
                }
                self.expect_punct(")")?;
                Ok(if word == "push" {
                    self.emit(Op::ArrPush(arr, values))
                } else {
                    self.emit(Op::ArrUnshift(arr, values))
                })
            }
            "pop" | "shift" => {
                self.expect_punct("(")?;
                let Tok::Array(a) = self.bump()? else {
                    return Err(self.err("pop needs an @array"));
                };
                let arr = self.array_slot(&a);
                self.expect_punct(")")?;
                Ok(if word == "pop" {
                    self.emit(Op::ArrPop(arr))
                } else {
                    self.emit(Op::ArrShift(arr))
                })
            }
            "scalar" => {
                self.expect_punct("(")?;
                let Tok::Array(a) = self.bump()? else {
                    return Err(self.err("scalar() supports @array only"));
                };
                let arr = self.array_slot(&a);
                self.expect_punct(")")?;
                Ok(self.emit(Op::ArrayLen(arr)))
            }
            _ => {
                // User sub call.
                if matches!(self.peek()?, Tok::Punct("(")) {
                    let args = self.call_args()?;
                    Ok(self.emit(Op::Call(word, args)))
                } else {
                    Err(self.err(format!("unknown bareword `{word}`")))
                }
            }
        }
    }

    fn one_arg_builtin(&mut self, kind: BuiltinKind) -> Result<OpId, PerlError> {
        self.expect_punct("(")?;
        let a = self.expr()?;
        self.expect_punct(")")?;
        Ok(self.emit(Op::Builtin(kind, vec![a])))
    }

    fn n_arg_builtin(&mut self, kind: BuiltinKind) -> Result<OpId, PerlError> {
        let args = self.call_args()?;
        Ok(self.emit(Op::Builtin(kind, args)))
    }
}
