//! A backtracking regular-expression engine.
//!
//! Patterns are compiled once (during Perlite's startup compilation pass,
//! like Perl 4) into a program held in simulated memory; matching executes
//! that program with every VM step charged — a program-word load, an input
//! byte load, and bookkeeping ALU work. Regex-heavy programs therefore
//! spend the bulk of their execute-side instructions inside `match`/`subst`
//! commands, reproducing the paper's Figure 2 profile for txt2html and
//! weblint.
//!
//! Supported syntax: literals, `.`, `[...]`/`[^...]` (with ranges), `\d`
//! `\w` `\s` (and negations), `*` `+` `?`, grouping `(...)` with capture,
//! alternation `|`, anchors `^` `$`, and escaped metacharacters.

use interp_core::TraceSink;
use interp_host::{Machine, SimStr};

use crate::error::PerlError;

/// One instruction of the regex VM.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RInsn {
    /// Match one literal byte.
    Char(u8),
    /// Match any byte except newline.
    Any,
    /// Match a character class (index into the class table; `neg` flips).
    Class { id: usize, neg: bool },
    /// Try `a` first, then `b` (backtracking choice point).
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Record the current input position in save slot `n`.
    Save(usize),
    /// Anchor: beginning of input.
    Bol,
    /// Anchor: end of input.
    Eol,
    /// Successful match.
    Accept,
}

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Regex {
    pub(crate) prog: Vec<RInsn>,
    pub(crate) classes: Vec<[bool; 256]>,
    /// Pattern source (for diagnostics).
    pub(crate) source: String,
    /// Base address of the program image in simulated memory.
    pub(crate) sim_addr: u32,
    /// Number of capture groups.
    pub(crate) groups: usize,
}

/// A successful match: overall span plus capture-group spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// Start byte offset of the whole match.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// Capture groups: `groups[k] = Some((start, end))` for group `k+1`.
    pub groups: Vec<Option<(usize, usize)>>,
}

struct Compiler<'p> {
    pat: &'p [u8],
    pos: usize,
    prog: Vec<RInsn>,
    classes: Vec<[bool; 256]>,
    groups: usize,
}

impl<'p> Compiler<'p> {
    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn err(&self, msg: &str) -> PerlError {
        PerlError::runtime(format!(
            "regex error at offset {} of {:?}: {msg}",
            self.pos,
            String::from_utf8_lossy(self.pat)
        ))
    }

    /// alternation := concat ('|' concat)*
    ///
    /// Each branch is compiled in place, then — if there are alternatives —
    /// re-laid-out as a split chain with all internal targets relocated by
    /// each branch's displacement (subexpressions are self-contained, so
    /// every target points within its own branch).
    fn alternation(&mut self) -> Result<(), PerlError> {
        let start = self.prog.len();
        self.concat()?;
        if self.peek() != Some(b'|') {
            return Ok(());
        }
        let mut branches = vec![(start, self.prog.split_off(start))];
        while self.peek() == Some(b'|') {
            self.bump();
            let mark = self.prog.len();
            self.concat()?;
            branches.push((mark, self.prog.split_off(mark)));
        }
        // Layout sizes: every branch but the last costs split + body + jmp.
        let sizes: Vec<usize> = branches
            .iter()
            .enumerate()
            .map(|(i, (_, b))| b.len() + if i + 1 < branches.len() { 2 } else { 0 })
            .collect();
        let mut cursor = self.prog.len();
        let end = cursor + sizes.iter().sum::<usize>();
        let last = branches.len() - 1;
        for (i, (orig_start, body)) in branches.into_iter().enumerate() {
            if i < last {
                let body_start = cursor + 1;
                let alt_start = cursor + sizes[i];
                self.prog.push(RInsn::Split(body_start, alt_start));
                cursor += 1;
                let d = body_start as isize - orig_start as isize;
                for insn in body {
                    self.prog.push(shift_insn(insn, d));
                    cursor += 1;
                }
                self.prog.push(RInsn::Jmp(end));
                cursor += 1;
            } else {
                let d = cursor as isize - orig_start as isize;
                for insn in body {
                    self.prog.push(shift_insn(insn, d));
                    cursor += 1;
                }
            }
        }
        Ok(())
    }

    /// concat := repeat*
    fn concat(&mut self) -> Result<(), PerlError> {
        while let Some(c) = self.peek() {
            if c == b'|' || c == b')' {
                break;
            }
            self.repeat()?;
        }
        Ok(())
    }

    /// repeat := atom ('*' | '+' | '?')?
    fn repeat(&mut self) -> Result<(), PerlError> {
        let start = self.prog.len();
        self.atom()?;
        match self.peek() {
            Some(b'*') => {
                self.bump();
                // L1: split L2, L4; L2: atom; L3: jmp L1; L4:
                let body = self.prog.split_off(start);
                let l1 = self.prog.len();
                let l2 = l1 + 1;
                let l4 = l2 + body.len() + 1;
                self.prog.push(RInsn::Split(l2, l4));
                let d = l2 as isize - start as isize;
                for insn in body {
                    self.prog.push(shift_insn(insn, d));
                }
                self.prog.push(RInsn::Jmp(l1));
            }
            Some(b'+') => {
                self.bump();
                // L1: atom; L2: split L1, L3  (no relocation needed).
                let next = self.prog.len() + 1;
                self.prog.push(RInsn::Split(start, next));
            }
            Some(b'?') => {
                self.bump();
                let body = self.prog.split_off(start);
                let l1 = self.prog.len();
                let l2 = l1 + 1;
                let l3 = l2 + body.len();
                self.prog.push(RInsn::Split(l2, l3));
                let d = l2 as isize - start as isize;
                for insn in body {
                    self.prog.push(shift_insn(insn, d));
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn class_of(&mut self, kind: u8) -> RInsn {
        let mut table = [false; 256];
        match kind | 32 {
            b'd' => (b'0'..=b'9').for_each(|c| table[c as usize] = true),
            b'w' => {
                (b'0'..=b'9').for_each(|c| table[c as usize] = true);
                (b'a'..=b'z').for_each(|c| table[c as usize] = true);
                (b'A'..=b'Z').for_each(|c| table[c as usize] = true);
                table[b'_' as usize] = true;
            }
            b's' => {
                for c in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                    table[c as usize] = true;
                }
            }
            _ => unreachable!(),
        }
        let id = self.classes.len();
        self.classes.push(table);
        RInsn::Class {
            id,
            neg: kind.is_ascii_uppercase(),
        }
    }

    fn atom(&mut self) -> Result<(), PerlError> {
        let c = self.bump().ok_or_else(|| self.err("unexpected end"))?;
        match c {
            b'.' => self.prog.push(RInsn::Any),
            b'^' => self.prog.push(RInsn::Bol),
            b'$' => self.prog.push(RInsn::Eol),
            b'(' => {
                self.groups += 1;
                let g = self.groups;
                self.prog.push(RInsn::Save(2 * g));
                self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("missing `)`"));
                }
                self.prog.push(RInsn::Save(2 * g + 1));
            }
            b'[' => {
                let mut table = [false; 256];
                let neg = if self.peek() == Some(b'^') {
                    self.bump();
                    true
                } else {
                    false
                };
                let mut first = true;
                loop {
                    let Some(c) = self.bump() else {
                        return Err(self.err("missing `]`"));
                    };
                    if c == b']' && !first {
                        break;
                    }
                    first = false;
                    let lo = if c == b'\\' {
                        match self.bump() {
                            Some(e) if matches!(e | 32, b'd' | b'w' | b's') => {
                                // Merge the named class into this table.
                                let RInsn::Class { id, neg: n } = self.class_of(e) else {
                                    unreachable!()
                                };
                                let named = self.classes[id];
                                for (i, slot) in table.iter_mut().enumerate() {
                                    if named[i] != n {
                                        *slot = true;
                                    }
                                }
                                continue;
                            }
                            Some(e) => unescape(e),
                            None => return Err(self.err("dangling escape")),
                        }
                    } else {
                        c
                    };
                    if self.peek() == Some(b'-')
                        && self.pat.get(self.pos + 1).copied() != Some(b']')
                    {
                        self.bump();
                        let hi = self.bump().ok_or_else(|| self.err("bad range"))?;
                        for b in lo..=hi {
                            table[b as usize] = true;
                        }
                    } else {
                        table[lo as usize] = true;
                    }
                }
                let id = self.classes.len();
                self.classes.push(table);
                self.prog.push(RInsn::Class { id, neg });
            }
            b'\\' => {
                let e = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                match e | 32 {
                    b'd' | b'w' | b's' if e.is_ascii_alphabetic() => {
                        let insn = self.class_of(e);
                        self.prog.push(insn);
                    }
                    _ => self.prog.push(RInsn::Char(unescape(e))),
                }
            }
            b'*' | b'+' | b'?' => return Err(self.err("quantifier with nothing to repeat")),
            other => self.prog.push(RInsn::Char(other)),
        }
        Ok(())
    }
}

fn unescape(e: u8) -> u8 {
    match e {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        other => other,
    }
}

/// Relocate a moved instruction's absolute targets by displacement `d`.
/// Subexpressions are self-contained (all their targets point within the
/// moved block), so a uniform shift is sufficient.
fn shift_insn(insn: RInsn, d: isize) -> RInsn {
    let shift = |t: usize| (t as isize + d) as usize;
    match insn {
        RInsn::Split(a, b) => RInsn::Split(shift(a), shift(b)),
        RInsn::Jmp(t) => RInsn::Jmp(shift(t)),
        other => other,
    }
}

impl Regex {
    /// Compile `pattern`, charging the compilation as startup work and
    /// placing the program image in simulated memory.
    ///
    /// # Errors
    ///
    /// Returns [`PerlError`] on malformed patterns.
    pub fn compile<S: TraceSink>(
        pattern: &str,
        m: &mut Machine<S>,
    ) -> Result<Regex, PerlError> {
        let mut c = Compiler {
            pat: pattern.as_bytes(),
            pos: 0,
            prog: vec![RInsn::Save(0)],
            classes: Vec::new(),
            groups: 0,
        };
        c.alternation()?;
        if c.pos < c.pat.len() {
            return Err(c.err("unbalanced `)`"));
        }
        c.prog.push(RInsn::Save(1));
        c.prog.push(RInsn::Accept);
        // Materialize the program in simulated memory (one word per insn +
        // class bitmaps), charging stores: this is compile-time work.
        let sim_addr = m.malloc((c.prog.len() as u32) * 4 + (c.classes.len() as u32) * 32);
        for (i, _insn) in c.prog.iter().enumerate() {
            m.sw(sim_addr + (i as u32) * 4, i as u32);
        }
        Ok(Regex {
            prog: c.prog,
            classes: c.classes,
            source: pattern.to_string(),
            sim_addr,
            groups: c.groups,
        })
    }

    /// The pattern source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Number of capture groups.
    pub fn group_count(&self) -> usize {
        self.groups
    }

    /// Search `input` (a simulated string) starting at byte `from`.
    /// Every VM step is charged against the machine.
    pub fn search<S: TraceSink>(
        &self,
        m: &mut Machine<S>,
        input: SimStr,
        from: usize,
    ) -> Option<MatchResult> {
        let text = m.peek_str(input);
        let anchored = matches!(self.prog.get(1), Some(RInsn::Bol)) && from == 0;
        let mut start = from;
        loop {
            if start > text.len() {
                return None;
            }
            m.alu(); // outer-loop bookkeeping
            if let Some(saves) = self.run(m, input, &text, start) {
                let groups = (1..=self.groups)
                    .map(|g| {
                        let (a, b) = (saves[2 * g], saves[2 * g + 1]);
                        match (a, b) {
                            (Some(a), Some(b)) => Some((a, b)),
                            _ => None,
                        }
                    })
                    .collect();
                return Some(MatchResult {
                    start: saves[0].unwrap_or(start),
                    end: saves[1].unwrap_or(start),
                    groups,
                });
            }
            if anchored {
                return None;
            }
            start += 1;
        }
    }

    /// Run the backtracking VM at one start position.
    fn run<S: TraceSink>(
        &self,
        m: &mut Machine<S>,
        input: SimStr,
        text: &[u8],
        start: usize,
    ) -> Option<Vec<Option<usize>>> {
        const MAX_STEPS: u64 = 2_000_000;
        let nsaves = 2 * (self.groups + 1);
        let mut saves: Vec<Option<usize>> = vec![None; nsaves.max(2)];
        let mut stack: Vec<(usize, usize, Vec<Option<usize>>)> = Vec::new();
        let mut pc = 0usize;
        let mut sp = start;
        let mut steps = 0u64;
        loop {
            steps += 1;
            if steps > MAX_STEPS {
                return None; // pathological backtracking cut off
            }
            // Charge: program-word fetch + dispatch.
            m.lw(self.sim_addr + (pc as u32) * 4);
            m.alu();
            let insn = &self.prog[pc];
            let failed = match insn {
                RInsn::Char(c) => {
                    if sp < text.len() {
                        m.lb(input.data() + sp as u32);
                        m.alu();
                    }
                    if sp < text.len() && text[sp] == *c {
                        sp += 1;
                        pc += 1;
                        false
                    } else {
                        true
                    }
                }
                RInsn::Any => {
                    if sp < text.len() {
                        m.lb(input.data() + sp as u32);
                        m.alu();
                    }
                    if sp < text.len() && text[sp] != b'\n' {
                        sp += 1;
                        pc += 1;
                        false
                    } else {
                        true
                    }
                }
                RInsn::Class { id, neg } => {
                    if sp < text.len() {
                        m.lb(input.data() + sp as u32);
                        // Bitmap probe in the compiled image.
                        m.lw(self.sim_addr + (self.prog.len() as u32) * 4 + (*id as u32) * 32);
                        m.alu();
                    }
                    if sp < text.len() && (self.classes[*id][text[sp] as usize] != *neg) {
                        sp += 1;
                        pc += 1;
                        false
                    } else {
                        true
                    }
                }
                RInsn::Split(a, b) => {
                    stack.push((*b, sp, saves.clone()));
                    m.alu_n(2); // choice-point push
                    pc = *a;
                    false
                }
                RInsn::Jmp(t) => {
                    pc = *t;
                    false
                }
                RInsn::Save(n) => {
                    if *n < saves.len() {
                        saves[*n] = Some(sp);
                    }
                    m.alu();
                    pc += 1;
                    false
                }
                RInsn::Bol => {
                    if sp == 0 {
                        pc += 1;
                        false
                    } else {
                        true
                    }
                }
                RInsn::Eol => {
                    if sp == text.len() {
                        pc += 1;
                        false
                    } else {
                        true
                    }
                }
                RInsn::Accept => return Some(saves),
            };
            if failed {
                match stack.pop() {
                    Some((bpc, bsp, bsaves)) => {
                        m.alu_n(2); // backtrack pop
                        pc = bpc;
                        sp = bsp;
                        saves = bsaves;
                    }
                    None => return None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::NullSink;

    fn m() -> Machine<NullSink> {
        Machine::new(NullSink)
    }

    fn find(pat: &str, text: &str) -> Option<(usize, usize)> {
        let mut machine = m();
        let re = Regex::compile(pat, &mut machine).unwrap();
        let input = machine.str_alloc(text.as_bytes());
        re.search(&mut machine, input, 0).map(|r| (r.start, r.end))
    }

    #[test]
    fn literals_and_dot() {
        assert_eq!(find("abc", "xxabcyy"), Some((2, 5)));
        assert_eq!(find("a.c", "abc"), Some((0, 3)));
        assert_eq!(find("a.c", "a\nc"), None);
        assert_eq!(find("abc", "abd"), None);
    }

    #[test]
    fn quantifiers() {
        assert_eq!(find("ab*c", "ac"), Some((0, 2)));
        assert_eq!(find("ab*c", "abbbbc"), Some((0, 6)));
        assert_eq!(find("ab+c", "ac"), None);
        assert_eq!(find("ab+c", "abc"), Some((0, 3)));
        assert_eq!(find("ab?c", "abc"), Some((0, 3)));
        assert_eq!(find("ab?c", "ac"), Some((0, 2)));
        // Greedy star backtracks.
        assert_eq!(find("a.*c", "abcbcd"), Some((0, 5)));
    }

    #[test]
    fn classes() {
        assert_eq!(find(r"\d+", "ab123cd"), Some((2, 5)));
        assert_eq!(find(r"\w+", " foo_1 "), Some((1, 6)));
        assert_eq!(find(r"\s", "ab c"), Some((2, 3)));
        assert_eq!(find(r"\D+", "12ab34"), Some((2, 4)));
        assert_eq!(find("[a-f]+", "zzdeadbeefzz"), Some((2, 10)));
        assert_eq!(find("[^0-9]+", "123abc456"), Some((3, 6)));
        assert_eq!(find(r"[\d,]+", "x1,2,3y"), Some((1, 6)));
    }

    #[test]
    fn anchors() {
        assert_eq!(find("^abc", "abcabc"), Some((0, 3)));
        assert_eq!(find("^bc", "abc"), None);
        assert_eq!(find("bc$", "abcbc"), Some((3, 5)));
        assert_eq!(find("bc$", "bca"), None);
        assert_eq!(find("^$", ""), Some((0, 0)));
    }

    #[test]
    fn alternation() {
        assert_eq!(find("cat|dog", "hotdog"), Some((3, 6)));
        assert_eq!(find("cat|dog|cow", "a cow!"), Some((2, 5)));
        assert_eq!(find("a(b|c)d", "acd"), Some((0, 3)));
        assert_eq!(find("x|y", "z"), None);
    }

    #[test]
    fn groups_capture() {
        let mut machine = m();
        let re = Regex::compile(r"(\w+)=(\d+)", &mut machine).unwrap();
        let input = machine.str_alloc(b"  width=400; ");
        let r = re.search(&mut machine, input, 0).unwrap();
        assert_eq!(r.groups.len(), 2);
        assert_eq!(r.groups[0], Some((2, 7)));
        assert_eq!(r.groups[1], Some((8, 11)));
    }

    #[test]
    fn search_from_offset() {
        let mut machine = m();
        let re = Regex::compile("ab", &mut machine).unwrap();
        let input = machine.str_alloc(b"ab ab");
        let r = re.search(&mut machine, input, 1).unwrap();
        assert_eq!((r.start, r.end), (3, 5));
    }

    #[test]
    fn errors() {
        let mut machine = m();
        assert!(Regex::compile("a(b", &mut machine).is_err());
        assert!(Regex::compile("*a", &mut machine).is_err());
        assert!(Regex::compile("[abc", &mut machine).is_err());
        assert!(Regex::compile("a)b", &mut machine).is_err());
    }

    #[test]
    fn matching_is_charged() {
        let mut machine = m();
        let re = Regex::compile(r"\w+@\w+", &mut machine).unwrap();
        let input = machine.str_alloc(b"contact us at someone@example for details");
        let before = machine.stats().instructions;
        let r = re.search(&mut machine, input, 0);
        assert!(r.is_some());
        let cost = machine.stats().instructions - before;
        assert!(cost > 200, "match cost = {cost}");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use interp_core::NullSink;
    use interp_host::Machine;

    fn find(pat: &str, text: &str) -> Option<(usize, usize)> {
        let mut machine = Machine::new(NullSink);
        let re = Regex::compile(pat, &mut machine).unwrap();
        let input = machine.str_alloc(text.as_bytes());
        re.search(&mut machine, input, 0).map(|r| (r.start, r.end))
    }

    #[test]
    fn nested_quantified_groups_relocate_correctly() {
        // These exercise the block-relocation paths in the compiler.
        assert_eq!(find("(ab?)+c", "aababc"), Some((0, 6)));
        assert_eq!(find("(a|b)*c", "babac"), Some((0, 5)));
        assert_eq!(find("(a|b)*c", "c"), Some((0, 1)));
        assert_eq!(find("x(y(z|w)+)?v", "xyzwzv"), Some((0, 6)));
        assert_eq!(find("x(y(z|w)+)?v", "xv"), Some((0, 2)));
        assert_eq!(find("(ab|cd)+", "zcdabcdz"), Some((1, 7)));
    }

    #[test]
    fn alternation_of_three_plus_branches() {
        assert_eq!(find("one|two|three|four", "say three!"), Some((4, 9)));
        assert_eq!(find("(x|y|z)+", "aazyxzb"), Some((2, 6)));
    }

    #[test]
    fn anchored_alternation() {
        assert_eq!(find("^(GET|HEAD) ", "GET /x"), Some((0, 4)));
        assert_eq!(find("^(GET|HEAD) ", "xGET /x"), None);
        assert_eq!(find("(gif|jpg)$", "logo.gif"), Some((5, 8)));
    }

    #[test]
    fn empty_alternative_branch() {
        // `(a|)` matches "a" or the empty string.
        assert_eq!(find("x(a|)y", "xay"), Some((0, 3)));
        assert_eq!(find("x(a|)y", "xy"), Some((0, 2)));
    }
}
