//! Chaos execution: run a whole plan under seeded fault injection aimed
//! at *both* layers — the interpreters (guest corruption through the
//! guarded runner) and the pool itself (worker stalls, artifact drops,
//! worker panics) — and prove the suite still completes with
//! deterministic degradation markers.
//!
//! Every injection decision is a pure function of `(seed, request,
//! attempt)`, never of the worker that picked the run up, so a chaos run
//! at `--jobs 1` and `--jobs 8` degrades the same slots with the same
//! markers. That property is what `repro chaos --seeds N` asserts.

use crate::journal::{
    self, JournalConfig, JournalDefectKind, JournalError, JournalErrorKind, ResumeReport,
    JOURNAL_FILE,
};
use crate::lock::{Claims, Sessions, LOCK_FILE};
use crate::plan::Plan;
use crate::pool::{self, supervise_with, ExecutedPlan};
use crate::supervise::{FailureKind, RunFailure, SuperviseConfig};
use interp_core::{
    DispatchFault, DispatchStrategy, Language, NullSink, RunArtifact, RunRequest, RunStats,
    Scale, WorkloadId, WorkloadKind,
};
use interp_guard::{FaultPlan, Limits, Rng64, RunOutcome};
use interp_workloads::{run_guarded, try_run_source_dispatch};
use std::collections::BTreeMap;
use std::path::Path;

/// Stream-splitting constant so chaos lane rolls are decorrelated from
/// the guest-corruption streams derived from the same seed.
const CHAOS_STREAM: u64 = 0xC4A0_5F00_1157_EED5;

/// Stream-splitting constant for journal-corruption rolls.
const JOURNAL_STREAM: u64 = 0x10AD_BEEF_0C0F_FEE5;

/// Fuel a stalled worker is allowed to burn: far below any real
/// workload's cost, so the stall deterministically trips the fuel
/// deadline instead of finishing.
const STALL_FUEL: u64 = 1_000;

/// Which injection a chaos run applies to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosLane {
    /// No injection — the run executes normally.
    Clean,
    /// Guest corruption on attempt 0 only; the retry runs clean and
    /// recovers. Exercises the transient-retry path end to end.
    FlakyGuestFault,
    /// Guest corruption on every attempt; retries burn out and the slot
    /// degrades to `DEGRADED(faulted)`.
    PersistentGuestFault,
    /// Attempt 0 runs under starvation fuel so the cooperative deadline
    /// trips mid-run (`DEGRADED(deadline)` if retries are exhausted,
    /// recovery otherwise).
    WorkerStall,
    /// Attempt 0 completes but its artifact is dropped before landing in
    /// the slot — a transient fault the retry clears.
    ArtifactDrop,
    /// The worker panics outright; the pool's `catch_unwind` quarantines
    /// the slot immediately (`DEGRADED(panicked)`, no retries).
    WorkerPanic,
}

/// The chaos lane for `request` under `seed` — a pure function of both.
/// Guest-corruption lanes require the guarded runner, which only accepts
/// macro workloads; micro requests roll those lanes onto pool-level
/// injections instead, so every request kind can degrade.
pub fn lane(seed: u64, request: &RunRequest) -> ChaosLane {
    let mut rng = Rng64::new(seed ^ CHAOS_STREAM ^ fnv1a(&request.to_string()));
    let micro = request.workload.kind == WorkloadKind::Micro;
    match rng.range(0, 16) {
        0 if micro => ChaosLane::WorkerStall,
        0 => ChaosLane::FlakyGuestFault,
        1 if micro => ChaosLane::ArtifactDrop,
        1 => ChaosLane::PersistentGuestFault,
        2 => ChaosLane::WorkerStall,
        3 => ChaosLane::ArtifactDrop,
        4 => ChaosLane::WorkerPanic,
        _ => ChaosLane::Clean,
    }
}

/// Execute `plan` under seed-`seed` chaos on `jobs` workers. The
/// supervisor's retry/deadline policy comes from `config`; injections
/// come from [`lane`].
pub fn chaos_execute(
    plan: &Plan,
    jobs: usize,
    seed: u64,
    config: &SuperviseConfig,
) -> ExecutedPlan {
    let config = *config;
    supervise_with(plan, jobs, &config, move |request, attempt| {
        run_chaotic(seed, request, attempt, &config)
    })
}

/// One chaotic attempt: apply the request's lane, or fall through to a
/// clean supervised run.
fn run_chaotic(
    seed: u64,
    request: &RunRequest,
    attempt: u32,
    config: &SuperviseConfig,
) -> Result<RunArtifact, RunFailure> {
    match lane(seed, request) {
        ChaosLane::WorkerPanic => inject_panic(seed, request),
        ChaosLane::WorkerStall if attempt == 0 => {
            // A wedged worker burns fuel without finishing; the
            // cooperative fuel deadline is what stops it.
            crate::exec::try_run_request(
                request,
                Limits::unlimited().with_max_host_steps(STALL_FUEL),
            )
            .map_err(|e| pool::classify_guard_failure(e, attempt, true))
        }
        ChaosLane::ArtifactDrop if attempt == 0 => Err(RunFailure::faulted(
            attempt,
            "injected artifact drop: result lost before landing in its slot",
        )),
        ChaosLane::FlakyGuestFault if attempt == 0 => {
            guest_fault(seed, request, attempt, config)
        }
        ChaosLane::PersistentGuestFault => guest_fault(seed, request, attempt, config),
        _ => clean_run(request, attempt, config),
    }
}

/// A clean supervised attempt under `config`'s fuel deadline.
fn clean_run(
    request: &RunRequest,
    attempt: u32,
    config: &SuperviseConfig,
) -> Result<RunArtifact, RunFailure> {
    crate::exec::try_run_request(request, pool::deadline_limits(config.timeout_fuel))
        .map_err(|e| pool::classify_guard_failure(e, attempt, config.timeout_fuel.is_some()))
}

/// Corrupt the request's guest with a seed-derived [`FaultPlan`] and run
/// it guarded. A corruption harmless enough to complete falls back to a
/// clean run (guarded runs count but do not time, and a degraded cell
/// needs a real failure behind it); anything else becomes a typed
/// failure for the supervisor to retry or quarantine.
fn guest_fault(
    seed: u64,
    request: &RunRequest,
    attempt: u32,
    config: &SuperviseConfig,
) -> Result<RunArtifact, RunFailure> {
    let plan = guest_plan(seed, request);
    let guarded = run_guarded(request.workload, Limits::guarded(), &plan);
    match guarded.outcome {
        RunOutcome::Completed { .. } => clean_run(request, attempt, config),
        RunOutcome::Panicked(msg) => Err(RunFailure::panicked(
            attempt,
            format!("injected guest fault escaped as a panic: {msg}"),
        )),
        ref outcome => Err(RunFailure::faulted(
            attempt,
            format!("injected guest fault: {outcome}"),
        )),
    }
}

/// The guest-corruption recipe for `request` under `seed`: bit-flip
/// lanes for binary guests, truncation/garbage lanes for textual ones,
/// decorrelated per request.
fn guest_plan(seed: u64, request: &RunRequest) -> FaultPlan {
    let derived = seed ^ fnv1a(&request.to_string());
    match request.workload.language {
        Language::C | Language::Mipsi | Language::Javelin => FaultPlan::image_sweep(derived),
        Language::Perlite | Language::Tclite => FaultPlan::source_sweep(derived),
    }
}

// The whole point of this lane is a real unwind through the pool's
// `catch_unwind` boundary — a typed error would test the wrong path.
#[allow(clippy::panic)]
fn inject_panic(seed: u64, request: &RunRequest) -> ! {
    panic!("chaos: injected worker panic (seed {seed}, {request})")
}

/// Run `f` with chaos-injected panic output suppressed: the pool catches
/// those panics by design, and the default hook's stderr spam would
/// drown the failure report. Panics whose message does not carry the
/// `chaos:` marker still print.
pub fn with_quiet_injected_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("chaos:") {
            eprintln!("{info}");
        }
    }));
    let result = f();
    drop(std::panic::take_hook());
    std::panic::set_hook(prev);
    result
}

/// One deterministic chaos summary: the seed, per-kind degradation
/// counts, and one `DEGRADED` marker line per degraded slot in store
/// order. Byte-identical across job counts — `repro chaos` compares
/// exactly this text.
pub fn render_chaos_summary(seed: u64, executed: &ExecutedPlan) -> String {
    use std::fmt::Write as _;
    let (mut panicked, mut deadline, mut faulted) = (0usize, 0usize, 0usize);
    for (_, failure) in executed.store.failures() {
        match failure.kind {
            FailureKind::Panicked => panicked += 1,
            FailureKind::DeadlineExceeded => deadline += 1,
            FailureKind::Faulted => faulted += 1,
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos seed {seed}: {} run(s), {} degraded ({panicked} panicked, {deadline} deadline, {faulted} faulted)",
        executed.store.len(),
        panicked + deadline + faulted,
    );
    for (request, failure) in executed.store.failures() {
        let _ = writeln!(out, "  {request}: {}", failure.cell());
    }
    out
}

/// Which corruption a journal-chaos round injects into a pristine
/// journal image before resuming from it. Each lane targets one entry of
/// the loader's defect taxonomy; `repro journal-chaos --seeds N` asserts
/// every lane is detected, classified, and healed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalChaosLane {
    /// Truncate the file inside the *final* record — the canonical
    /// crash-mid-write shape. Expect one `TornTail`, one requeue.
    TornFinalRecord,
    /// Flip one bit inside a record's artifact payload. Expect one
    /// `BadChecksum`, one requeue; neighbors untouched.
    PayloadBitFlip,
    /// Truncate the file inside an interior record. Expect one
    /// `TornTail`; the torn record and everything after it requeue.
    MidTruncation,
    /// Append a byte-identical copy of an existing record. Expect one
    /// `DuplicateKey` and zero requeues — the first record wins.
    DuplicateRecord,
    /// Rewrite one record's epoch field (resealing its checksum so the
    /// epoch is the only lie). Expect one `StaleEpoch`, one requeue.
    StaleEpoch,
    /// Rewrite one record's version field (resealed). Expect one
    /// `BadVersion`, one requeue.
    BadVersion,
    /// Multi-writer lane: seeded concurrent campaigns cooperatively fill
    /// one cold cache. Expect exactly-once execution across the writers
    /// and a complete, clean journal.
    InterleavedWriters,
    /// Multi-writer lane: a writer died holding the lock, its session
    /// registered and a claim on file. Expect the next campaign to take
    /// the lock over, sweep the stale state, and complete alone.
    StaleLockTakeover,
    /// Multi-writer lane: `compact` races a live appender. Expect no
    /// appended record to be lost and the final journal to be clean.
    CompactionRace,
    /// Serve lane: a client crashed mid-write, leaving a torn request
    /// file in the daemon's inbox. Expect a typed `torn` rejection
    /// response — never a daemon crash.
    TornServeRequest,
    /// Serve lane: a daemon died between claiming a request and
    /// committing its response (journal truncated to a prefix, dead pid
    /// lease, claimed request orphaned in `work/`). Expect the next
    /// daemon to steal the lease, recover the orphan, reuse the prefix,
    /// and respond byte-identically to a cold run.
    ServeCrashRecovery,
    /// Serve lane: N concurrent clients race one daemon while a batch
    /// campaign shares the cache. Expect every response ok and
    /// byte-identical, with exactly-once execution across the daemon
    /// and the batch writer combined.
    ServeClientRace,
    /// Tiered-execution lane: a seeded spurious guard trip fires inside
    /// a running Javelin trace. Expect the engine to abort the trace,
    /// blacklist its anchor (it is never re-recorded), fall back to the
    /// interpreter at the exact bytecode, and finish with console output
    /// and virtual-command counts byte-identical to a never-tiered run.
    TieredGuardTrip,
    /// Fleet lane: one of two daemons is killed mid-burst — a wedged
    /// member with a live pid, a prehistoric heartbeat, and a claimed
    /// request in its work dir. Expect the survivor to detect the death
    /// by heartbeat age, adopt the claim, and answer the whole burst
    /// byte-identically to a serial cold run.
    FleetMemberKill,
    /// Fleet lane: a dead member (corpse pid) left claimed work behind
    /// while two live daemons race a mixed-priority burst on the same
    /// cache. Expect the orphan re-adopted exactly-once between the
    /// racers, every response ok and byte-identical, and a clean
    /// stop-drain of both members.
    FleetOrphanAdoption,
    /// Fleet lane: a deadline storm — every submitted request's
    /// deadline is already past. Expect one typed `deadline-expired`
    /// rejection per request, zero executions, and no journal created.
    DeadlineStorm,
}

impl JournalChaosLane {
    /// Every lane, in rotation order. The original six corruption lanes
    /// keep their seed positions; multi-writer lanes extend the tail,
    /// serve lanes extend it again, the tiered guard-trip lane is the
    /// 13th, and the fleet lanes are 14–16 — historical seeds 0–12
    /// still map to the same lanes they always did.
    pub const ALL: [JournalChaosLane; 16] = [
        JournalChaosLane::TornFinalRecord,
        JournalChaosLane::PayloadBitFlip,
        JournalChaosLane::MidTruncation,
        JournalChaosLane::DuplicateRecord,
        JournalChaosLane::StaleEpoch,
        JournalChaosLane::BadVersion,
        JournalChaosLane::InterleavedWriters,
        JournalChaosLane::StaleLockTakeover,
        JournalChaosLane::CompactionRace,
        JournalChaosLane::TornServeRequest,
        JournalChaosLane::ServeCrashRecovery,
        JournalChaosLane::ServeClientRace,
        JournalChaosLane::TieredGuardTrip,
        JournalChaosLane::FleetMemberKill,
        JournalChaosLane::FleetOrphanAdoption,
        JournalChaosLane::DeadlineStorm,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            JournalChaosLane::TornFinalRecord => "torn-final-record",
            JournalChaosLane::PayloadBitFlip => "payload-bit-flip",
            JournalChaosLane::MidTruncation => "mid-truncation",
            JournalChaosLane::DuplicateRecord => "duplicate-record",
            JournalChaosLane::StaleEpoch => "stale-epoch",
            JournalChaosLane::BadVersion => "bad-version",
            JournalChaosLane::InterleavedWriters => "interleaved-writers",
            JournalChaosLane::StaleLockTakeover => "stale-lock-takeover",
            JournalChaosLane::CompactionRace => "compaction-race",
            JournalChaosLane::TornServeRequest => "torn-serve-request",
            JournalChaosLane::ServeCrashRecovery => "serve-crash-recovery",
            JournalChaosLane::ServeClientRace => "serve-client-race",
            JournalChaosLane::TieredGuardTrip => "tiered-guard-trip",
            JournalChaosLane::FleetMemberKill => "fleet-member-kill",
            JournalChaosLane::FleetOrphanAdoption => "fleet-orphan-adoption",
            JournalChaosLane::DeadlineStorm => "deadline-storm",
        }
    }

    /// True for lanes that exercise multi-process coordination instead
    /// of byte-level corruption.
    pub fn is_multi_writer(self) -> bool {
        matches!(
            self,
            JournalChaosLane::InterleavedWriters
                | JournalChaosLane::StaleLockTakeover
                | JournalChaosLane::CompactionRace
        )
    }

    /// True for lanes that exercise the serve daemon's robustness
    /// (torn clients, daemon crash recovery, client races, fleet
    /// failover, deadline storms).
    pub fn is_serve(self) -> bool {
        matches!(
            self,
            JournalChaosLane::TornServeRequest
                | JournalChaosLane::ServeCrashRecovery
                | JournalChaosLane::ServeClientRace
                | JournalChaosLane::FleetMemberKill
                | JournalChaosLane::FleetOrphanAdoption
                | JournalChaosLane::DeadlineStorm
        )
    }

    /// True for the lane that exercises the tiered engine's guard-trip
    /// fallback instead of the cache machinery.
    pub fn is_tiered(self) -> bool {
        self == JournalChaosLane::TieredGuardTrip
    }
}

/// The journal-corruption lane for `seed`: seeds rotate through
/// [`JournalChaosLane::ALL`], so any sixteen consecutive seeds cover
/// the whole lane taxonomy (where in the file the corruption lands is
/// still rolled from the seed).
pub fn journal_lane(seed: u64) -> JournalChaosLane {
    JournalChaosLane::ALL[(seed % JournalChaosLane::ALL.len() as u64) as usize]
}

/// What a [`corrupt_journal`] call did and what the loader must now
/// observe: the defect kind it must classify, and how many runs the
/// resumed execution must requeue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalCorruption {
    /// The lane that was applied.
    pub lane: JournalChaosLane,
    /// The defect kind the loader must report.
    pub expected_kind: JournalDefectKind,
    /// Runs the resumed execution must re-execute.
    pub expected_requeued: usize,
}

/// Apply `lane`'s corruption to a pristine journal image in place, with
/// the corruption site rolled from `seed`. Returns the oracle the
/// resumed run is checked against. The image must hold at least two
/// well-formed records (so interior-targeting lanes have a target).
pub fn corrupt_journal(
    bytes: &mut Vec<u8>,
    lane: JournalChaosLane,
    seed: u64,
) -> JournalCorruption {
    let spans = journal::record_spans(bytes);
    let n = spans.len();
    debug_assert!(n >= 2, "journal chaos needs at least two records");
    let mut rng = Rng64::new(seed ^ JOURNAL_STREAM);
    let (expected_kind, expected_requeued) = match lane {
        JournalChaosLane::TornFinalRecord => {
            let span = spans[n - 1];
            // Cut strictly inside the record: after its length prefix
            // begins, before its checksum ends.
            let cut = span.start + rng.index(1, span.end - span.start);
            bytes.truncate(cut);
            (JournalDefectKind::TornTail, 1)
        }
        JournalChaosLane::PayloadBitFlip => {
            let span = spans[rng.index(0, n)];
            let at = rng.index(span.payload_start, span.payload_end);
            bytes[at] ^= 1 << rng.index(0, 8);
            (JournalDefectKind::BadChecksum, 1)
        }
        JournalChaosLane::MidTruncation => {
            // Tear an interior record: it and every record after it are
            // lost.
            let victim = rng.index(0, n - 1);
            let span = spans[victim];
            let cut = span.start + rng.index(1, span.end - span.start);
            bytes.truncate(cut);
            (JournalDefectKind::TornTail, n - victim)
        }
        JournalChaosLane::DuplicateRecord => {
            let span = spans[rng.index(0, n)];
            let copy = bytes[span.start..span.end].to_vec();
            bytes.extend_from_slice(&copy);
            (JournalDefectKind::DuplicateKey, 0)
        }
        JournalChaosLane::StaleEpoch => {
            let span = spans[rng.index(0, n)];
            // Epoch sits after the 2-byte version field.
            let at = span.body_start + 2;
            let epoch = u64::from_le_bytes([
                bytes[at],
                bytes[at + 1],
                bytes[at + 2],
                bytes[at + 3],
                bytes[at + 4],
                bytes[at + 5],
                bytes[at + 6],
                bytes[at + 7],
            ]);
            bytes[at..at + 8].copy_from_slice(&epoch.wrapping_add(1).to_le_bytes());
            journal::reseal_record(bytes, &span);
            (JournalDefectKind::StaleEpoch, 1)
        }
        JournalChaosLane::BadVersion => {
            let span = spans[rng.index(0, n)];
            let at = span.body_start;
            let version = u16::from_le_bytes([bytes[at], bytes[at + 1]]);
            bytes[at..at + 2].copy_from_slice(&version.wrapping_add(1).to_le_bytes());
            journal::reseal_record(bytes, &span);
            (JournalDefectKind::BadVersion, 1)
        }
        JournalChaosLane::InterleavedWriters
        | JournalChaosLane::StaleLockTakeover
        | JournalChaosLane::CompactionRace
        | JournalChaosLane::TornServeRequest
        | JournalChaosLane::ServeCrashRecovery
        | JournalChaosLane::ServeClientRace
        | JournalChaosLane::TieredGuardTrip
        | JournalChaosLane::FleetMemberKill
        | JournalChaosLane::FleetOrphanAdoption
        | JournalChaosLane::DeadlineStorm => {
            // Multi-writer, serve, and tiered lanes inject no byte
            // corruption — they are dispatched to their own harnesses
            // before this function is reached. Reaching here is a
            // harness bug; the impossible requeue oracle makes the round
            // fail loudly instead of silently passing.
            (JournalDefectKind::TornTail, usize::MAX)
        }
    };
    JournalCorruption { lane, expected_kind, expected_requeued }
}

/// The fixed plan `repro journal-chaos` exercises: a handful of fast
/// test-scale runs whose artifacts cover every payload shape (counters
/// only, cycle summaries, a sweep grid) across binary and textual
/// interpreters.
pub fn journal_chaos_plan() -> Plan {
    Plan::build([
        RunRequest::pipeline(WorkloadId::macro_bench(Language::Mipsi, "des", Scale::Test)),
        RunRequest::counting(WorkloadId::macro_bench(Language::Tclite, "des", Scale::Test)),
        RunRequest::new(
            WorkloadId::macro_bench(Language::Javelin, "des", Scale::Test),
            interp_core::SinkKind::ICacheSweep,
        ),
        RunRequest::pipeline(WorkloadId::micro(Language::C, "a=b+c", Scale::Test)),
    ])
}

/// One journal-chaos verdict: what was injected, what the loader saw,
/// and whether recovery restored the exact cold-run results.
#[derive(Debug, Clone)]
pub struct JournalChaosOutcome {
    /// The chaos seed.
    pub seed: u64,
    /// What [`corrupt_journal`] injected and predicted.
    pub corruption: JournalCorruption,
    /// The loader reported at least one defect of the expected kind.
    pub detected: bool,
    /// No defect of any *other* kind was reported (classification, not
    /// just detection).
    pub classified: bool,
    /// Runs the resumed execution actually re-executed.
    pub requeued: usize,
    /// Every planned artifact in the resumed store is content-identical
    /// to the cold baseline.
    pub store_intact: bool,
    /// The post-resume journal file parses with zero defects and holds
    /// every planned record.
    pub journal_healed: bool,
}

impl JournalChaosOutcome {
    /// True iff the defect was detected, correctly classified, the
    /// requeue count matched the oracle, and both the store and the
    /// journal recovered fully.
    pub fn passed(&self) -> bool {
        self.detected
            && self.classified
            && self.requeued == self.corruption.expected_requeued
            && self.store_intact
            && self.journal_healed
    }
}

/// Run a cold journaled execution of `plan` into `dir` and return the
/// pristine journal image plus the baseline content hash of every
/// planned artifact — the oracle [`journal_chaos_seed`] checks against.
pub fn journal_chaos_baseline(
    plan: &Plan,
    jobs: usize,
    config: &SuperviseConfig,
    dir: &Path,
) -> Result<(Vec<u8>, BTreeMap<RunRequest, u64>), JournalError> {
    let jconfig = JournalConfig::new(dir);
    let (executed, _report) = journal::execute_journaled(plan, jobs, config, &jconfig)?;
    let baseline = content_hashes(plan, &executed);
    let path = dir.join(JOURNAL_FILE);
    let bytes = std::fs::read(&path).map_err(|e| JournalError {
        kind: JournalErrorKind::Io,
        path: path.clone(),
        op: "read",
        detail: e.to_string(),
    })?;
    Ok((bytes, baseline))
}

/// One multi-writer chaos verdict: what the coordination scenario was
/// asked to survive and what actually happened.
#[derive(Debug, Clone)]
pub struct MultiWriterOutcome {
    /// The chaos seed.
    pub seed: u64,
    /// Which multi-writer lane ran.
    pub lane: JournalChaosLane,
    /// Concurrent campaigns launched (1 for the takeover lane, where
    /// the "other writer" is a planted corpse).
    pub writers: usize,
    /// Requests in the plan — the exactly-once denominator.
    pub planned: usize,
    /// Executions summed across every campaign. Exactly-once means this
    /// equals `planned`: no request ran twice, none was skipped.
    pub executed_total: usize,
    /// Every campaign's store resolved every planned artifact to the
    /// cold-baseline content.
    pub store_intact: bool,
    /// The final journal holds a record for every planned request.
    pub journal_complete: bool,
    /// The final journal parses with zero defects.
    pub journal_clean: bool,
}

impl MultiWriterOutcome {
    /// True iff execution was exactly-once and nothing was lost or
    /// corrupted.
    pub fn passed(&self) -> bool {
        self.executed_total == self.planned
            && self.store_intact
            && self.journal_complete
            && self.journal_clean
    }
}

/// The verdict of one journal-chaos round — corruption lanes grade
/// detect/classify/heal, multi-writer lanes grade exactly-once
/// coordination, serve lanes grade daemon robustness, and the tiered
/// lane grades the trace engine's guard-trip fallback.
#[derive(Debug, Clone)]
pub enum JournalChaosVerdict {
    /// A byte-corruption lane's verdict.
    Corruption(JournalChaosOutcome),
    /// A multi-writer coordination lane's verdict.
    MultiWriter(MultiWriterOutcome),
    /// A serve-daemon robustness lane's verdict.
    Serve(ServeChaosOutcome),
    /// The tiered guard-trip lane's verdict.
    Tiered(TieredChaosOutcome),
}

impl JournalChaosVerdict {
    /// Whether the round met its lane's oracle.
    pub fn passed(&self) -> bool {
        match self {
            JournalChaosVerdict::Corruption(o) => o.passed(),
            JournalChaosVerdict::MultiWriter(o) => o.passed(),
            JournalChaosVerdict::Serve(o) => o.passed(),
            JournalChaosVerdict::Tiered(o) => o.passed(),
        }
    }

    /// The one-line report for this round.
    pub fn render(&self) -> String {
        match self {
            JournalChaosVerdict::Corruption(o) => render_journal_chaos(o),
            JournalChaosVerdict::MultiWriter(o) => render_multi_writer(o),
            JournalChaosVerdict::Serve(o) => render_serve_chaos(o),
            JournalChaosVerdict::Tiered(o) => render_tiered_chaos(o),
        }
    }
}

/// One journal-chaos round. Corruption lanes plant a `seed`-corrupted
/// copy of the pristine image in `dir`, resume the plan from it, and
/// grade detection, classification, requeue accounting, store fidelity,
/// and healing. Multi-writer lanes instead clear the cache and run a
/// coordination scenario — interleaved campaigns, stale-lock takeover,
/// or compaction racing an appender — grading exactly-once execution
/// and zero loss.
pub fn journal_chaos_seed(
    plan: &Plan,
    jobs: usize,
    seed: u64,
    config: &SuperviseConfig,
    dir: &Path,
    pristine: &[u8],
    baseline: &BTreeMap<RunRequest, u64>,
) -> Result<JournalChaosVerdict, JournalError> {
    let lane = journal_lane(seed);
    if lane.is_multi_writer() {
        return multi_writer_seed(plan, jobs, seed, lane, config, dir, baseline)
            .map(JournalChaosVerdict::MultiWriter);
    }
    if lane.is_serve() {
        return serve_chaos_seed(plan, jobs, seed, lane, config, dir, pristine, baseline)
            .map(JournalChaosVerdict::Serve);
    }
    if lane.is_tiered() {
        return Ok(JournalChaosVerdict::Tiered(tiered_chaos_seed(seed, lane)));
    }
    let mut corrupted = pristine.to_vec();
    let corruption = corrupt_journal(&mut corrupted, lane, seed);
    let path = dir.join(JOURNAL_FILE);
    std::fs::write(&path, &corrupted).map_err(|e| JournalError {
        kind: JournalErrorKind::Io,
        path: path.clone(),
        op: "write",
        detail: e.to_string(),
    })?;

    let jconfig = JournalConfig::new(dir).with_resume(true);
    let (executed, report) = journal::execute_journaled(plan, jobs, config, &jconfig)?;
    Ok(JournalChaosVerdict::Corruption(grade_outcome(
        plan, seed, corruption, &executed, &report, &path, baseline,
    )))
}

/// A PID no live process on a sane Linux can hold (`pid_max` caps far
/// below it) — the corpse identity multi-writer lanes plant.
const DEAD_PID: u32 = 4_000_000_000;

/// Run one multi-writer coordination scenario against a cold cache.
fn multi_writer_seed(
    plan: &Plan,
    jobs: usize,
    seed: u64,
    lane: JournalChaosLane,
    config: &SuperviseConfig,
    dir: &Path,
    baseline: &BTreeMap<RunRequest, u64>,
) -> Result<MultiWriterOutcome, JournalError> {
    // Start cold: drop the journal and any coordination state left by a
    // previous round (sessions from finished campaigns are deregistered,
    // but corruption rounds leave a journal behind).
    let _ = std::fs::remove_file(dir.join(JOURNAL_FILE));
    let _ = std::fs::remove_file(dir.join(LOCK_FILE));

    let campaign = |resume: bool| {
        let jconfig = JournalConfig::new(dir).with_resume(resume);
        journal::execute_journaled(plan, jobs, config, &jconfig)
    };

    let (writers, campaigns): (usize, Vec<(ExecutedPlan, ResumeReport)>) = match lane {
        JournalChaosLane::InterleavedWriters => {
            // Two seeded campaigns race a cold cache; claims partition
            // the plan between them. The seed staggers the second start
            // to vary interleavings. The second campaign opens with
            // `resume` so the round grades exactly-once arithmetic even
            // when the first campaign wins the race outright — the
            // truncate-vs-join decision itself is pinned by unit and
            // real-binary tests, not by this timing-dependent lane.
            let stagger = std::time::Duration::from_millis(seed % 7);
            let second = &campaign;
            let results = std::thread::scope(|scope| {
                let a = scope.spawn(|| campaign(false));
                let b = scope.spawn(move || {
                    std::thread::sleep(stagger);
                    second(true)
                });
                [a.join(), b.join()]
            });
            let mut campaigns = Vec::new();
            for joined in results {
                match joined {
                    Ok(result) => campaigns.push(result?),
                    Err(_) => {
                        return Ok(failed_multi_writer(seed, lane, 2, plan.len()));
                    }
                }
            }
            (2, campaigns)
        }
        JournalChaosLane::StaleLockTakeover => {
            // A writer died holding the lock: corpse lock file, corpse
            // session registration, corpse claim on one planned
            // fingerprint. The next campaign must take all of it over.
            std::fs::write(
                dir.join(LOCK_FILE),
                format!("pid {DEAD_PID}\ntoken corpse\nepoch 0\n"),
            )
            .map_err(|e| journal_io(dir, e))?;
            let sessions = Sessions::new(dir);
            sessions.register("corpse").map_err(|e| journal_io(dir, e))?;
            std::fs::write(
                dir.join(crate::lock::WRITERS_DIR).join("corpse"),
                format!("pid {DEAD_PID}\n"),
            )
            .map_err(|e| journal_io(dir, e))?;
            let victim = plan.requests()[(seed as usize) % plan.len()];
            let claims = Claims::new(dir);
            claims
                .claim(victim.fingerprint(), "corpse")
                .map_err(|e| journal_io(dir, e))?;
            std::fs::write(
                dir.join(crate::lock::CLAIMS_DIR)
                    .join(format!("{:016x}", victim.fingerprint())),
                format!("pid {DEAD_PID}\ntoken corpse\n"),
            )
            .map_err(|e| journal_io(dir, e))?;
            (1, vec![campaign(false)?])
        }
        JournalChaosLane::CompactionRace => {
            // Compaction hammers the lock while a live campaign appends;
            // neither side may lose a record.
            let epoch = crate::fingerprint::current_epoch();
            let result = std::thread::scope(|scope| {
                let appender = scope.spawn(|| campaign(false));
                let mut compactions = Ok(());
                for _ in 0..4 {
                    std::thread::sleep(std::time::Duration::from_millis(1 + seed % 5));
                    if let Err(e) =
                        crate::compact::compact(dir, epoch, std::time::Duration::from_secs(30))
                    {
                        compactions = Err(e);
                        break;
                    }
                }
                (appender.join(), compactions)
            });
            let (joined, compactions) = result;
            compactions?;
            match joined {
                Ok(result) => (1, vec![result?]),
                Err(_) => return Ok(failed_multi_writer(seed, lane, 1, plan.len())),
            }
        }
        _ => return Ok(failed_multi_writer(seed, lane, 0, plan.len())),
    };

    let executed_total = campaigns.iter().map(|(_, report)| report.executed).sum();
    let store_intact = campaigns
        .iter()
        .all(|(executed, _)| content_hashes(plan, executed) == *baseline);
    let (journal_complete, journal_clean) = match std::fs::read(dir.join(JOURNAL_FILE)) {
        Ok(bytes) => {
            let reloaded = journal::load_bytes(&bytes, crate::fingerprint::current_epoch());
            (
                plan.requests()
                    .iter()
                    .all(|r| reloaded.records.contains_key(&r.fingerprint())),
                reloaded.defects.is_empty(),
            )
        }
        Err(_) => (false, false),
    };
    Ok(MultiWriterOutcome {
        seed,
        lane,
        writers,
        planned: plan.len(),
        executed_total,
        store_intact,
        journal_complete,
        journal_clean,
    })
}

/// The all-false outcome for a scenario that could not even run (a
/// campaign thread panicked, or an impossible lane reached the
/// dispatcher) — it renders as FAIL rather than crashing the sweep.
fn failed_multi_writer(
    seed: u64,
    lane: JournalChaosLane,
    writers: usize,
    planned: usize,
) -> MultiWriterOutcome {
    MultiWriterOutcome {
        seed,
        lane,
        writers,
        planned,
        executed_total: 0,
        store_intact: false,
        journal_complete: false,
        journal_clean: false,
    }
}

fn journal_io(dir: &Path, e: std::io::Error) -> JournalError {
    JournalError {
        kind: JournalErrorKind::Io,
        path: dir.to_path_buf(),
        op: "write",
        detail: e.to_string(),
    }
}

/// One line per multi-writer round, shape-stable with the corruption
/// render: the seed, the lane, the oracle, and the verdict.
pub fn render_multi_writer(outcome: &MultiWriterOutcome) -> String {
    format!(
        "journal-chaos seed {}: lane {} -> {} writer(s) over {} run(s): executed={} store-intact={} complete={} clean={} [{}]",
        outcome.seed,
        outcome.lane.label(),
        outcome.writers,
        outcome.planned,
        outcome.executed_total,
        outcome.store_intact,
        outcome.journal_complete,
        outcome.journal_clean,
        if outcome.passed() { "ok" } else { "FAIL" },
    )
}

/// Stream-splitting constant for serve-lane rolls (torn-cut positions,
/// crash prefixes), decorrelated from the corruption streams.
const SERVE_STREAM: u64 = 0x5E27_E001_CAFE_D00D;

/// One serve-daemon chaos verdict: what the lane injected, what the
/// daemon answered, and whether execution stayed exactly-once with
/// responses byte-identical to the cold baseline.
#[derive(Debug, Clone)]
pub struct ServeChaosOutcome {
    /// The chaos seed.
    pub seed: u64,
    /// Which serve lane ran.
    pub lane: JournalChaosLane,
    /// Requests in the plan — the exactly-once denominator.
    pub planned: usize,
    /// Ok responses the oracle demands.
    pub expected_ok: usize,
    /// Typed rejections the oracle demands.
    pub expected_rejected: usize,
    /// Ok responses actually published.
    pub ok: usize,
    /// Typed rejections actually published (of the expected kind).
    pub rejected: usize,
    /// Executions summed across every campaign (daemon requests plus
    /// any racing batch writer).
    pub executed_total: usize,
    /// Every response's accounting satisfied
    /// `reused + executed + reused_live == planned`, and the combined
    /// execution count matched the lane's oracle.
    pub exactly_once: bool,
    /// Every ok response body was byte-identical to the cold baseline
    /// rendering.
    pub body_identical: bool,
    /// The daemon exited cleanly and released its pid lease.
    pub clean_exit: bool,
}

impl ServeChaosOutcome {
    /// True iff every oracle held.
    pub fn passed(&self) -> bool {
        self.ok == self.expected_ok
            && self.rejected == self.expected_rejected
            && self.exactly_once
            && self.body_identical
            && self.clean_exit
    }
}

/// One line per serve round, shape-stable with the other renders.
pub fn render_serve_chaos(outcome: &ServeChaosOutcome) -> String {
    format!(
        "journal-chaos seed {}: lane {} -> expect {} ok / {} rejected over {} run(s): ok={} rejected={} executed={} exactly-once={} body-identical={} clean-exit={} [{}]",
        outcome.seed,
        outcome.lane.label(),
        outcome.expected_ok,
        outcome.expected_rejected,
        outcome.planned,
        outcome.ok,
        outcome.rejected,
        outcome.executed_total,
        outcome.exactly_once,
        outcome.body_identical,
        outcome.clean_exit,
        if outcome.passed() { "ok" } else { "FAIL" },
    )
}

/// The tiny [`crate::serve::PlanService`] the serve lanes run: one known
/// target (`chaos-plan`) mapping to the fixed journal-chaos plan,
/// rendered as one `{request} {content_hash:016x}` line per planned run
/// — so the expected response body is a pure function of the cold
/// baseline hash map.
struct ChaosServeService {
    plan: Plan,
}

impl crate::serve::PlanService for ChaosServeService {
    fn plan(
        &self,
        request: &crate::serve::ServeRequest,
    ) -> Result<Plan, crate::serve::Reject> {
        if request.targets == ["chaos-plan"] {
            Ok(Plan::build(self.plan.requests().iter().copied()))
        } else {
            Err(crate::serve::Reject::new(
                crate::serve::RejectKind::UnknownTarget,
                format!("unknown target `{}`", request.targets.join(",")),
            ))
        }
    }

    fn render(
        &self,
        _request: &crate::serve::ServeRequest,
        executed: &ExecutedPlan,
    ) -> String {
        render_hash_body(&self.plan, &content_hashes(&self.plan, executed))
    }
}

/// The `{request} {hash:016x}` response body for `plan` under a hash
/// map (the serve lanes' baseline-comparable rendering).
fn render_hash_body(plan: &Plan, hashes: &BTreeMap<RunRequest, u64>) -> String {
    plan.requests()
        .iter()
        .map(|r| format!("{r} {:016x}\n", hashes.get(r).copied().unwrap_or(0)))
        .collect()
}

/// The all-false outcome for a serve scenario that could not even run.
fn failed_serve(seed: u64, lane: JournalChaosLane, planned: usize) -> ServeChaosOutcome {
    ServeChaosOutcome {
        seed,
        lane,
        planned,
        expected_ok: 0,
        expected_rejected: 0,
        ok: 0,
        rejected: 0,
        executed_total: 0,
        exactly_once: false,
        body_identical: false,
        clean_exit: false,
    }
}

/// Run one serve-daemon robustness scenario against a cold cache.
#[allow(clippy::too_many_arguments)]
fn serve_chaos_seed(
    plan: &Plan,
    jobs: usize,
    seed: u64,
    lane: JournalChaosLane,
    config: &SuperviseConfig,
    dir: &Path,
    pristine: &[u8],
    baseline: &BTreeMap<RunRequest, u64>,
) -> Result<ServeChaosOutcome, JournalError> {
    use crate::serve::{
        self, ServeConfig, ServeError, ServeOutcome, ServeRequest, WaitOutcome, INBOX_DIR,
        SERVE_DIR, WORK_DIR,
    };

    // Start cold: no journal, no lock, no serve state from prior rounds
    // (crash-recovery plants its own journal prefix below).
    let _ = std::fs::remove_file(dir.join(JOURNAL_FILE));
    let _ = std::fs::remove_file(dir.join(LOCK_FILE));
    let _ = std::fs::remove_dir_all(dir.join(SERVE_DIR));

    let planned = plan.len();
    let expected_body = render_hash_body(plan, baseline);
    let mut rng = Rng64::new(seed ^ SERVE_STREAM);
    let service = ChaosServeService {
        plan: Plan::build(plan.requests().iter().copied()),
    };
    let mut serve_config = ServeConfig::new(dir);
    serve_config.jobs = jobs;
    serve_config.supervise = *config;
    serve_config.poll = std::time::Duration::from_millis(1);
    let patience = std::time::Duration::from_secs(120);
    let poll = std::time::Duration::from_millis(2);
    let chaos_request =
        |id: &str| ServeRequest::new(id, &["chaos-plan"], interp_core::Scale::Test);

    match lane {
        JournalChaosLane::TornServeRequest => {
            // A client crashed mid-write: the request file has an intact
            // version line but is cut strictly before its `end` trailer,
            // so the daemon must classify it as torn — a typed response,
            // never a crash.
            let full = serve::encode_request(&chaos_request("torn"));
            let version_end = full.find('\n').map_or(0, |p| p + 1);
            let end_start = full.len() - "end\n".len();
            let cut = rng.index(version_end, end_start);
            let inbox = dir.join(INBOX_DIR);
            std::fs::create_dir_all(&inbox).map_err(|e| journal_io(dir, e))?;
            std::fs::write(inbox.join("torn.req"), &full.as_bytes()[..cut])
                .map_err(|e| journal_io(dir, e))?;
            serve_config.max_requests = Some(1);
            let report = match serve::serve(&serve_config, &service) {
                Ok(report) => report,
                Err(ServeError::AlreadyRunning { .. }) => {
                    return Ok(failed_serve(seed, lane, planned))
                }
                Err(ServeError::Journal(e)) => return Err(e),
            };
            let torn_rejected = matches!(
                serve::wait(dir, "torn", patience, poll)?,
                WaitOutcome::Response(serve::ServeResponse {
                    outcome: ServeOutcome::Rejected(ref reject),
                    ..
                }) if reject.kind == serve::RejectKind::Torn
            );
            Ok(ServeChaosOutcome {
                seed,
                lane,
                planned,
                expected_ok: 0,
                expected_rejected: 1,
                ok: report.served,
                rejected: usize::from(torn_rejected),
                executed_total: 0,
                exactly_once: true,
                body_identical: true,
                clean_exit: !dir.join(serve::DAEMON_FILE).exists(),
            })
        }
        JournalChaosLane::ServeCrashRecovery => {
            // A daemon died between claiming a request and committing its
            // response: the journal holds only a prefix of the plan, the
            // pid lease names a corpse, and the claimed request sits
            // orphaned in work/. The fresh daemon must steal the lease,
            // recover the orphan, reuse the prefix, execute the residue,
            // and answer byte-identically to a cold run.
            let spans = journal::record_spans(pristine);
            let n = spans.len();
            if n < 2 {
                return Ok(failed_serve(seed, lane, planned));
            }
            let prefix = 1 + rng.index(0, n - 1);
            std::fs::write(dir.join(JOURNAL_FILE), &pristine[..spans[prefix - 1].end])
                .map_err(|e| journal_io(dir, e))?;
            let work = dir.join(WORK_DIR);
            std::fs::create_dir_all(&work).map_err(|e| journal_io(dir, e))?;
            std::fs::write(
                work.join("crashed.req"),
                serve::encode_request(&chaos_request("crashed")),
            )
            .map_err(|e| journal_io(dir, e))?;
            std::fs::write(
                dir.join(serve::DAEMON_FILE),
                format!("pid {DEAD_PID}\ntoken corpse\n"),
            )
            .map_err(|e| journal_io(dir, e))?;
            std::fs::write(
                dir.join(serve::HEARTBEAT_FILE),
                format!("pid {DEAD_PID}\ntick 0\nunix_ms 0\n"),
            )
            .map_err(|e| journal_io(dir, e))?;
            serve_config.max_requests = Some(1);
            let report = match serve::serve(&serve_config, &service) {
                Ok(report) => report,
                Err(ServeError::AlreadyRunning { .. }) => {
                    return Ok(failed_serve(seed, lane, planned))
                }
                Err(ServeError::Journal(e)) => return Err(e),
            };
            let (ok, executed_total, exactly_once, body_identical) =
                match serve::wait(dir, "crashed", patience, poll)? {
                    WaitOutcome::Response(response) => match response.outcome {
                        ServeOutcome::Ok { accounting, body, .. } => (
                            1,
                            accounting.executed,
                            accounting.exactly_once()
                                && accounting.reused == prefix
                                && accounting.executed == planned - prefix,
                            body == expected_body.as_bytes(),
                        ),
                        ServeOutcome::Rejected(_) => (0, 0, false, false),
                    },
                    WaitOutcome::TimedOut => (0, 0, false, false),
                };
            Ok(ServeChaosOutcome {
                seed,
                lane,
                planned,
                expected_ok: 1,
                expected_rejected: 0,
                ok,
                rejected: report.rejected,
                executed_total,
                exactly_once,
                body_identical,
                clean_exit: !dir.join(serve::DAEMON_FILE).exists()
                    && !work.join("crashed.req").exists(),
            })
        }
        JournalChaosLane::ServeClientRace => {
            // N clients race one daemon while a batch campaign shares the
            // cache: every response must be ok and byte-identical to the
            // cold baseline, and the daemon plus the batch writer must
            // execute each planned run exactly once between them.
            let clients = 2 + (seed as usize % 2);
            serve_config.max_requests = Some(clients as u64);
            let stagger = std::time::Duration::from_millis(seed % 5);
            let (daemon_result, batch_result, responses) = std::thread::scope(|scope| {
                let daemon = {
                    let serve_config = serve_config.clone();
                    let service = &service;
                    scope.spawn(move || serve::serve(&serve_config, service))
                };
                let batch = scope.spawn(|| {
                    std::thread::sleep(stagger);
                    let jconfig = JournalConfig::new(dir).with_resume(true);
                    journal::execute_journaled(plan, jobs, config, &jconfig)
                });
                let client_handles: Vec<_> = (0..clients)
                    .map(|i| {
                        let request = chaos_request(&format!("race-{i}"));
                        scope.spawn(move || {
                            serve::submit(dir, &request)?;
                            serve::wait(dir, &request.id, patience, poll)
                        })
                    })
                    .collect();
                let responses: Vec<_> = client_handles
                    .into_iter()
                    .map(|h| h.join())
                    .collect();
                (daemon.join(), batch.join(), responses)
            });
            let Ok(daemon_result) = daemon_result else {
                return Ok(failed_serve(seed, lane, planned));
            };
            let report = match daemon_result {
                Ok(report) => report,
                Err(ServeError::AlreadyRunning { .. }) => {
                    return Ok(failed_serve(seed, lane, planned))
                }
                Err(ServeError::Journal(e)) => return Err(e),
            };
            let Ok(batch_result) = batch_result else {
                return Ok(failed_serve(seed, lane, planned));
            };
            let (batch_executed, batch_report) = batch_result?;
            let batch_intact = content_hashes(plan, &batch_executed) == *baseline;
            let mut ok = 0usize;
            let mut executed_total = batch_report.executed;
            let mut exactly_once = batch_report.planned == planned;
            let mut body_identical = batch_intact;
            for joined in responses {
                let Ok(waited) = joined else {
                    return Ok(failed_serve(seed, lane, planned));
                };
                match waited? {
                    WaitOutcome::Response(response) => match response.outcome {
                        ServeOutcome::Ok { accounting, body, .. } => {
                            ok += 1;
                            executed_total += accounting.executed;
                            exactly_once &= accounting.exactly_once()
                                && accounting.planned == planned;
                            body_identical &= body == expected_body.as_bytes();
                        }
                        ServeOutcome::Rejected(_) => {}
                    },
                    WaitOutcome::TimedOut => {}
                }
            }
            exactly_once &= executed_total == planned;
            Ok(ServeChaosOutcome {
                seed,
                lane,
                planned,
                expected_ok: clients,
                expected_rejected: 0,
                ok,
                rejected: report.rejected,
                executed_total,
                exactly_once,
                body_identical,
                clean_exit: report.served + report.rejected == clients
                    && !dir.join(serve::DAEMON_FILE).exists(),
            })
        }
        JournalChaosLane::FleetMemberKill => {
            // One of two daemons was killed mid-burst: a wedged member
            // with a *live* pid, a prehistoric heartbeat, and a claimed
            // request in its work dir — the heartbeat-age detection
            // path, the one `/proc` can't catch. The survivor must
            // sweep it, re-adopt the claim, and serve the whole
            // mixed-priority burst byte-identically to serial cold.
            let fleet_dir = dir.join(crate::fleet::FLEET_DIR);
            std::fs::create_dir_all(&fleet_dir).map_err(|e| journal_io(dir, e))?;
            std::fs::write(
                fleet_dir.join("wedged"),
                format!("pid {}\ntoken wedged\n", std::process::id()),
            )
            .map_err(|e| journal_io(dir, e))?;
            std::fs::write(
                fleet_dir.join("wedged.hb"),
                format!(
                    "pid {}\ntick 1\nunix_ms 1\nserved 0\nin-flight 1\n",
                    std::process::id()
                ),
            )
            .map_err(|e| journal_io(dir, e))?;
            let wedged_work = dir.join(WORK_DIR).join("wedged");
            std::fs::create_dir_all(&wedged_work).map_err(|e| journal_io(dir, e))?;
            let mut killed = chaos_request("killed");
            killed.priority = i64::from(rng.range(0, 4) as u32);
            std::fs::write(wedged_work.join("killed.req"), serve::encode_request(&killed))
                .map_err(|e| journal_io(dir, e))?;
            let mut urgent = chaos_request("urgent");
            urgent.priority = 7;
            serve::submit(dir, &urgent)?;
            serve_config.max_requests = Some(2);
            serve_config.serve_jobs = 2;
            let report = match serve::serve(&serve_config, &service) {
                Ok(report) => report,
                Err(ServeError::AlreadyRunning { .. }) => {
                    return Ok(failed_serve(seed, lane, planned))
                }
                Err(ServeError::Journal(e)) => return Err(e),
            };
            let mut ok = 0usize;
            let mut executed_total = 0usize;
            let mut exactly_once = report.adopted == 1;
            let mut body_identical = true;
            for id in ["killed", "urgent"] {
                match serve::wait(dir, id, patience, poll)? {
                    WaitOutcome::Response(response) => match response.outcome {
                        ServeOutcome::Ok { accounting, body, .. } => {
                            ok += 1;
                            executed_total += accounting.executed;
                            exactly_once &= accounting.exactly_once()
                                && accounting.planned == planned;
                            body_identical &= body == expected_body.as_bytes();
                        }
                        ServeOutcome::Rejected(_) => {}
                    },
                    WaitOutcome::TimedOut => {}
                }
            }
            exactly_once &= executed_total == planned;
            Ok(ServeChaosOutcome {
                seed,
                lane,
                planned,
                expected_ok: 2,
                expected_rejected: 0,
                ok,
                rejected: report.rejected,
                executed_total,
                exactly_once,
                body_identical,
                clean_exit: crate::fleet::fleet_members(dir).is_empty()
                    && !wedged_work.exists()
                    && !dir.join(serve::DAEMON_FILE).exists(),
            })
        }
        JournalChaosLane::FleetOrphanAdoption => {
            // A dead member (corpse pid) left a claimed request behind
            // while *two* live daemons race a mixed-priority burst on
            // the same cache. The orphan must be re-adopted exactly-once
            // between the racers, every response must be ok and
            // byte-identical, and a stop request must drain both
            // members cleanly, consuming the marker.
            let fleet_dir = dir.join(crate::fleet::FLEET_DIR);
            std::fs::create_dir_all(&fleet_dir).map_err(|e| journal_io(dir, e))?;
            std::fs::write(
                fleet_dir.join("corpse"),
                format!("pid {DEAD_PID}\ntoken corpse\n"),
            )
            .map_err(|e| journal_io(dir, e))?;
            let corpse_work = dir.join(WORK_DIR).join("corpse");
            std::fs::create_dir_all(&corpse_work).map_err(|e| journal_io(dir, e))?;
            std::fs::write(
                corpse_work.join("lost.req"),
                serve::encode_request(&chaos_request("lost")),
            )
            .map_err(|e| journal_io(dir, e))?;
            let burst = 2 + (seed as usize % 2);
            let mut ids = vec!["lost".to_string()];
            for i in 0..burst {
                let mut request = chaos_request(&format!("fleet-{i}"));
                request.priority = (i as i64 % 3) - 1;
                request.deadline_unix_ms =
                    Some(crate::fleet::unix_ms() as u64 + 600_000);
                serve::submit(dir, &request)?;
                ids.push(request.id);
            }
            let (first, second) = std::thread::scope(|scope| {
                let spawn_daemon = || {
                    let serve_config = serve_config.clone();
                    let service = &service;
                    scope.spawn(move || serve::serve(&serve_config, service))
                };
                let a = spawn_daemon();
                let b = spawn_daemon();
                // Every response must arrive while both daemons run;
                // only then drain the fleet.
                for id in &ids {
                    let _ = serve::wait(dir, id, patience, poll);
                }
                let _ = serve::request_stop(dir);
                (a.join(), b.join())
            });
            let (Ok(first), Ok(second)) = (first, second) else {
                return Ok(failed_serve(seed, lane, planned));
            };
            let reports = match (first, second) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(ServeError::Journal(e)), _) | (_, Err(ServeError::Journal(e))) => {
                    return Err(e)
                }
                _ => return Ok(failed_serve(seed, lane, planned)),
            };
            let mut ok = 0usize;
            let mut executed_total = 0usize;
            let mut exactly_once = reports.0.adopted + reports.1.adopted == 1;
            let mut body_identical = true;
            for id in &ids {
                match serve::wait(dir, id, patience, poll)? {
                    WaitOutcome::Response(response) => match response.outcome {
                        ServeOutcome::Ok { accounting, body, .. } => {
                            ok += 1;
                            executed_total += accounting.executed;
                            exactly_once &= accounting.exactly_once()
                                && accounting.planned == planned;
                            body_identical &= body == expected_body.as_bytes();
                        }
                        ServeOutcome::Rejected(_) => {}
                    },
                    WaitOutcome::TimedOut => {}
                }
            }
            exactly_once &= executed_total == planned;
            Ok(ServeChaosOutcome {
                seed,
                lane,
                planned,
                expected_ok: burst + 1,
                expected_rejected: 0,
                ok,
                rejected: reports.0.rejected + reports.1.rejected,
                executed_total,
                exactly_once,
                body_identical,
                clean_exit: reports.0.drained
                    && reports.1.drained
                    && crate::fleet::fleet_members(dir).is_empty()
                    && !dir.join(serve::STOP_FILE).exists()
                    && !corpse_work.exists(),
            })
        }
        JournalChaosLane::DeadlineStorm => {
            // Every request in the burst is already expired. Each must
            // be answered with a typed deadline-expired rejection —
            // zero executions, no journal ever created.
            let storm = 3 + (seed as usize % 3);
            for i in 0..storm {
                let mut request = chaos_request(&format!("storm-{i}"));
                request.deadline_unix_ms = Some(1 + rng.range(0, 1000));
                request.priority = (i as i64) - 1;
                serve::submit(dir, &request)?;
            }
            serve_config.max_requests = Some(storm as u64);
            let report = match serve::serve(&serve_config, &service) {
                Ok(report) => report,
                Err(ServeError::AlreadyRunning { .. }) => {
                    return Ok(failed_serve(seed, lane, planned))
                }
                Err(ServeError::Journal(e)) => return Err(e),
            };
            let mut rejected = 0usize;
            for i in 0..storm {
                let expired = matches!(
                    serve::wait(dir, &format!("storm-{i}"), patience, poll)?,
                    WaitOutcome::Response(serve::ServeResponse {
                        outcome: ServeOutcome::Rejected(ref reject),
                        ..
                    }) if reject.kind == serve::RejectKind::DeadlineExpired
                );
                rejected += usize::from(expired);
            }
            Ok(ServeChaosOutcome {
                seed,
                lane,
                planned,
                expected_ok: 0,
                expected_rejected: storm,
                ok: report.served,
                rejected,
                executed_total: 0,
                exactly_once: !dir.join(JOURNAL_FILE).exists(),
                body_identical: true,
                clean_exit: crate::fleet::fleet_members(dir).is_empty()
                    && !dir.join(serve::DAEMON_FILE).exists(),
            })
        }
        _ => Ok(failed_serve(seed, lane, planned)),
    }
}

/// Stream-splitting constant for tiered-lane rolls (guard-trip
/// ordinals), decorrelated from every other chaos stream.
const TIERED_STREAM: u64 = 0x71E2_ED00_6A2D_7219;

/// The hot-loop Javelin program the tiered lane drives: one loop head
/// that heats past the recording threshold within the first few
/// backedges and then runs a few hundred on-trace iterations — so a
/// guard-trip ordinal rolled in [1, 64] always lands mid-trace.
const TIERED_CHAOS_PROGRAM: &str =
    "void main() { int s = 0; for (int i = 0; i < 300; i++) { s += i; } Native.printInt(s); }";

/// One tiered guard-trip verdict: where the spurious trip fired and
/// whether the engine aborted, blacklisted, and fell back without any
/// observable change.
#[derive(Debug, Clone)]
pub struct TieredChaosOutcome {
    /// The chaos seed.
    pub seed: u64,
    /// The lane (always [`JournalChaosLane::TieredGuardTrip`]).
    pub lane: JournalChaosLane,
    /// The 1-based in-trace guard ordinal the trip fired at.
    pub guard_trip_after: u32,
    /// The faulted run recorded exactly one abort — the trip was taken.
    pub trace_aborted: bool,
    /// The aborted anchor stayed blacklisted: the trace was recorded
    /// once and never re-recorded after the abort.
    pub blacklisted: bool,
    /// Console output of the faulted tiered run is byte-identical to
    /// the never-tiered (naive) run.
    pub output_identical: bool,
    /// Virtual-command counts agree with the never-tiered run.
    pub commands_identical: bool,
}

impl TieredChaosOutcome {
    /// True iff the trip was taken, the anchor stayed dead, and nothing
    /// observable changed.
    pub fn passed(&self) -> bool {
        self.trace_aborted
            && self.blacklisted
            && self.output_identical
            && self.commands_identical
    }
}

/// One tiered run of the lane's fixed program; `None` if the engine
/// errored (which the oracle grades as failure).
fn tiered_probe(
    strategy: DispatchStrategy,
    fault: DispatchFault,
) -> Option<(String, RunStats)> {
    try_run_source_dispatch(
        Language::Javelin,
        TIERED_CHAOS_PROGRAM,
        Limits::guarded(),
        strategy,
        fault,
        NullSink,
    )
    .ok()
    .map(|r| (r.console, r.stats))
}

/// Run one tiered guard-trip round: a never-tiered baseline, then the
/// same program tiered with a seed-rolled spurious guard trip, graded
/// for abort + blacklist + byte-identical fallback.
fn tiered_chaos_seed(seed: u64, lane: JournalChaosLane) -> TieredChaosOutcome {
    let mut rng = Rng64::new(seed ^ TIERED_STREAM);
    let after = rng.range(1, 64) as u32;
    let failed = TieredChaosOutcome {
        seed,
        lane,
        guard_trip_after: after,
        trace_aborted: false,
        blacklisted: false,
        output_identical: false,
        commands_identical: false,
    };
    let Some((naive_out, naive_stats)) =
        tiered_probe(DispatchStrategy::Naive, DispatchFault::None)
    else {
        return failed;
    };
    let Some((tiered_out, tiered_stats)) = tiered_probe(
        DispatchStrategy::Tiered,
        DispatchFault::TraceGuardTrip { after },
    ) else {
        return failed;
    };
    TieredChaosOutcome {
        seed,
        lane,
        guard_trip_after: after,
        trace_aborted: tiered_stats.trace_aborts >= 1,
        blacklisted: tiered_stats.traces_recorded == 1,
        output_identical: tiered_out == naive_out,
        commands_identical: tiered_stats.commands == naive_stats.commands,
    }
}

/// One line per tiered round, shape-stable with the other renders.
pub fn render_tiered_chaos(outcome: &TieredChaosOutcome) -> String {
    format!(
        "journal-chaos seed {}: lane {} -> trip guard #{}: aborted={} blacklisted={} output-identical={} commands-identical={} [{}]",
        outcome.seed,
        outcome.lane.label(),
        outcome.guard_trip_after,
        outcome.trace_aborted,
        outcome.blacklisted,
        outcome.output_identical,
        outcome.commands_identical,
        if outcome.passed() { "ok" } else { "FAIL" },
    )
}

/// Grade one resumed run against the corruption oracle.
fn grade_outcome(
    plan: &Plan,
    seed: u64,
    corruption: JournalCorruption,
    executed: &ExecutedPlan,
    report: &ResumeReport,
    path: &Path,
    baseline: &BTreeMap<RunRequest, u64>,
) -> JournalChaosOutcome {
    let detected = report
        .defects
        .iter()
        .any(|d| d.kind == corruption.expected_kind);
    let classified = report
        .defects
        .iter()
        .all(|d| d.kind == corruption.expected_kind);
    let resumed = content_hashes(plan, executed);
    let store_intact = resumed == *baseline;
    let journal_healed = match std::fs::read(path) {
        Ok(bytes) => {
            let reloaded = journal::load_bytes(&bytes, crate::fingerprint::current_epoch());
            reloaded.defects.is_empty()
                && plan
                    .requests()
                    .iter()
                    .all(|r| reloaded.records.contains_key(&r.fingerprint()))
        }
        Err(_) => false,
    };
    JournalChaosOutcome {
        seed,
        corruption,
        detected,
        classified,
        requeued: report.executed,
        store_intact,
        journal_healed,
    }
}

/// Content hash of every planned artifact (0 marks a degraded slot, so
/// a degraded resume can never masquerade as a match).
fn content_hashes(plan: &Plan, executed: &ExecutedPlan) -> BTreeMap<RunRequest, u64> {
    plan.requests()
        .iter()
        .map(|request| {
            let hash = match executed.store.resolve(request) {
                Ok(artifact) => artifact.content_hash(),
                Err(_) => 0,
            };
            (*request, hash)
        })
        .collect()
}

/// One line per journal-chaos round, stable across job counts:
/// the seed, the lane, the oracle, and the verdict.
pub fn render_journal_chaos(outcome: &JournalChaosOutcome) -> String {
    format!(
        "journal-chaos seed {}: lane {} -> expect {} ({} requeued): detected={} classified={} requeued={} store-intact={} healed={} [{}]",
        outcome.seed,
        outcome.corruption.lane.label(),
        outcome.corruption.expected_kind.label(),
        outcome.corruption.expected_requeued,
        outcome.detected,
        outcome.classified,
        outcome.requeued,
        outcome.store_intact,
        outcome.journal_healed,
        if outcome.passed() { "ok" } else { "FAIL" },
    )
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{Scale, WorkloadId};

    fn small_plan() -> Plan {
        // Two fast macros plus two micros: covers guest-fault lanes
        // (macro-only) and the micro remapping, while staying quick.
        Plan::build([
            RunRequest::counting(WorkloadId::macro_bench(Language::Mipsi, "des", Scale::Test)),
            RunRequest::counting(WorkloadId::macro_bench(Language::Tclite, "des", Scale::Test)),
            RunRequest::counting(WorkloadId::micro(Language::C, "a=b+c", Scale::Test)),
            RunRequest::counting(WorkloadId::micro(Language::Perlite, "call", Scale::Test)),
        ])
    }

    #[test]
    fn lanes_are_deterministic_and_micros_never_guest_fault() {
        let plan = small_plan();
        for seed in 0..64 {
            for request in plan.requests() {
                let first = lane(seed, request);
                assert_eq!(first, lane(seed, request), "seed {seed} {request}");
                if request.workload.kind == WorkloadKind::Micro {
                    assert!(
                        !matches!(
                            first,
                            ChaosLane::FlakyGuestFault | ChaosLane::PersistentGuestFault
                        ),
                        "seed {seed} {request}: micro rolled a guest-fault lane"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_space_is_covered_across_seeds() {
        let plan = small_plan();
        let mut seen = Vec::new();
        for seed in 0..256 {
            for request in plan.requests() {
                let l = lane(seed, request);
                if !seen.contains(&l) {
                    seen.push(l);
                }
            }
        }
        for expected in [
            ChaosLane::Clean,
            ChaosLane::FlakyGuestFault,
            ChaosLane::PersistentGuestFault,
            ChaosLane::WorkerStall,
            ChaosLane::ArtifactDrop,
            ChaosLane::WorkerPanic,
        ] {
            assert!(seen.contains(&expected), "lane {expected:?} never rolled");
        }
    }

    #[test]
    fn tiered_guard_trip_lane_aborts_blacklists_and_stays_byte_identical() {
        // Several seeds → several trip ordinals; every round must take
        // the trip, hold the blacklist, and change nothing observable.
        // Rounds are pure functions of the seed, so the rendered line is
        // stable across invocations (and job counts, trivially: the lane
        // runs in-process).
        for seed in [12u64, 28, 44] {
            assert_eq!(journal_lane(seed), JournalChaosLane::TieredGuardTrip);
            let outcome = tiered_chaos_seed(seed, JournalChaosLane::TieredGuardTrip);
            assert!(
                outcome.passed(),
                "seed {seed}: {}",
                render_tiered_chaos(&outcome)
            );
            let again = tiered_chaos_seed(seed, JournalChaosLane::TieredGuardTrip);
            assert_eq!(
                render_tiered_chaos(&outcome),
                render_tiered_chaos(&again),
                "seed {seed}: tiered round not deterministic"
            );
        }
    }

    #[test]
    fn fleet_lanes_hold_their_oracles() {
        // Seeds 13–15 land on the three fleet lanes: member kill
        // (heartbeat-age failover), orphan adoption under two racing
        // daemons, and the deadline storm. Each must meet its oracle
        // end to end — failover with byte-identical responses,
        // exactly-once adoption, typed rejections with no journal.
        let plan = journal_chaos_plan();
        let config = SuperviseConfig::new();
        let dir = std::env::temp_dir().join(format!(
            "interp-fleet-chaos-{}-{}",
            std::process::id(),
            crate::lock::fresh_token()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let (pristine, baseline) =
            journal_chaos_baseline(&plan, 2, &config, &dir).expect("baseline");
        for seed in [13u64, 14, 15] {
            let lane = journal_lane(seed);
            assert!(lane.is_serve(), "seed {seed} must land on a fleet lane");
            let verdict =
                journal_chaos_seed(&plan, 2, seed, &config, &dir, &pristine, &baseline)
                    .expect("round");
            assert!(
                verdict.passed(),
                "seed {seed} ({}): {}",
                lane.label(),
                verdict.render()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_execution_is_complete_and_job_count_invariant() {
        let plan = small_plan();
        let config = SuperviseConfig::new().with_retries(1);
        // Seeds chosen to exercise several lanes; every planned request
        // must resolve (Ok or Degraded — never missing), and the summary
        // must be byte-identical across job counts.
        for seed in [0u64, 3, 7] {
            let serial = with_quiet_injected_panics(|| chaos_execute(&plan, 1, seed, &config));
            let parallel =
                with_quiet_injected_panics(|| chaos_execute(&plan, 4, seed, &config));
            for request in plan.requests() {
                assert!(
                    !matches!(
                        serial.store.resolve(request),
                        Err(crate::ResolveError::Unplanned(_))
                    ),
                    "seed {seed}: {request} went missing"
                );
            }
            assert_eq!(
                render_chaos_summary(seed, &serial),
                render_chaos_summary(seed, &parallel),
                "seed {seed}: chaos summary depends on job count"
            );
        }
    }
}
