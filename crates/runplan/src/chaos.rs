//! Chaos execution: run a whole plan under seeded fault injection aimed
//! at *both* layers — the interpreters (guest corruption through the
//! guarded runner) and the pool itself (worker stalls, artifact drops,
//! worker panics) — and prove the suite still completes with
//! deterministic degradation markers.
//!
//! Every injection decision is a pure function of `(seed, request,
//! attempt)`, never of the worker that picked the run up, so a chaos run
//! at `--jobs 1` and `--jobs 8` degrades the same slots with the same
//! markers. That property is what `repro chaos --seeds N` asserts.

use crate::plan::Plan;
use crate::pool::{self, supervise_with, ExecutedPlan};
use crate::supervise::{FailureKind, RunFailure, SuperviseConfig};
use interp_core::{Language, RunArtifact, RunRequest, WorkloadKind};
use interp_guard::{FaultPlan, Limits, Rng64, RunOutcome};
use interp_workloads::run_guarded;

/// Stream-splitting constant so chaos lane rolls are decorrelated from
/// the guest-corruption streams derived from the same seed.
const CHAOS_STREAM: u64 = 0xC4A0_5F00_1157_EED5;

/// Fuel a stalled worker is allowed to burn: far below any real
/// workload's cost, so the stall deterministically trips the fuel
/// deadline instead of finishing.
const STALL_FUEL: u64 = 1_000;

/// Which injection a chaos run applies to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosLane {
    /// No injection — the run executes normally.
    Clean,
    /// Guest corruption on attempt 0 only; the retry runs clean and
    /// recovers. Exercises the transient-retry path end to end.
    FlakyGuestFault,
    /// Guest corruption on every attempt; retries burn out and the slot
    /// degrades to `DEGRADED(faulted)`.
    PersistentGuestFault,
    /// Attempt 0 runs under starvation fuel so the cooperative deadline
    /// trips mid-run (`DEGRADED(deadline)` if retries are exhausted,
    /// recovery otherwise).
    WorkerStall,
    /// Attempt 0 completes but its artifact is dropped before landing in
    /// the slot — a transient fault the retry clears.
    ArtifactDrop,
    /// The worker panics outright; the pool's `catch_unwind` quarantines
    /// the slot immediately (`DEGRADED(panicked)`, no retries).
    WorkerPanic,
}

/// The chaos lane for `request` under `seed` — a pure function of both.
/// Guest-corruption lanes require the guarded runner, which only accepts
/// macro workloads; micro requests roll those lanes onto pool-level
/// injections instead, so every request kind can degrade.
pub fn lane(seed: u64, request: &RunRequest) -> ChaosLane {
    let mut rng = Rng64::new(seed ^ CHAOS_STREAM ^ fnv1a(&request.to_string()));
    let micro = request.workload.kind == WorkloadKind::Micro;
    match rng.range(0, 16) {
        0 if micro => ChaosLane::WorkerStall,
        0 => ChaosLane::FlakyGuestFault,
        1 if micro => ChaosLane::ArtifactDrop,
        1 => ChaosLane::PersistentGuestFault,
        2 => ChaosLane::WorkerStall,
        3 => ChaosLane::ArtifactDrop,
        4 => ChaosLane::WorkerPanic,
        _ => ChaosLane::Clean,
    }
}

/// Execute `plan` under seed-`seed` chaos on `jobs` workers. The
/// supervisor's retry/deadline policy comes from `config`; injections
/// come from [`lane`].
pub fn chaos_execute(
    plan: &Plan,
    jobs: usize,
    seed: u64,
    config: &SuperviseConfig,
) -> ExecutedPlan {
    let config = *config;
    supervise_with(plan, jobs, &config, move |request, attempt| {
        run_chaotic(seed, request, attempt, &config)
    })
}

/// One chaotic attempt: apply the request's lane, or fall through to a
/// clean supervised run.
fn run_chaotic(
    seed: u64,
    request: &RunRequest,
    attempt: u32,
    config: &SuperviseConfig,
) -> Result<RunArtifact, RunFailure> {
    match lane(seed, request) {
        ChaosLane::WorkerPanic => inject_panic(seed, request),
        ChaosLane::WorkerStall if attempt == 0 => {
            // A wedged worker burns fuel without finishing; the
            // cooperative fuel deadline is what stops it.
            crate::exec::try_run_request(
                request,
                Limits::unlimited().with_max_host_steps(STALL_FUEL),
            )
            .map_err(|e| pool::classify_guard_failure(e, attempt, true))
        }
        ChaosLane::ArtifactDrop if attempt == 0 => Err(RunFailure::faulted(
            attempt,
            "injected artifact drop: result lost before landing in its slot",
        )),
        ChaosLane::FlakyGuestFault if attempt == 0 => {
            guest_fault(seed, request, attempt, config)
        }
        ChaosLane::PersistentGuestFault => guest_fault(seed, request, attempt, config),
        _ => clean_run(request, attempt, config),
    }
}

/// A clean supervised attempt under `config`'s fuel deadline.
fn clean_run(
    request: &RunRequest,
    attempt: u32,
    config: &SuperviseConfig,
) -> Result<RunArtifact, RunFailure> {
    crate::exec::try_run_request(request, pool::deadline_limits(config.timeout_fuel))
        .map_err(|e| pool::classify_guard_failure(e, attempt, config.timeout_fuel.is_some()))
}

/// Corrupt the request's guest with a seed-derived [`FaultPlan`] and run
/// it guarded. A corruption harmless enough to complete falls back to a
/// clean run (guarded runs count but do not time, and a degraded cell
/// needs a real failure behind it); anything else becomes a typed
/// failure for the supervisor to retry or quarantine.
fn guest_fault(
    seed: u64,
    request: &RunRequest,
    attempt: u32,
    config: &SuperviseConfig,
) -> Result<RunArtifact, RunFailure> {
    let plan = guest_plan(seed, request);
    let guarded = run_guarded(request.workload, Limits::guarded(), &plan);
    match guarded.outcome {
        RunOutcome::Completed { .. } => clean_run(request, attempt, config),
        RunOutcome::Panicked(msg) => Err(RunFailure::panicked(
            attempt,
            format!("injected guest fault escaped as a panic: {msg}"),
        )),
        ref outcome => Err(RunFailure::faulted(
            attempt,
            format!("injected guest fault: {outcome}"),
        )),
    }
}

/// The guest-corruption recipe for `request` under `seed`: bit-flip
/// lanes for binary guests, truncation/garbage lanes for textual ones,
/// decorrelated per request.
fn guest_plan(seed: u64, request: &RunRequest) -> FaultPlan {
    let derived = seed ^ fnv1a(&request.to_string());
    match request.workload.language {
        Language::C | Language::Mipsi | Language::Javelin => FaultPlan::image_sweep(derived),
        Language::Perlite | Language::Tclite => FaultPlan::source_sweep(derived),
    }
}

// The whole point of this lane is a real unwind through the pool's
// `catch_unwind` boundary — a typed error would test the wrong path.
#[allow(clippy::panic)]
fn inject_panic(seed: u64, request: &RunRequest) -> ! {
    panic!("chaos: injected worker panic (seed {seed}, {request})")
}

/// Run `f` with chaos-injected panic output suppressed: the pool catches
/// those panics by design, and the default hook's stderr spam would
/// drown the failure report. Panics whose message does not carry the
/// `chaos:` marker still print.
pub fn with_quiet_injected_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("chaos:") {
            eprintln!("{info}");
        }
    }));
    let result = f();
    drop(std::panic::take_hook());
    std::panic::set_hook(prev);
    result
}

/// One deterministic chaos summary: the seed, per-kind degradation
/// counts, and one `DEGRADED` marker line per degraded slot in store
/// order. Byte-identical across job counts — `repro chaos` compares
/// exactly this text.
pub fn render_chaos_summary(seed: u64, executed: &ExecutedPlan) -> String {
    use std::fmt::Write as _;
    let (mut panicked, mut deadline, mut faulted) = (0usize, 0usize, 0usize);
    for (_, failure) in executed.store.failures() {
        match failure.kind {
            FailureKind::Panicked => panicked += 1,
            FailureKind::DeadlineExceeded => deadline += 1,
            FailureKind::Faulted => faulted += 1,
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos seed {seed}: {} run(s), {} degraded ({panicked} panicked, {deadline} deadline, {faulted} faulted)",
        executed.store.len(),
        panicked + deadline + faulted,
    );
    for (request, failure) in executed.store.failures() {
        let _ = writeln!(out, "  {request}: {}", failure.cell());
    }
    out
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{Scale, WorkloadId};

    fn small_plan() -> Plan {
        // Two fast macros plus two micros: covers guest-fault lanes
        // (macro-only) and the micro remapping, while staying quick.
        Plan::build([
            RunRequest::counting(WorkloadId::macro_bench(Language::Mipsi, "des", Scale::Test)),
            RunRequest::counting(WorkloadId::macro_bench(Language::Tclite, "des", Scale::Test)),
            RunRequest::counting(WorkloadId::micro(Language::C, "a=b+c", Scale::Test)),
            RunRequest::counting(WorkloadId::micro(Language::Perlite, "call", Scale::Test)),
        ])
    }

    #[test]
    fn lanes_are_deterministic_and_micros_never_guest_fault() {
        let plan = small_plan();
        for seed in 0..64 {
            for request in plan.requests() {
                let first = lane(seed, request);
                assert_eq!(first, lane(seed, request), "seed {seed} {request}");
                if request.workload.kind == WorkloadKind::Micro {
                    assert!(
                        !matches!(
                            first,
                            ChaosLane::FlakyGuestFault | ChaosLane::PersistentGuestFault
                        ),
                        "seed {seed} {request}: micro rolled a guest-fault lane"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_space_is_covered_across_seeds() {
        let plan = small_plan();
        let mut seen = Vec::new();
        for seed in 0..256 {
            for request in plan.requests() {
                let l = lane(seed, request);
                if !seen.contains(&l) {
                    seen.push(l);
                }
            }
        }
        for expected in [
            ChaosLane::Clean,
            ChaosLane::FlakyGuestFault,
            ChaosLane::PersistentGuestFault,
            ChaosLane::WorkerStall,
            ChaosLane::ArtifactDrop,
            ChaosLane::WorkerPanic,
        ] {
            assert!(seen.contains(&expected), "lane {expected:?} never rolled");
        }
    }

    #[test]
    fn chaos_execution_is_complete_and_job_count_invariant() {
        let plan = small_plan();
        let config = SuperviseConfig::new().with_retries(1);
        // Seeds chosen to exercise several lanes; every planned request
        // must resolve (Ok or Degraded — never missing), and the summary
        // must be byte-identical across job counts.
        for seed in [0u64, 3, 7] {
            let serial = with_quiet_injected_panics(|| chaos_execute(&plan, 1, seed, &config));
            let parallel =
                with_quiet_injected_panics(|| chaos_execute(&plan, 4, seed, &config));
            for request in plan.requests() {
                assert!(
                    !matches!(
                        serial.store.resolve(request),
                        Err(crate::ResolveError::Unplanned(_))
                    ),
                    "seed {seed}: {request} went missing"
                );
            }
            assert_eq!(
                render_chaos_summary(seed, &serial),
                render_chaos_summary(seed, &parallel),
                "seed {seed}: chaos summary depends on job count"
            );
        }
    }
}
