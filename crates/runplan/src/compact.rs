//! Journal compaction: rewrite the journal keeping only valid
//! current-epoch records (first record per fingerprint), dropping
//! duplicates, stale-epoch records, and torn or corrupt tails — via the
//! same write-temp + fsync + atomic-rename discipline every append
//! uses, under the same advisory lock, so compaction can race a live
//! appender without losing either side's records.
//!
//! Because every publish already emits the *canonical* image (records in
//! fingerprint order), a journal that is clean compacts in O(append
//! check): the canonical re-encoding is byte-compared against the file
//! and, when identical, nothing is rewritten.

use crate::journal::{
    encode_image, io_err, lock_err, publish_bytes, JournalDefect, JournalError,
    JOURNAL_FILE,
};
use crate::lock::{self, fresh_token, sweep_lock_debris, Claims, LockConfig, Sessions};
use std::path::Path;
use std::time::Duration;

/// What one compaction pass did.
#[derive(Debug, Clone)]
pub struct CompactReport {
    /// Valid records the compacted journal holds.
    pub records: usize,
    /// Defects (duplicates, stale epochs, tears, bad checksums) whose
    /// records were dropped by the rewrite.
    pub dropped: Vec<JournalDefect>,
    /// Journal size before compaction, in bytes.
    pub bytes_before: u64,
    /// Journal size after compaction, in bytes.
    pub bytes_after: u64,
    /// False when the journal was already canonical and the fast path
    /// left the file untouched.
    pub rewritten: bool,
    /// Consumed serve responses (`serve/outbox/*.resp`) older than the
    /// `--keep-responses` horizon that this pass deleted (0 when no
    /// horizon was given — the default keeps responses forever).
    pub responses_swept: usize,
}

impl CompactReport {
    /// One stderr summary line.
    pub fn render(&self, dir: &Path) -> String {
        format!(
            "compacted {}: {} record(s), {} dropped, {} -> {} bytes{}{}",
            dir.display(),
            self.records,
            self.dropped.len(),
            self.bytes_before,
            self.bytes_after,
            if self.rewritten { "" } else { " (already clean, not rewritten)" },
            if self.responses_swept > 0 {
                format!(", {} outbox response(s) swept", self.responses_swept)
            } else {
                String::new()
            },
        )
    }
}

/// Delete outbox responses (and their progress markers) whose mtime is
/// older than `keep` — abandoned `*.resp` files a waiter never
/// collected. Files the clock can't judge are kept; sweeping is
/// best-effort (a racing collector may have already removed one).
fn sweep_outbox(dir: &Path, keep: Duration) -> usize {
    let outbox = dir.join(crate::serve::OUTBOX_DIR);
    let Ok(entries) = std::fs::read_dir(&outbox) else {
        return 0;
    };
    let now = std::time::SystemTime::now();
    let mut swept = 0;
    for entry in entries.flatten() {
        let Some(name) = entry.file_name().to_str().map(str::to_string) else {
            continue;
        };
        if !name.ends_with(".resp") && !name.ends_with(".progress") {
            continue;
        }
        let old_enough = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| now.duration_since(mtime).ok())
            .is_some_and(|age| age > keep);
        if old_enough && std::fs::remove_file(entry.path()).is_ok() && name.ends_with(".resp") {
            swept += 1;
        }
    }
    swept
}

/// Compact the journal in `dir` under `epoch`: take the advisory lock,
/// parse the file (classifying every defect), and republish the
/// canonical image of the surviving records — or touch nothing if the
/// file is already byte-identical to that image. A missing journal
/// compacts to an empty report without creating one.
pub fn compact(
    dir: &Path,
    epoch: u64,
    lock_timeout: Duration,
) -> Result<CompactReport, JournalError> {
    compact_with(dir, epoch, lock_timeout, None)
}

/// [`compact`] plus an optional serve-outbox sweep: with
/// `keep_responses = Some(horizon)`, consumed/abandoned
/// `serve/outbox/*.resp` files older than the horizon are deleted and
/// counted in [`CompactReport::responses_swept`]. `None` (the default)
/// keeps responses forever.
pub fn compact_with(
    dir: &Path,
    epoch: u64,
    lock_timeout: Duration,
    keep_responses: Option<Duration>,
) -> Result<CompactReport, JournalError> {
    let path = dir.join(JOURNAL_FILE);
    let responses_swept = keep_responses.map_or(0, |keep| sweep_outbox(dir, keep));
    sweep_lock_debris(dir);
    let lock_config =
        LockConfig::for_dir(dir, &fresh_token(), epoch).with_timeout(lock_timeout);
    let _guard = lock::acquire(&lock_config).map_err(lock_err)?;
    // Housekeeping that normally rides on open: drop dead writers'
    // registry entries and claims while we hold the lock anyway.
    let sessions = Sessions::new(dir);
    sessions.sweep_stale();
    Claims::new(dir).sweep_stale(&sessions);

    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(CompactReport {
                records: 0,
                dropped: Vec::new(),
                bytes_before: 0,
                bytes_after: 0,
                rewritten: false,
                responses_swept,
            });
        }
        Err(e) => return Err(io_err(&path, "read", e)),
    };
    let loaded = crate::journal::load_bytes(&bytes, epoch);
    let image = encode_image(&loaded.records, epoch);
    let rewritten = image != bytes;
    if rewritten {
        publish_bytes(&path, &image)?;
    }
    Ok(CompactReport {
        records: loaded.records.len(),
        dropped: loaded.defects,
        bytes_before: bytes.len() as u64,
        bytes_after: image.len() as u64,
        rewritten,
        responses_swept,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{
        encode_record, record_spans, JournalDefectKind, JournalWriter, MAGIC,
    };
    use interp_core::{ConsoleDigest, Language, RunArtifact, RunRequest, Scale, WorkloadId};
    use std::path::PathBuf;

    const EPOCH: u64 = 7;
    const TIMEOUT: Duration = Duration::from_secs(5);

    fn artifact(tag: u64) -> RunArtifact {
        let mut art = RunArtifact::empty();
        art.program_bytes = tag as usize;
        art.console = ConsoleDigest::of(&format!("OK {tag}\n"));
        art
    }

    fn request(i: usize) -> RunRequest {
        let names = ["des", "compress", "eqntott"];
        RunRequest::pipeline(WorkloadId::macro_bench(
            Language::Mipsi,
            names[i % names.len()],
            Scale::Test,
        ))
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "interp-compact-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    /// Seed a *canonical* journal: records in fingerprint order, the
    /// same image every locked publish emits.
    fn seed_journal(dir: &Path, n: usize) -> Vec<u8> {
        let mut reqs: Vec<_> = (0..n).map(|i| (request(i), i as u64 + 1)).collect();
        reqs.sort_by_key(|(req, _)| req.fingerprint());
        let mut bytes = MAGIC.to_vec();
        for (req, tag) in reqs {
            bytes.extend_from_slice(&encode_record(
                EPOCH,
                req.fingerprint(),
                &req.label(),
                &artifact(tag),
            ));
        }
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).expect("seed");
        bytes
    }

    #[test]
    fn clean_journal_takes_the_fast_path() {
        let dir = fresh_dir("clean");
        let bytes = seed_journal(&dir, 3);
        let report = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert!(!report.rewritten, "clean journal must not be rewritten");
        assert_eq!(report.records, 3);
        assert!(report.dropped.is_empty());
        assert_eq!(report.bytes_before, report.bytes_after);
        assert_eq!(std::fs::read(dir.join(JOURNAL_FILE)).expect("read"), bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicates_and_tears_are_dropped() {
        let dir = fresh_dir("dirty");
        let mut bytes = seed_journal(&dir, 3);
        let spans = record_spans(&bytes);
        // Duplicate record 0, then tear the file mid-way through the
        // duplicate's copy of record 1 appended after it.
        let dup = bytes[spans[0].start..spans[0].end].to_vec();
        bytes.extend_from_slice(&dup);
        let torn = bytes[spans[1].start..spans[1].start + 12].to_vec();
        bytes.extend_from_slice(&torn);
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).expect("corrupt");

        let report = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert!(report.rewritten);
        assert_eq!(report.records, 3);
        assert_eq!(report.dropped.len(), 2, "{:?}", report.dropped);
        assert!(report
            .dropped
            .iter()
            .any(|d| d.kind == JournalDefectKind::DuplicateKey));
        assert!(report
            .dropped
            .iter()
            .any(|d| d.kind == JournalDefectKind::TornTail));
        assert!(report.bytes_after < report.bytes_before);
        // The compacted journal round-trips clean.
        let reread = std::fs::read(dir.join(JOURNAL_FILE)).expect("read");
        let reloaded = crate::journal::load_bytes(&reread, EPOCH);
        assert!(reloaded.defects.is_empty(), "{:?}", reloaded.defects);
        assert_eq!(reloaded.records.len(), 3);
        // Idempotence: a second compaction is the fast path.
        let again = compact(&dir, EPOCH, TIMEOUT).expect("recompact");
        assert!(!again.rewritten);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_epoch_records_are_purged() {
        let dir = fresh_dir("stale");
        let mut bytes = MAGIC.to_vec();
        let req = request(0);
        bytes.extend_from_slice(&encode_record(
            EPOCH + 1, // a different epoch: stale under EPOCH
            req.fingerprint(),
            &req.label(),
            &artifact(1),
        ));
        let keep = request(1);
        bytes.extend_from_slice(&encode_record(
            EPOCH,
            keep.fingerprint(),
            &keep.label(),
            &artifact(2),
        ));
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).expect("seed");

        let report = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert!(report.rewritten);
        assert_eq!(report.records, 1);
        assert_eq!(report.dropped.len(), 1);
        assert_eq!(report.dropped[0].kind, JournalDefectKind::StaleEpoch);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_compacts_to_nothing() {
        let dir = fresh_dir("missing");
        let report = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert_eq!(report.records, 0);
        assert!(!report.rewritten);
        assert!(
            !dir.join(JOURNAL_FILE).exists(),
            "compaction must not create a journal"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_does_not_lose_a_racing_append() {
        let dir = fresh_dir("race");
        seed_journal(&dir, 2);
        // An appender lands record 2 through the locked writer...
        let (mut writer, _) = JournalWriter::open(&dir, EPOCH, true).expect("open");
        let req = request(2);
        assert!(writer
            .append(req.fingerprint(), &req.label(), &artifact(3))
            .expect("append"));
        // ...and a compaction right after must keep all three records.
        let report = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert_eq!(report.records, 3);
        assert!(!report.rewritten, "locked appends already publish canonically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_renders_both_paths() {
        let clean = CompactReport {
            records: 4,
            dropped: Vec::new(),
            bytes_before: 100,
            bytes_after: 100,
            rewritten: false,
            responses_swept: 0,
        };
        let text = clean.render(Path::new("/tmp/c"));
        assert!(text.contains("already clean"), "{text}");
        assert!(!text.contains("outbox"), "{text}");
        let dirty =
            CompactReport { rewritten: true, bytes_after: 80, responses_swept: 2, ..clean };
        let text = dirty.render(Path::new("/tmp/c"));
        assert!(text.contains("100 -> 80 bytes"), "{text}");
        assert!(text.contains("2 outbox response(s) swept"), "{text}");
        assert!(!text.contains("already clean"), "{text}");
    }

    #[test]
    fn keep_responses_sweeps_only_old_outbox_files() {
        let dir = fresh_dir("outbox");
        let outbox = dir.join(crate::serve::OUTBOX_DIR);
        std::fs::create_dir_all(&outbox).expect("mkdir");
        std::fs::write(outbox.join("old.resp"), b"stale\n").expect("plant");
        std::fs::write(outbox.join("old.progress"), b"state done\n").expect("plant");
        std::fs::write(outbox.join("fresh.resp"), b"new\n").expect("plant");
        std::fs::write(outbox.join("keep.txt"), b"not ours\n").expect("plant");
        // Age `old.*` past the horizon by backdating their mtimes via
        // filetime-free trickery: a zero horizon treats everything with
        // any age as old, so give `fresh.resp` a future-proof pass by
        // sweeping with a horizon only the planted files exceed after a
        // short sleep... simpler: sweep with a generous horizon first
        // (nothing old enough), then a zero horizon (everything goes).
        let none = compact_with(&dir, EPOCH, TIMEOUT, Some(Duration::from_secs(3600)))
            .expect("compact");
        assert_eq!(none.responses_swept, 0);
        assert!(outbox.join("old.resp").exists());
        std::thread::sleep(Duration::from_millis(20));
        let all = compact_with(&dir, EPOCH, TIMEOUT, Some(Duration::ZERO)).expect("compact");
        assert_eq!(all.responses_swept, 2, "both .resp files are past a zero horizon");
        assert!(!outbox.join("old.resp").exists());
        assert!(!outbox.join("old.progress").exists(), "progress markers ride along");
        assert!(!outbox.join("fresh.resp").exists());
        assert!(outbox.join("keep.txt").exists(), "non-serve files are untouchable");
        // Default path: no horizon, nothing swept.
        std::fs::write(outbox.join("late.resp"), b"x\n").expect("plant");
        let default = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert_eq!(default.responses_swept, 0);
        assert!(outbox.join("late.resp").exists(), "default keeps responses");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
