//! Journal compaction: rewrite the journal keeping only valid
//! current-epoch records (first record per fingerprint), dropping
//! duplicates, stale-epoch records, and torn or corrupt tails — via the
//! same write-temp + fsync + atomic-rename discipline every append
//! uses, under the same advisory lock, so compaction can race a live
//! appender without losing either side's records.
//!
//! Because every publish already emits the *canonical* image (records in
//! fingerprint order), a journal that is clean compacts in O(append
//! check): the canonical re-encoding is byte-compared against the file
//! and, when identical, nothing is rewritten.

use crate::journal::{
    encode_image, io_err, lock_err, publish_bytes, JournalDefect, JournalError,
    JOURNAL_FILE,
};
use crate::lock::{self, fresh_token, sweep_lock_debris, Claims, LockConfig, Sessions};
use std::path::Path;
use std::time::Duration;

/// What one compaction pass did.
#[derive(Debug, Clone)]
pub struct CompactReport {
    /// Valid records the compacted journal holds.
    pub records: usize,
    /// Defects (duplicates, stale epochs, tears, bad checksums) whose
    /// records were dropped by the rewrite.
    pub dropped: Vec<JournalDefect>,
    /// Journal size before compaction, in bytes.
    pub bytes_before: u64,
    /// Journal size after compaction, in bytes.
    pub bytes_after: u64,
    /// False when the journal was already canonical and the fast path
    /// left the file untouched.
    pub rewritten: bool,
}

impl CompactReport {
    /// One stderr summary line.
    pub fn render(&self, dir: &Path) -> String {
        format!(
            "compacted {}: {} record(s), {} dropped, {} -> {} bytes{}",
            dir.display(),
            self.records,
            self.dropped.len(),
            self.bytes_before,
            self.bytes_after,
            if self.rewritten { "" } else { " (already clean, not rewritten)" },
        )
    }
}

/// Compact the journal in `dir` under `epoch`: take the advisory lock,
/// parse the file (classifying every defect), and republish the
/// canonical image of the surviving records — or touch nothing if the
/// file is already byte-identical to that image. A missing journal
/// compacts to an empty report without creating one.
pub fn compact(
    dir: &Path,
    epoch: u64,
    lock_timeout: Duration,
) -> Result<CompactReport, JournalError> {
    let path = dir.join(JOURNAL_FILE);
    sweep_lock_debris(dir);
    let lock_config =
        LockConfig::for_dir(dir, &fresh_token(), epoch).with_timeout(lock_timeout);
    let _guard = lock::acquire(&lock_config).map_err(lock_err)?;
    // Housekeeping that normally rides on open: drop dead writers'
    // registry entries and claims while we hold the lock anyway.
    let sessions = Sessions::new(dir);
    sessions.sweep_stale();
    Claims::new(dir).sweep_stale(&sessions);

    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(CompactReport {
                records: 0,
                dropped: Vec::new(),
                bytes_before: 0,
                bytes_after: 0,
                rewritten: false,
            });
        }
        Err(e) => return Err(io_err(&path, "read", e)),
    };
    let loaded = crate::journal::load_bytes(&bytes, epoch);
    let image = encode_image(&loaded.records, epoch);
    let rewritten = image != bytes;
    if rewritten {
        publish_bytes(&path, &image)?;
    }
    Ok(CompactReport {
        records: loaded.records.len(),
        dropped: loaded.defects,
        bytes_before: bytes.len() as u64,
        bytes_after: image.len() as u64,
        rewritten,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{
        encode_record, record_spans, JournalDefectKind, JournalWriter, MAGIC,
    };
    use interp_core::{ConsoleDigest, Language, RunArtifact, RunRequest, Scale, WorkloadId};
    use std::path::PathBuf;

    const EPOCH: u64 = 7;
    const TIMEOUT: Duration = Duration::from_secs(5);

    fn artifact(tag: u64) -> RunArtifact {
        let mut art = RunArtifact::empty();
        art.program_bytes = tag as usize;
        art.console = ConsoleDigest::of(&format!("OK {tag}\n"));
        art
    }

    fn request(i: usize) -> RunRequest {
        let names = ["des", "compress", "eqntott"];
        RunRequest::pipeline(WorkloadId::macro_bench(
            Language::Mipsi,
            names[i % names.len()],
            Scale::Test,
        ))
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "interp-compact-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    /// Seed a *canonical* journal: records in fingerprint order, the
    /// same image every locked publish emits.
    fn seed_journal(dir: &Path, n: usize) -> Vec<u8> {
        let mut reqs: Vec<_> = (0..n).map(|i| (request(i), i as u64 + 1)).collect();
        reqs.sort_by_key(|(req, _)| req.fingerprint());
        let mut bytes = MAGIC.to_vec();
        for (req, tag) in reqs {
            bytes.extend_from_slice(&encode_record(
                EPOCH,
                req.fingerprint(),
                &req.label(),
                &artifact(tag),
            ));
        }
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).expect("seed");
        bytes
    }

    #[test]
    fn clean_journal_takes_the_fast_path() {
        let dir = fresh_dir("clean");
        let bytes = seed_journal(&dir, 3);
        let report = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert!(!report.rewritten, "clean journal must not be rewritten");
        assert_eq!(report.records, 3);
        assert!(report.dropped.is_empty());
        assert_eq!(report.bytes_before, report.bytes_after);
        assert_eq!(std::fs::read(dir.join(JOURNAL_FILE)).expect("read"), bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicates_and_tears_are_dropped() {
        let dir = fresh_dir("dirty");
        let mut bytes = seed_journal(&dir, 3);
        let spans = record_spans(&bytes);
        // Duplicate record 0, then tear the file mid-way through the
        // duplicate's copy of record 1 appended after it.
        let dup = bytes[spans[0].start..spans[0].end].to_vec();
        bytes.extend_from_slice(&dup);
        let torn = bytes[spans[1].start..spans[1].start + 12].to_vec();
        bytes.extend_from_slice(&torn);
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).expect("corrupt");

        let report = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert!(report.rewritten);
        assert_eq!(report.records, 3);
        assert_eq!(report.dropped.len(), 2, "{:?}", report.dropped);
        assert!(report
            .dropped
            .iter()
            .any(|d| d.kind == JournalDefectKind::DuplicateKey));
        assert!(report
            .dropped
            .iter()
            .any(|d| d.kind == JournalDefectKind::TornTail));
        assert!(report.bytes_after < report.bytes_before);
        // The compacted journal round-trips clean.
        let reread = std::fs::read(dir.join(JOURNAL_FILE)).expect("read");
        let reloaded = crate::journal::load_bytes(&reread, EPOCH);
        assert!(reloaded.defects.is_empty(), "{:?}", reloaded.defects);
        assert_eq!(reloaded.records.len(), 3);
        // Idempotence: a second compaction is the fast path.
        let again = compact(&dir, EPOCH, TIMEOUT).expect("recompact");
        assert!(!again.rewritten);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_epoch_records_are_purged() {
        let dir = fresh_dir("stale");
        let mut bytes = MAGIC.to_vec();
        let req = request(0);
        bytes.extend_from_slice(&encode_record(
            EPOCH + 1, // a different epoch: stale under EPOCH
            req.fingerprint(),
            &req.label(),
            &artifact(1),
        ));
        let keep = request(1);
        bytes.extend_from_slice(&encode_record(
            EPOCH,
            keep.fingerprint(),
            &keep.label(),
            &artifact(2),
        ));
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).expect("seed");

        let report = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert!(report.rewritten);
        assert_eq!(report.records, 1);
        assert_eq!(report.dropped.len(), 1);
        assert_eq!(report.dropped[0].kind, JournalDefectKind::StaleEpoch);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_compacts_to_nothing() {
        let dir = fresh_dir("missing");
        let report = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert_eq!(report.records, 0);
        assert!(!report.rewritten);
        assert!(
            !dir.join(JOURNAL_FILE).exists(),
            "compaction must not create a journal"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_does_not_lose_a_racing_append() {
        let dir = fresh_dir("race");
        seed_journal(&dir, 2);
        // An appender lands record 2 through the locked writer...
        let (mut writer, _) = JournalWriter::open(&dir, EPOCH, true).expect("open");
        let req = request(2);
        assert!(writer
            .append(req.fingerprint(), &req.label(), &artifact(3))
            .expect("append"));
        // ...and a compaction right after must keep all three records.
        let report = compact(&dir, EPOCH, TIMEOUT).expect("compact");
        assert_eq!(report.records, 3);
        assert!(!report.rewritten, "locked appends already publish canonically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_renders_both_paths() {
        let clean = CompactReport {
            records: 4,
            dropped: Vec::new(),
            bytes_before: 100,
            bytes_after: 100,
            rewritten: false,
        };
        let text = clean.render(Path::new("/tmp/c"));
        assert!(text.contains("already clean"), "{text}");
        let dirty = CompactReport { rewritten: true, bytes_after: 80, ..clean };
        let text = dirty.render(Path::new("/tmp/c"));
        assert!(text.contains("100 -> 80 bytes"), "{text}");
        assert!(!text.contains("already clean"), "{text}");
    }
}
