//! Request execution: dispatch one [`RunRequest`] to the unified
//! [`Runner`] facade with the concrete sink its [`SinkKind`] names, and
//! fold the sink's measurements into the sink-independent
//! [`RunArtifact`].

use interp_archsim::{CacheSweep, PipelineReport, PipelineSim, SimConfig, StallCause};
use interp_core::{
    CycleSummary, RunArtifact, RunRequest, SinkKind, StallShare, SweepPointSummary,
};
use interp_guard::{GuardError, Limits};
use interp_workloads::Runner;

/// Execute one request under `limits` and return its memoizable
/// artifact, with every failure — unknown name, compile error, limit
/// trip, failed self-check — as a typed [`GuardError`]. The supervised
/// pool calls this so a fuel deadline (`limits.max_host_steps`) stops a
/// wedged run cooperatively at its next guard poll.
pub fn try_run_request(
    request: &RunRequest,
    limits: Limits,
) -> Result<RunArtifact, GuardError> {
    let workload = request.workload;
    let dispatch = request.dispatch;
    match request.sink {
        SinkKind::Counting => {
            Runner::try_run_dispatch(workload, limits, dispatch, interp_core::NullSink)
                .map(|r| r.base_artifact())
        }
        SinkKind::Pipeline => {
            let result =
                Runner::try_run_dispatch(workload, limits, dispatch, PipelineSim::alpha_21064())?;
            let mut artifact = result.base_artifact();
            artifact.cycles = Some(cycle_summary(&result.sink.report()));
            Ok(artifact)
        }
        SinkKind::PipelineWideItlb => {
            let sim = PipelineSim::new(SimConfig::default().with_itlb_entries(32));
            let result = Runner::try_run_dispatch(workload, limits, dispatch, sim)?;
            let mut artifact = result.base_artifact();
            artifact.cycles = Some(cycle_summary(&result.sink.report()));
            Ok(artifact)
        }
        SinkKind::ICacheSweep => {
            let result = Runner::try_run_dispatch(workload, limits, dispatch, CacheSweep::figure4())?;
            let mut artifact = result.base_artifact();
            artifact.sweep = Some(
                result
                    .sink
                    .points()
                    .into_iter()
                    .map(|p| SweepPointSummary {
                        size_bytes: p.size_bytes,
                        assoc: p.assoc,
                        miss_per_100: p.miss_per_100,
                    })
                    .collect(),
            );
            Ok(artifact)
        }
    }
}

/// Execute one request and return its memoizable artifact.
///
/// # Panics
///
/// Panics exactly where the underlying runner does (unknown names,
/// failed self-checks) — the planner only emits registry-valid requests.
/// Use [`try_run_request`] for the supervised, panic-free boundary.
// The panic is the documented contract of this legacy entry point; the
// supervised pool goes through `try_run_request` instead.
#[allow(clippy::panic)]
pub fn run_request(request: &RunRequest) -> RunArtifact {
    try_run_request(request, Limits::unlimited())
        .unwrap_or_else(|e| panic!("planned run `{request}` failed: {e}"))
}

/// Fold a pipeline report into the sink-independent summary, preserving
/// the model's stall stacking order.
fn cycle_summary(report: &PipelineReport) -> CycleSummary {
    CycleSummary {
        cycles: report.cycles,
        instructions: report.instructions,
        busy_fraction: report.busy_fraction(),
        stalls: StallCause::ALL
            .iter()
            .map(|&cause| StallShare {
                label: cause.label(),
                fraction: report.stall_fraction(cause),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{Language, Scale, WorkloadId};

    fn des() -> WorkloadId {
        WorkloadId::macro_bench(Language::Mipsi, "des", Scale::Test)
    }

    #[test]
    fn counting_artifact_has_counters_but_no_timing() {
        let art = run_request(&RunRequest::counting(des()));
        assert!(art.stats.instructions > 1000);
        assert!(art.console.ok);
        assert!(art.cycles.is_none());
        assert!(art.sweep.is_none());
    }

    #[test]
    fn pipeline_artifact_adds_cycles_without_changing_counters() {
        let counting = run_request(&RunRequest::counting(des()));
        let pipeline = run_request(&RunRequest::pipeline(des()));
        // The subsumption soundness property: identical counters and
        // console, timing added on top.
        assert_eq!(counting.stats.instructions, pipeline.stats.instructions);
        assert_eq!(counting.stats.commands, pipeline.stats.commands);
        assert_eq!(counting.console, pipeline.console);
        let cycles = pipeline.cycle_summary();
        assert!(cycles.cycles > 0);
        assert_eq!(cycles.stalls.len(), StallCause::ALL.len());
    }

    #[test]
    fn sweep_artifact_carries_the_figure4_grid() {
        let art = run_request(&RunRequest::new(des(), SinkKind::ICacheSweep));
        let points = art.sweep_points();
        assert_eq!(points.len(), 12, "4 sizes x 3 associativities");
    }

    #[test]
    fn wide_itlb_artifact_reports_itlb_stalls() {
        let art = run_request(&RunRequest::new(des(), SinkKind::PipelineWideItlb));
        // Just shape: the summary exists and knows the itlb label.
        let s = art.cycle_summary();
        assert!(s.stall_fraction("itlb") >= 0.0);
    }
}
