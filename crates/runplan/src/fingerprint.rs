//! Journal keys: request fingerprints paired with the code/config epoch.
//!
//! A journal record is addressed by `(RunRequest fingerprint, epoch)`.
//! The fingerprint (computed in `interp-core`, stable across process
//! restarts) says *which run* the record caches; the epoch says *which
//! build of the measurement pipeline* produced it. Any change that can
//! alter what a run measures — the record format, the workspace
//! version, or an explicit epoch bump after touching interpreter or
//! timing-model code — moves the epoch, and every record written under
//! an older epoch is treated as stale: requeued for recomputation, never
//! silently trusted.

use interp_core::serial::fnv1a;
use interp_core::RunRequest;

/// Version tag of the journal record layout. Bumping it makes every
/// existing record decode as `BadVersion` (requeued, not trusted).
pub const RECORD_VERSION: u16 = 1;

/// Manual epoch salt. Bump this when interpreter, workload, or timing
/// model changes could alter artifact *content* without changing the
/// record layout — the journal has no way to see inside the binary, so
/// semantic invalidation is a human (or release-process) decision.
///
/// Salt history:
/// * 1 → 2: the dispatch-strategy axis joined `RunRequest::fingerprint`
///   (every canonical string gained a `+strategy` suffix), so every
///   pre-dispatch journal must be re-executed, not misread.
/// * 2 → 3: the tiered tier added trace counters to the `RunStats`
///   encoding, so artifacts written before the tier would decode with
///   silently-zero trace fields instead of being re-measured.
pub const EPOCH_SALT: u32 = 3;

/// The current code/config epoch: a stable hash of the record version,
/// the manual salt, and the workspace package version. Records written
/// under any other epoch are [`StaleEpoch`](crate::JournalDefectKind)
/// defects on load.
pub fn current_epoch() -> u64 {
    let canonical = format!(
        "interp-runplan-journal/v{RECORD_VERSION}/salt{EPOCH_SALT}/pkg{}",
        env!("CARGO_PKG_VERSION")
    );
    fnv1a(canonical.as_bytes())
}

/// The journal key of `request` under the current build: its stable
/// content fingerprint plus [`current_epoch`].
pub fn journal_key(request: &RunRequest) -> (u64, u64) {
    (request.fingerprint(), current_epoch())
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{Language, Scale, WorkloadId};

    #[test]
    fn epoch_is_stable_within_a_build() {
        assert_eq!(current_epoch(), current_epoch());
        assert_ne!(current_epoch(), 0);
    }

    #[test]
    fn keys_pair_fingerprint_with_epoch() {
        let request = RunRequest::pipeline(WorkloadId::macro_bench(
            Language::Mipsi,
            "des",
            Scale::Test,
        ));
        let (fp, epoch) = journal_key(&request);
        assert_eq!(fp, request.fingerprint());
        assert_eq!(epoch, current_epoch());
    }
}
