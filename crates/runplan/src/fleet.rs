//! Serve-fleet membership: the registry that lets N `repro serve`
//! daemons share one cache.
//!
//! PR 8's daemon held a single `serve/daemon.pid` lease — one daemon
//! per cache, a single point of failure. The fleet registry replaces
//! that lease with one *member file* per daemon under `serve/fleet/`,
//! published with the same fsynced-temp + atomic hard-link idiom as the
//! journal lock, so membership is crash-visible state on the shared
//! filesystem:
//!
//! ```text
//! serve/fleet/<token>       pid <pid> / token <token>   (hard-linked)
//! serve/fleet/<token>.hb    pid / tick / unix_ms / served / in-flight
//! serve/work/<token>/       requests this member has claimed
//! ```
//!
//! Every member claims inbox requests by atomic rename into its own
//! work directory, so two members can never admit the same request.
//! Liveness is judged the same way the lock judges it — `/proc/<pid>`
//! — with the per-member heartbeat as a second signal: a member whose
//! pid is dead, or whose heartbeat is older than the configured
//! staleness horizon, is *dead to the fleet*. Any live member sweeps a
//! dead member's claimed work back to the inbox (exactly-once: the
//! rename from the dead member's work dir succeeds for one sweeper)
//! and retires its registry entries, so `kill -9` of any daemon
//! mid-request loses nothing.

use crate::journal::{io_err, JournalError};
use crate::lock::{fresh_token, holder_pid, holder_token, parse_field, pid_alive};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The fleet member registry directory inside a cache dir.
pub const FLEET_DIR: &str = "serve/fleet";

/// How stale a live-pid member's heartbeat may grow before the fleet
/// treats it as dead (wedged) and re-adopts its claimed work.
pub const DEFAULT_MEMBER_STALE: Duration = Duration::from_secs(30);

/// Milliseconds since the Unix epoch (0 if the clock is broken).
pub(crate) fn unix_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis())
}

/// Render one heartbeat file body.
fn heartbeat_body(tick: u64, served: u64, in_flight: usize) -> String {
    format!(
        "pid {}\ntick {tick}\nunix_ms {}\nserved {served}\nin-flight {in_flight}\n",
        std::process::id(),
        unix_ms()
    )
}

/// One daemon's registered identity in the fleet: its member file, its
/// heartbeat file, and its private work directory. Registration is the
/// constructor; `Drop` retires all three.
#[derive(Debug)]
pub struct FleetMembership {
    /// This member's unique registry token.
    pub token: String,
    /// This member's private claimed-request directory.
    pub work_dir: PathBuf,
    member_path: PathBuf,
    hb_path: PathBuf,
}

impl FleetMembership {
    /// Register this process as a fleet member of `cache_dir`: publish
    /// the member file (fsynced temp, atomic hard link — the same
    /// no-overwrite idiom as the journal lock) and create the member's
    /// work directory.
    pub fn register(cache_dir: &Path) -> Result<FleetMembership, JournalError> {
        let fleet_dir = cache_dir.join(FLEET_DIR);
        std::fs::create_dir_all(&fleet_dir).map_err(|e| io_err(&fleet_dir, "create-dir", e))?;
        loop {
            let token = fresh_token();
            let member_path = fleet_dir.join(&token);
            let tmp = fleet_dir.join(format!(".tmp-{token}"));
            {
                let mut f =
                    std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, "write", e))?;
                f.write_all(format!("pid {}\ntoken {token}\n", std::process::id()).as_bytes())
                    .map_err(|e| io_err(&tmp, "write", e))?;
                f.sync_all().map_err(|e| io_err(&tmp, "fsync", e))?;
            }
            let linked = std::fs::hard_link(&tmp, &member_path);
            let _ = std::fs::remove_file(&tmp);
            match linked {
                Ok(()) => {
                    let work_dir = cache_dir.join(crate::serve::WORK_DIR).join(&token);
                    std::fs::create_dir_all(&work_dir)
                        .map_err(|e| io_err(&work_dir, "create-dir", e))?;
                    let hb_path = fleet_dir.join(format!("{token}.hb"));
                    return Ok(FleetMembership { token, work_dir, member_path, hb_path });
                }
                // A token collision is all but impossible (pid +
                // counter + clock), but losing the race is not an
                // error: take a fresh identity and re-link.
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(io_err(&member_path, "write", e)),
            }
        }
    }

    /// Rewrite this member's heartbeat (best-effort: a failed heartbeat
    /// must not kill the daemon). Carries the member's served and
    /// in-flight counters for the `repro status` fleet table.
    pub fn heartbeat(&self, tick: u64, served: u64, in_flight: usize) {
        let _ = std::fs::write(&self.hb_path, heartbeat_body(tick, served, in_flight));
    }

    /// Is this member's registration still on disk? A peer that judged
    /// this member wedged (stale heartbeat) retires its member file and
    /// work dir; after that, every claim rename fails on the missing
    /// work dir and this process serves nothing until it re-registers
    /// under a fresh token.
    pub fn still_registered(&self) -> bool {
        self.work_dir.is_dir()
            && std::fs::read_to_string(&self.member_path)
                .is_ok_and(|content| holder_token(&content) == Some(self.token.as_str()))
    }

    /// Spawn this member's background heartbeat writer: a thread that
    /// rewrites the heartbeat file every quarter of `stale_after` (and
    /// promptly after each [`HeartbeatPulse::record`]), so a scan loop
    /// busy executing a long batch keeps proving liveness instead of
    /// being judged wedged by its peers. Drop the pulse *before* the
    /// membership so it cannot recreate a retired heartbeat file.
    pub fn spawn_pulse(&self, stale_after: Duration) -> HeartbeatPulse {
        HeartbeatPulse::spawn(self.hb_path.clone(), stale_after)
    }
}

/// Counters the serve loop publishes for the heartbeat thread to write.
#[derive(Debug, Default)]
struct PulseState {
    tick: AtomicU64,
    served: AtomicU64,
    in_flight: AtomicU64,
    dirty: AtomicBool,
    stop: AtomicBool,
}

/// A member's background heartbeat writer
/// (see [`FleetMembership::spawn_pulse`]). Stopped and joined on drop.
#[derive(Debug)]
pub struct HeartbeatPulse {
    state: Arc<PulseState>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatPulse {
    fn spawn(hb_path: PathBuf, stale_after: Duration) -> HeartbeatPulse {
        let state = Arc::new(PulseState::default());
        let shared = Arc::clone(&state);
        let interval = (stale_after / 4).max(Duration::from_millis(20));
        // Sleep in short slices so counter updates land promptly and
        // drop joins fast, while full rewrites stay interval-paced.
        let slice = interval.min(Duration::from_millis(20));
        let handle = std::thread::spawn(move || {
            let mut since_rewrite = interval; // first pass writes immediately
            while !shared.stop.load(Ordering::Acquire) {
                if since_rewrite >= interval || shared.dirty.swap(false, Ordering::AcqRel) {
                    let _ = std::fs::write(
                        &hb_path,
                        heartbeat_body(
                            shared.tick.load(Ordering::Relaxed),
                            shared.served.load(Ordering::Relaxed),
                            shared.in_flight.load(Ordering::Relaxed) as usize,
                        ),
                    );
                    since_rewrite = Duration::ZERO;
                }
                std::thread::sleep(slice);
                since_rewrite += slice;
            }
        });
        HeartbeatPulse { state, handle: Some(handle) }
    }

    /// Publish fresh counters; the thread rewrites the heartbeat on its
    /// next slice (tens of milliseconds), not the next full interval.
    pub fn record(&self, tick: u64, served: u64, in_flight: usize) {
        self.state.tick.store(tick, Ordering::Relaxed);
        self.state.served.store(served, Ordering::Relaxed);
        self.state.in_flight.store(in_flight as u64, Ordering::Relaxed);
        self.state.dirty.store(true, Ordering::Release);
    }
}

impl Drop for HeartbeatPulse {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FleetMembership {
    fn drop(&mut self) {
        // Retire only our own entry (token-checked, like the lock).
        if let Ok(content) = std::fs::read_to_string(&self.member_path) {
            if holder_token(&content) == Some(self.token.as_str()) {
                let _ = std::fs::remove_file(&self.member_path);
            }
        }
        let _ = std::fs::remove_file(&self.hb_path);
        // Empty on a clean exit; a non-empty dir (claimed work we never
        // finished) is deliberately left for the fleet to re-adopt.
        let _ = std::fs::remove_dir(&self.work_dir);
    }
}

/// One member's row in the fleet table, as read-only observers (and
/// other members) see it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetMemberInfo {
    /// The member's registry token.
    pub token: String,
    /// The pid recorded in the member file (0 if unparseable).
    pub pid: u32,
    /// Whether that pid is currently alive.
    pub pid_live: bool,
    /// Age of the member's last heartbeat in milliseconds, if any.
    pub heartbeat_age_ms: Option<u128>,
    /// Requests claimed into the member's work dir right now.
    pub in_flight: usize,
    /// Responses the member reported served in its last heartbeat.
    pub served: u64,
}

impl FleetMemberInfo {
    /// Is this member dead to the fleet under `stale_after`? Dead pid,
    /// or a heartbeat older than the staleness horizon (a live pid
    /// with *no* heartbeat yet is still starting up, not dead).
    pub fn is_dead(&self, stale_after: Duration) -> bool {
        !self.pid_live
            || self
                .heartbeat_age_ms
                .is_some_and(|age| age > stale_after.as_millis())
    }
}

fn parse_hb_field(content: &str, key: &str) -> Option<u128> {
    parse_field(content, key).and_then(|v| v.parse().ok())
}

/// Snapshot every registered fleet member of `cache_dir`, sorted by
/// token. Read-only: safe for `repro status` while daemons run.
pub fn fleet_members(cache_dir: &Path) -> Vec<FleetMemberInfo> {
    let fleet_dir = cache_dir.join(FLEET_DIR);
    let Ok(entries) = std::fs::read_dir(&fleet_dir) else {
        return Vec::new();
    };
    let mut out: Vec<FleetMemberInfo> = entries
        .flatten()
        .filter_map(|entry| {
            let token = entry.file_name().to_str()?.to_string();
            if token.starts_with('.') || token.ends_with(".hb") {
                return None;
            }
            let content = std::fs::read_to_string(entry.path()).ok()?;
            let pid = holder_pid(&content).unwrap_or(0);
            let hb = std::fs::read_to_string(fleet_dir.join(format!("{token}.hb"))).ok();
            let heartbeat_age_ms = hb
                .as_deref()
                .and_then(|c| parse_hb_field(c, "unix_ms"))
                .map(|then| unix_ms().saturating_sub(then));
            let served = hb
                .as_deref()
                .and_then(|c| parse_hb_field(c, "served"))
                .unwrap_or(0) as u64;
            let in_flight = std::fs::read_dir(
                cache_dir.join(crate::serve::WORK_DIR).join(&token),
            )
            .map_or(0, |entries| {
                entries
                    .flatten()
                    .filter(|e| {
                        e.file_name().to_str().is_some_and(|n| n.ends_with(".req"))
                    })
                    .count()
            });
            Some(FleetMemberInfo {
                token,
                pid,
                pid_live: pid_alive(pid),
                heartbeat_age_ms,
                in_flight,
                served,
            })
        })
        .collect();
    out.sort_by(|a, b| a.token.cmp(&b.token));
    out
}

/// Sweep every dead member of `cache_dir`'s fleet (excluding
/// `self_token`): move its claimed requests back to the inbox for
/// re-service and retire its member, heartbeat, and work-dir entries.
/// Returns the number of orphaned requests re-adopted. Exactly-once by
/// construction — each orphan's rename into the inbox succeeds for at
/// most one sweeping member.
pub fn sweep_dead_members(
    cache_dir: &Path,
    stale_after: Duration,
    self_token: Option<&str>,
) -> usize {
    let inbox = cache_dir.join(crate::serve::INBOX_DIR);
    let fleet_dir = cache_dir.join(FLEET_DIR);
    let mut adopted = 0;
    for member in fleet_members(cache_dir) {
        if Some(member.token.as_str()) == self_token || !member.is_dead(stale_after) {
            continue;
        }
        let work_dir = cache_dir.join(crate::serve::WORK_DIR).join(&member.token);
        if let Ok(entries) = std::fs::read_dir(&work_dir) {
            for entry in entries.flatten() {
                let Some(name) = entry.file_name().to_str().map(str::to_string) else {
                    continue;
                };
                if !name.ends_with(".req") {
                    continue;
                }
                if std::fs::rename(entry.path(), inbox.join(&name)).is_ok() {
                    adopted += 1;
                }
            }
        }
        let _ = std::fs::remove_dir(&work_dir);
        let _ = std::fs::remove_file(fleet_dir.join(format!("{}.hb", member.token)));
        let _ = std::fs::remove_file(fleet_dir.join(&member.token));
    }
    // Second pass: *unregistered* work dirs — a member that deregistered
    // (clean Drop or error-path exit) with claims still on disk. Safe
    // against racing a mid-registration member because `register`
    // publishes the member file *before* creating the work dir: any
    // work dir whose member file is absent at this instant belongs to
    // no one. The existence check is per-subdir and fresh, never a
    // snapshot.
    let work_root = cache_dir.join(crate::serve::WORK_DIR);
    if let Ok(entries) = std::fs::read_dir(&work_root) {
        for entry in entries.flatten() {
            let Some(token) = entry.file_name().to_str().map(str::to_string) else {
                continue;
            };
            if Some(token.as_str()) == self_token || !entry.path().is_dir() {
                continue;
            }
            if fleet_dir.join(&token).exists() {
                continue; // registered (possibly mid-startup): not ours
            }
            if let Ok(claims) = std::fs::read_dir(entry.path()) {
                for claim in claims.flatten() {
                    let Some(name) = claim.file_name().to_str().map(str::to_string) else {
                        continue;
                    };
                    if !name.ends_with(".req") {
                        continue;
                    }
                    if std::fs::rename(claim.path(), inbox.join(&name)).is_ok() {
                        adopted += 1;
                    }
                }
            }
            let _ = std::fs::remove_dir(entry.path());
        }
    }
    adopted
}

/// The first live member of `cache_dir`'s fleet, if any — what
/// `--exclusive` startup and `serve --stop` drain-waiting check.
pub fn live_member(cache_dir: &Path) -> Option<FleetMemberInfo> {
    fleet_members(cache_dir).into_iter().find(|m| m.pid_live)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "interp-fleet-{tag}-{}-{}",
            std::process::id(),
            fresh_token()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join(crate::serve::INBOX_DIR)).expect("mkdir");
        dir
    }

    #[test]
    fn register_heartbeat_and_drop_round_trip() {
        let dir = fresh_dir("register");
        let member = FleetMembership::register(&dir).expect("register");
        member.heartbeat(3, 7, 1);
        let members = fleet_members(&dir);
        assert_eq!(members.len(), 1);
        assert_eq!(members[0].pid, std::process::id());
        assert!(members[0].pid_live);
        assert_eq!(members[0].served, 7);
        assert!(members[0].heartbeat_age_ms.is_some());
        assert!(!members[0].is_dead(DEFAULT_MEMBER_STALE));
        drop(member);
        assert!(fleet_members(&dir).is_empty(), "drop must deregister");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pulse_heartbeats_in_the_background_and_stops_on_drop() {
        let dir = fresh_dir("pulse");
        let member = FleetMembership::register(&dir).expect("register");
        let pulse = member.spawn_pulse(Duration::from_millis(80));
        pulse.record(2, 9, 3);
        // The thread writes the recorded counters within a few slices,
        // with no call from the "scan loop" in between — exactly what a
        // member stuck executing a long batch needs.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let members = fleet_members(&dir);
            if members.len() == 1 && members[0].served == 9 {
                assert!(!members[0].is_dead(Duration::from_secs(5)));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "pulse never wrote: {members:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(pulse);
        drop(member);
        assert!(fleet_members(&dir).is_empty(), "drop must deregister");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn still_registered_detects_a_peer_sweep() {
        let dir = fresh_dir("retired");
        let member = FleetMembership::register(&dir).expect("register");
        assert!(member.still_registered());
        // What a peer's sweep does to a member it judged wedged.
        std::fs::remove_file(dir.join(FLEET_DIR).join(&member.token)).expect("retire");
        let _ = std::fs::remove_dir_all(&member.work_dir);
        assert!(!member.still_registered());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_members_coexist_with_distinct_work_dirs() {
        let dir = fresh_dir("pair");
        let a = FleetMembership::register(&dir).expect("a");
        let b = FleetMembership::register(&dir).expect("b");
        assert_ne!(a.token, b.token);
        assert_ne!(a.work_dir, b.work_dir);
        assert_eq!(fleet_members(&dir).len(), 2);
        drop(a);
        assert_eq!(fleet_members(&dir).len(), 1);
        drop(b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_member_work_is_swept_back_to_the_inbox_exactly_once() {
        let dir = fresh_dir("sweep");
        let fleet_dir = dir.join(FLEET_DIR);
        std::fs::create_dir_all(&fleet_dir).expect("mkdir");
        // A corpse: dead pid, one claimed request, no heartbeat.
        std::fs::write(fleet_dir.join("corpse"), "pid 4000000000\ntoken corpse\n")
            .expect("member");
        let work = dir.join(crate::serve::WORK_DIR).join("corpse");
        std::fs::create_dir_all(&work).expect("mkdir");
        std::fs::write(work.join("lost.req"), b"payload\n").expect("plant");
        assert_eq!(sweep_dead_members(&dir, DEFAULT_MEMBER_STALE, None), 1);
        assert!(dir.join(crate::serve::INBOX_DIR).join("lost.req").exists());
        assert!(!work.exists(), "corpse work dir must be retired");
        assert!(fleet_members(&dir).is_empty(), "corpse member must be retired");
        // A second sweep finds nothing — exactly-once.
        assert_eq!(sweep_dead_members(&dir, DEFAULT_MEMBER_STALE, None), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_member_with_stale_heartbeat_is_dead_to_the_fleet() {
        let dir = fresh_dir("stale");
        let fleet_dir = dir.join(FLEET_DIR);
        std::fs::create_dir_all(&fleet_dir).expect("mkdir");
        // Our own (alive) pid, but a heartbeat from the epoch.
        std::fs::write(
            fleet_dir.join("wedged"),
            format!("pid {}\ntoken wedged\n", std::process::id()),
        )
        .expect("member");
        std::fs::write(
            fleet_dir.join("wedged.hb"),
            format!("pid {}\ntick 1\nunix_ms 1\nserved 0\nin-flight 0\n", std::process::id()),
        )
        .expect("hb");
        let members = fleet_members(&dir);
        assert_eq!(members.len(), 1);
        assert!(members[0].pid_live);
        assert!(members[0].is_dead(Duration::from_millis(10)), "stale heartbeat");
        // A member that has not heartbeat *yet* is starting, not dead.
        std::fs::remove_file(fleet_dir.join("wedged.hb")).expect("rm");
        assert!(!fleet_members(&dir)[0].is_dead(Duration::from_millis(10)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn self_token_is_never_swept() {
        let dir = fresh_dir("self");
        let fleet_dir = dir.join(FLEET_DIR);
        std::fs::create_dir_all(&fleet_dir).expect("mkdir");
        std::fs::write(
            fleet_dir.join("me"),
            format!("pid {}\ntoken me\n", std::process::id()),
        )
        .expect("member");
        // Even under a zero staleness horizon (no heartbeat means
        // "starting", and self is excluded outright).
        assert_eq!(sweep_dead_members(&dir, Duration::ZERO, Some("me")), 0);
        assert_eq!(fleet_members(&dir).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unregistered_work_dir_is_adopted() {
        let dir = fresh_dir("unregistered");
        // A member that exited through an error path: its member file
        // is gone (Drop deregistered it) but a claimed request is still
        // in its work dir — no registered member points at it.
        let work = dir.join(crate::serve::WORK_DIR).join("ghost");
        std::fs::create_dir_all(&work).expect("mkdir");
        std::fs::write(work.join("left-behind.req"), b"payload\n").expect("plant");
        assert_eq!(sweep_dead_members(&dir, DEFAULT_MEMBER_STALE, None), 1);
        assert!(dir.join(crate::serve::INBOX_DIR).join("left-behind.req").exists());
        assert!(!work.exists());
        // A *registered* live member's work dir is untouchable even
        // when empty of heartbeats.
        let member = FleetMembership::register(&dir).expect("register");
        std::fs::write(member.work_dir.join("claimed.req"), b"payload\n").expect("plant");
        assert_eq!(sweep_dead_members(&dir, DEFAULT_MEMBER_STALE, None), 0);
        assert!(member.work_dir.join("claimed.req").exists());
        let _ = std::fs::remove_file(member.work_dir.join("claimed.req"));
        drop(member);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
