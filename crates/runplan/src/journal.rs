//! The crash-safe artifact journal: persist every completed
//! [`RunArtifact`] so a panic, deadline, or Ctrl-C never throws away
//! finished work, and a resumed plan only executes the residue.
//!
//! # Record format
//!
//! The journal is one append-only file (`artifacts.journal`) holding an
//! 8-byte magic header followed by self-describing records:
//!
//! ```text
//! u32  len       — byte length of everything below (version..checksum)
//! u16  version   — RECORD_VERSION
//! u64  epoch     — code/config epoch the artifact was computed under
//! u64  fingerprint — stable RunRequest fingerprint (the lookup key)
//! str  label     — human-readable request label (collision cross-check)
//! [..] payload   — stable RunArtifact encoding (interp-core::serial)
//! u64  checksum  — FNV-1a over version..payload
//! ```
//!
//! Every append rewrites the full image to a temp file, fsyncs, and
//! atomically renames it over the journal, so the on-disk file is always
//! either the old image or the new one — never a half-written tail from
//! *our* writer. A torn tail can still appear if the host dies mid-write
//! of the temp file before the rename, or if an external process
//! truncates the journal; the loader treats that (and every other
//! corruption) as a *recoverable, typed* event.
//!
//! # Multi-process coordination
//!
//! Several `repro` processes may share one cache directory. Every
//! republish happens under the advisory [`crate::lock`] file lock, and
//! every acquisition starts with *merge-on-reload*: re-read the journal,
//! fold in records another process landed since our last read, and only
//! then append — so concurrent writers interleave without ever losing
//! each other's records. The published image is always the *canonical*
//! encoding (records in fingerprint order), which makes the final
//! journal byte-identical no matter how appends interleaved.
//!
//! On top of the lock, [`JournalSession`] coordinates *exactly-once
//! execution*: before running a request, a session consults the journal
//! (someone already landed it → reuse), then the claims registry
//! (someone live is running it right now → wait), and otherwise claims
//! the fingerprint itself and executes. A claim whose owner died is
//! simply taken over. A non-resume open *truncates* the journal only
//! when no other live writer session is registered; otherwise it joins
//! the in-flight campaign and reuses its records — so `N` concurrent
//! invocations cooperatively fill one cache.
//!
//! # Defect taxonomy
//!
//! Loading verifies every record and classifies anything wrong as a
//! [`JournalDefect`] — reported, then healed by requeuing the affected
//! runs for recomputation. Corruption is never a crash and never
//! silently trusted:
//!
//! * [`TornTail`](JournalDefectKind::TornTail) — the file ends inside a
//!   record (torn header, torn length prefix, or a length running past
//!   EOF). Only the records from the tear onward are lost.
//! * [`BadChecksum`](JournalDefectKind::BadChecksum) — a record's
//!   checksum does not match its content (bit rot, partial overwrite),
//!   or a checksummed payload fails to decode.
//! * [`BadVersion`](JournalDefectKind::BadVersion) — the record (or the
//!   whole file) was written by a different format version.
//! * [`StaleEpoch`](JournalDefectKind::StaleEpoch) — the record was
//!   written under a different code/config epoch; the bits are intact
//!   but the measurement pipeline has changed, so the artifact cannot be
//!   trusted.
//! * [`DuplicateKey`](JournalDefectKind::DuplicateKey) — two valid
//!   records share a fingerprint; the first wins deterministically.
//!
//! # Quarantine rule
//!
//! Only *successful* artifacts are journaled. A run the supervisor
//! degraded (panic, deadline, fault) is never written: a failure must be
//! re-attempted on the next invocation, not resurrected from cache —
//! caching a `RunFailure` would launder a transient environment problem
//! into a permanent one.

use crate::fingerprint::{current_epoch, RECORD_VERSION};
use crate::lock::{
    self, fresh_token, sweep_lock_debris, Claims, LockConfig, LockError, LockErrorKind, Sessions,
    DEFAULT_LOCK_TIMEOUT,
};
use crate::plan::Plan;
use crate::pool::{
    classify_guard_failure, deadline_limits, supervise_with, ExecutedPlan, RunTiming,
};
use crate::supervise::{RunFailure, SuperviseConfig};
use interp_core::serial::{fnv1a, ByteReader, ByteWriter};
use interp_core::{RunArtifact, RunRequest};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use std::fmt;

/// Journal file magic: identifies the format family; the per-record
/// version tag governs compatibility within it.
pub const MAGIC: [u8; 8] = *b"INTERPJ1";

/// File name of the journal inside a cache directory.
pub const JOURNAL_FILE: &str = "artifacts.journal";

/// Default cache directory (relative to the working directory) used by
/// `repro --resume` when no `--cache-dir` is given. Git-ignored.
pub const DEFAULT_CACHE_DIR: &str = ".repro-cache";

/// Exit status of a process that deliberately crashed via
/// [`JournalConfig::crash_after_appends`] (the crash-resume harness).
pub const CRASH_EXIT_CODE: i32 = 86;

/// How long a waiter sleeps before re-polling a fingerprint another
/// live session has claimed.
const CLAIM_POLL: Duration = Duration::from_millis(5);

/// Smallest possible `len` field: version + epoch + fingerprint + empty
/// label + empty payload is impossible (payload is never empty), but the
/// framing floor is version(2) + epoch(8) + fingerprint(8) + label
/// len(4) + checksum(8).
const MIN_RECORD_REST: usize = 2 + 8 + 8 + 4 + 8;

/// What kind of corruption the loader found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalDefectKind {
    /// The file ends mid-record: a crash tore the final write, or the
    /// file was truncated externally. Drops the torn record and
    /// everything after it.
    TornTail,
    /// Record content does not match its checksum (or a checksummed
    /// payload failed to decode). The record is dropped; framing is
    /// intact, so parsing continues with the next record.
    BadChecksum,
    /// Unknown record (or file) format version.
    BadVersion,
    /// The record was written under a different code/config epoch.
    StaleEpoch,
    /// A second valid record for an already-loaded fingerprint; the
    /// first record wins.
    DuplicateKey,
}

impl JournalDefectKind {
    /// Short stable tag for reports and chaos assertions.
    pub fn label(self) -> &'static str {
        match self {
            JournalDefectKind::TornTail => "torn-tail",
            JournalDefectKind::BadChecksum => "bad-checksum",
            JournalDefectKind::BadVersion => "bad-version",
            JournalDefectKind::StaleEpoch => "stale-epoch",
            JournalDefectKind::DuplicateKey => "duplicate-key",
        }
    }

    /// Every kind, in report order — the axis of
    /// [`LoadedJournal::defect_counts`].
    pub const ALL: [JournalDefectKind; 5] = [
        JournalDefectKind::TornTail,
        JournalDefectKind::BadChecksum,
        JournalDefectKind::BadVersion,
        JournalDefectKind::StaleEpoch,
        JournalDefectKind::DuplicateKey,
    ];
}

/// One detected-and-recovered journal corruption event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalDefect {
    /// The taxonomy bucket.
    pub kind: JournalDefectKind,
    /// Byte offset of the affected record (its length prefix), or 0 for
    /// file-level defects.
    pub offset: usize,
    /// Human-readable cause for the stderr report.
    pub detail: String,
}

impl fmt::Display for JournalDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @byte {}: {}", self.kind.label(), self.offset, self.detail)
    }
}

/// Which failure family a [`JournalError`] belongs to — the CLI maps
/// these onto distinct exit codes (4 = I/O, 5 = lock timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalErrorKind {
    /// A filesystem operation on the journal or its cache dir failed.
    Io,
    /// The advisory lock stayed held by a live process past the
    /// configured timeout.
    LockTimeout,
}

/// A journal operation failure (the only *error* the journal can raise —
/// corruption is a recoverable [`JournalDefect`], not an error).
#[derive(Debug, Clone)]
pub struct JournalError {
    /// The failure family (drives the CLI exit code).
    pub kind: JournalErrorKind,
    /// The file or directory the operation touched.
    pub path: PathBuf,
    /// The failing operation (`create-dir`, `read`, `write`, `rename`,
    /// `lock`).
    pub op: &'static str,
    /// The underlying OS error text.
    pub detail: String,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal {} failed for {}: {}", self.op, self.path.display(), self.detail)
    }
}

impl std::error::Error for JournalError {}

pub(crate) fn io_err(path: &Path, op: &'static str, e: std::io::Error) -> JournalError {
    JournalError {
        kind: JournalErrorKind::Io,
        path: path.to_path_buf(),
        op,
        detail: e.to_string(),
    }
}

/// Lift a lock failure into the journal's error type, preserving the
/// timeout-vs-I/O distinction for the CLI exit code.
pub(crate) fn lock_err(e: LockError) -> JournalError {
    JournalError {
        kind: match e.kind {
            LockErrorKind::Timeout => JournalErrorKind::LockTimeout,
            LockErrorKind::Io => JournalErrorKind::Io,
        },
        path: e.path.clone(),
        op: "lock",
        detail: e.detail,
    }
}

/// One valid record recovered from the journal.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// The request fingerprint the artifact was computed for.
    pub fingerprint: u64,
    /// The request's display label at write time.
    pub label: String,
    /// The cached artifact.
    pub artifact: RunArtifact,
}

/// Everything one load pass recovered: the valid records (first valid
/// record per fingerprint wins) plus every defect that was detected,
/// classified, and healed by dropping the affected records.
#[derive(Debug, Clone, Default)]
pub struct LoadedJournal {
    /// Valid records keyed by request fingerprint.
    pub records: BTreeMap<u64, JournalRecord>,
    /// Corruption events, in file order.
    pub defects: Vec<JournalDefect>,
}

impl LoadedJournal {
    /// Defects bucketed by kind label, in taxonomy order, zero-count
    /// kinds omitted — the structural counterpart of the stderr defect
    /// report (tests and `repro status` read this instead of scraping
    /// text).
    pub fn defect_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for defect in &self.defects {
            *counts.entry(defect.kind.label()).or_insert(0) += 1;
        }
        counts
    }
}

/// Byte extents of one record as framed in the file — support for the
/// corruption harness (`runplan::chaos`) and for tests that need to aim
/// a fault at a specific region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSpan {
    /// Offset of the record's `u32` length prefix.
    pub start: usize,
    /// Offset of the version field (`start + 4`).
    pub body_start: usize,
    /// Offset of the first artifact-payload byte.
    pub payload_start: usize,
    /// Offset one past the last payload byte (= checksum offset).
    pub payload_end: usize,
    /// Offset one past the record's checksum.
    pub end: usize,
}

/// Encode one record (length prefix through checksum).
pub fn encode_record(epoch: u64, fingerprint: u64, label: &str, artifact: &RunArtifact) -> Vec<u8> {
    let mut body = ByteWriter::new();
    body.put_u16(RECORD_VERSION);
    body.put_u64(epoch);
    body.put_u64(fingerprint);
    body.put_str(label);
    artifact.encode_into(&mut body);
    let checksum = fnv1a(body.bytes());
    let mut out = ByteWriter::new();
    out.put_u32((body.len() + 8) as u32);
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body.bytes());
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Encode the *canonical* journal image of a record set: the magic
/// header followed by every record in fingerprint order. Because every
/// publish emits this form, the on-disk journal is a pure function of
/// its record set — byte-identical however many writers interleaved to
/// produce it, which is also what makes compaction's clean-journal fast
/// path a plain byte comparison.
pub fn encode_image(records: &BTreeMap<u64, JournalRecord>, epoch: u64) -> Vec<u8> {
    let mut bytes = MAGIC.to_vec();
    for record in records.values() {
        bytes.extend_from_slice(&encode_record(
            epoch,
            record.fingerprint,
            &record.label,
            &record.artifact,
        ));
    }
    bytes
}

/// Walk the record framing of a journal image (no checksum or content
/// validation) and return each record's span. Stops at the first torn
/// frame. Corruption-harness support.
pub fn record_spans(bytes: &[u8]) -> Vec<RecordSpan> {
    let mut spans = Vec::new();
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return spans;
    }
    let mut off = MAGIC.len();
    while off < bytes.len() {
        let remaining = bytes.len() - off;
        if remaining < 4 {
            break;
        }
        let len_rest =
            u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
                as usize;
        if len_rest < MIN_RECORD_REST || len_rest > remaining - 4 {
            break;
        }
        let body_start = off + 4;
        let end = body_start + len_rest;
        // Label length sits after version(2) + epoch(8) + fingerprint(8).
        let ll_off = body_start + 18;
        let label_len = u32::from_le_bytes([
            bytes[ll_off],
            bytes[ll_off + 1],
            bytes[ll_off + 2],
            bytes[ll_off + 3],
        ]) as usize;
        let payload_start = (ll_off + 4 + label_len).min(end - 8);
        spans.push(RecordSpan { start: off, body_start, payload_start, payload_end: end - 8, end });
        off = end;
    }
    spans
}

/// Recompute and rewrite the checksum of the record at `span` so that a
/// deliberately mutated field (stale epoch, bad version) is the *only*
/// defect the loader sees. Corruption-harness support.
pub fn reseal_record(bytes: &mut [u8], span: &RecordSpan) {
    let checksum = fnv1a(&bytes[span.body_start..span.payload_end]);
    bytes[span.payload_end..span.end].copy_from_slice(&checksum.to_le_bytes());
}

/// Parse a journal image, verifying every record's checksum, version,
/// and epoch. Corruption becomes typed [`JournalDefect`]s — this
/// function never fails and never panics; in the worst case it returns
/// zero records and one defect per problem found.
pub fn load_bytes(bytes: &[u8], epoch: u64) -> LoadedJournal {
    let mut out = LoadedJournal::default();
    if bytes.is_empty() {
        return out;
    }
    if bytes.len() < MAGIC.len() {
        out.defects.push(JournalDefect {
            kind: JournalDefectKind::TornTail,
            offset: 0,
            detail: "file shorter than the journal header".to_string(),
        });
        return out;
    }
    if bytes[..MAGIC.len()] != MAGIC {
        out.defects.push(JournalDefect {
            kind: JournalDefectKind::BadVersion,
            offset: 0,
            detail: "unrecognized journal magic".to_string(),
        });
        return out;
    }
    let mut off = MAGIC.len();
    while off < bytes.len() {
        let remaining = bytes.len() - off;
        if remaining < 4 {
            out.defects.push(JournalDefect {
                kind: JournalDefectKind::TornTail,
                offset: off,
                detail: format!("torn length prefix ({remaining} trailing byte(s))"),
            });
            return out;
        }
        let len_rest =
            u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
                as usize;
        if len_rest > remaining - 4 {
            out.defects.push(JournalDefect {
                kind: JournalDefectKind::TornTail,
                offset: off,
                detail: format!(
                    "record claims {len_rest} bytes but only {} remain",
                    remaining - 4
                ),
            });
            return out;
        }
        let next = off + 4 + len_rest;
        if len_rest < MIN_RECORD_REST {
            out.defects.push(JournalDefect {
                kind: JournalDefectKind::BadChecksum,
                offset: off,
                detail: format!("record too short to be well-formed ({len_rest} bytes)"),
            });
            off = next;
            continue;
        }
        let body = &bytes[off + 4..next];
        let (content, stored) = body.split_at(len_rest - 8);
        let stored = u64::from_le_bytes([
            stored[0], stored[1], stored[2], stored[3], stored[4], stored[5], stored[6], stored[7],
        ]);
        if fnv1a(content) != stored {
            out.defects.push(JournalDefect {
                kind: JournalDefectKind::BadChecksum,
                offset: off,
                detail: "record checksum mismatch".to_string(),
            });
            off = next;
            continue;
        }
        let mut r = ByteReader::new(content);
        let defect = match parse_record(&mut r, epoch) {
            Ok(record) => {
                if r.is_exhausted() {
                    match out.records.entry(record.fingerprint) {
                        std::collections::btree_map::Entry::Occupied(_) => Some((
                            JournalDefectKind::DuplicateKey,
                            format!(
                                "second record for `{}` (fingerprint {:016x}); first wins",
                                record.label, record.fingerprint
                            ),
                        )),
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            slot.insert(record);
                            None
                        }
                    }
                } else {
                    Some((
                        JournalDefectKind::BadChecksum,
                        "checksummed record carries trailing garbage".to_string(),
                    ))
                }
            }
            Err(defect) => Some(defect),
        };
        if let Some((kind, detail)) = defect {
            out.defects.push(JournalDefect { kind, offset: off, detail });
        }
        off = next;
    }
    out
}

/// Decode the checksummed interior of one record, classifying failures.
fn parse_record(
    r: &mut ByteReader<'_>,
    epoch: u64,
) -> Result<JournalRecord, (JournalDefectKind, String)> {
    let version = r
        .get_u16("record.version")
        .map_err(|e| (JournalDefectKind::BadChecksum, e.to_string()))?;
    if version != RECORD_VERSION {
        return Err((
            JournalDefectKind::BadVersion,
            format!("record version {version}, expected {RECORD_VERSION}"),
        ));
    }
    let rec_epoch = r
        .get_u64("record.epoch")
        .map_err(|e| (JournalDefectKind::BadChecksum, e.to_string()))?;
    if rec_epoch != epoch {
        return Err((
            JournalDefectKind::StaleEpoch,
            format!("record epoch {rec_epoch:016x}, current {epoch:016x}"),
        ));
    }
    let fingerprint = r
        .get_u64("record.fingerprint")
        .map_err(|e| (JournalDefectKind::BadChecksum, e.to_string()))?;
    let label = r
        .get_string("record.label")
        .map_err(|e| (JournalDefectKind::BadChecksum, e.to_string()))?;
    let artifact = RunArtifact::decode_from(r).map_err(|e| {
        (
            JournalDefectKind::BadChecksum,
            format!("checksummed payload failed to decode: {e}"),
        )
    })?;
    Ok(JournalRecord { fingerprint, label, artifact })
}

/// Read and parse the journal file at `path`. A missing file is an
/// empty (clean) journal; an unreadable one is an I/O error.
pub fn load_file(path: &Path, epoch: u64) -> Result<LoadedJournal, JournalError> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(load_bytes(&bytes, epoch)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(LoadedJournal::default()),
        Err(e) => Err(io_err(path, "read", e)),
    }
}

/// Atomically publish `bytes` as the file at `path`: write a temp file
/// in the same directory, fsync it, rename it over the target, and
/// best-effort fsync the directory. Shared by the journal writer,
/// compaction, and the serve protocol files. The temp name is unique
/// per process and call (pid + counter), so two processes publishing
/// the same target — e.g. fleet members racing over a re-adopted
/// request's response — can interleave freely: each rename lands one
/// writer's complete bytes, never a blend.
pub(crate) fn publish_bytes(path: &Path, bytes: &[u8]) -> Result<(), JournalError> {
    static PUBLISH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = PUBLISH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!(
        "journal.{}-{seq}.tmp",
        std::process::id()
    ));
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, "write", e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, "write", e))?;
        f.sync_all().map_err(|e| io_err(&tmp, "fsync", e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, "rename", e))?;
    // Best-effort directory fsync so the rename itself is durable;
    // not all filesystems support it, and the rename's atomicity
    // does not depend on it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The crash-consistent, lock-coordinated journal writer: holds the
/// record set in memory and republishes the canonical image atomically
/// (write temp → fsync → rename) on every append, with the advisory
/// file lock held and a merge-on-reload pass folding in records other
/// processes landed since our last read.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    epoch: u64,
    lock: LockConfig,
    records: BTreeMap<u64, JournalRecord>,
    appended: u64,
}

impl JournalWriter {
    /// Open (and heal) the journal in `dir` as an anonymous session with
    /// the default lock timeout. With `resume`, existing valid records
    /// are kept — the healed canonical image (defective records dropped,
    /// valid ones re-encoded) is republished immediately. Without
    /// `resume`, any existing journal is replaced by an empty one
    /// *unless* another live writer session is registered, in which case
    /// the open joins the in-flight campaign and keeps its records.
    pub fn open(
        dir: &Path,
        epoch: u64,
        resume: bool,
    ) -> Result<(JournalWriter, LoadedJournal), JournalError> {
        JournalWriter::open_with(dir, epoch, resume, &fresh_token(), DEFAULT_LOCK_TIMEOUT, false)
    }

    /// [`JournalWriter::open`] with an explicit session identity: the
    /// whole open — stale-state sweep, campaign-join decision, load, and
    /// canonical republish — happens under one hold of the journal lock,
    /// and with `register` the session lands in the writers registry
    /// *before* the lock is released, so a concurrent opener can never
    /// truncate records this session is about to rely on.
    pub fn open_with(
        dir: &Path,
        epoch: u64,
        resume: bool,
        token: &str,
        lock_timeout: Duration,
        register: bool,
    ) -> Result<(JournalWriter, LoadedJournal), JournalError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create-dir", e))?;
        sweep_lock_debris(dir);
        let lock_config = LockConfig::for_dir(dir, token, epoch).with_timeout(lock_timeout);
        let guard = lock::acquire(&lock_config).map_err(lock_err)?;
        let sessions = Sessions::new(dir);
        sessions.sweep_stale();
        Claims::new(dir).sweep_stale(&sessions);
        if register {
            sessions
                .register(token)
                .map_err(|e| io_err(&dir.join(lock::WRITERS_DIR), "write", e))?;
        }
        let path = dir.join(JOURNAL_FILE);
        // Campaign join: a fresh (non-resume) run may only wipe the
        // journal when nobody else is writing it; with live writers
        // registered, their records are the campaign's shared state.
        let join = !resume && sessions.live_others(token) > 0;
        let loaded =
            if resume || join { load_file(&path, epoch)? } else { LoadedJournal::default() };
        let writer = JournalWriter {
            path,
            epoch,
            lock: lock_config,
            records: loaded.records.clone(),
            appended: 0,
        };
        writer.persist()?;
        drop(guard);
        Ok((writer, loaded))
    }

    /// Append one completed artifact: take the lock, merge-on-reload,
    /// and — if no other process landed this fingerprint meanwhile —
    /// insert the record and republish the canonical image. Returns
    /// whether the record was actually appended (`false` means a
    /// concurrent writer got there first; the journal already holds an
    /// equivalent record). On `Ok(true)` the record is durable.
    pub fn append(
        &mut self,
        fingerprint: u64,
        label: &str,
        artifact: &RunArtifact,
    ) -> Result<bool, JournalError> {
        let _guard = lock::acquire(&self.lock).map_err(lock_err)?;
        self.reload_merge()?;
        if self.records.contains_key(&fingerprint) {
            return Ok(false);
        }
        self.records.insert(
            fingerprint,
            JournalRecord {
                fingerprint,
                label: label.to_string(),
                artifact: artifact.clone(),
            },
        );
        self.persist()?;
        self.appended += 1;
        Ok(true)
    }

    /// Fold in records that appeared on disk since our last read (landed
    /// by another process). Our in-memory records win ties — they are
    /// either identical (deterministic runs) or ours came first. Must be
    /// called with the journal lock held.
    fn reload_merge(&mut self) -> Result<(), JournalError> {
        let on_disk = load_file(&self.path, self.epoch)?;
        for (fingerprint, record) in on_disk.records {
            self.records.entry(fingerprint).or_insert(record);
        }
        Ok(())
    }

    /// The record currently held for `fingerprint`, if any (reflects the
    /// last merge; call under the coordinator for a fresh view).
    pub fn record(&self, fingerprint: u64) -> Option<&JournalRecord> {
        self.records.get(&fingerprint)
    }

    /// Appends performed by this writer (excludes records inherited on
    /// open or merged from other writers) — the crash-harness counter.
    pub fn appends(&self) -> u64 {
        self.appended
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// This writer's lock configuration (session identity included).
    pub fn lock_config(&self) -> &LockConfig {
        &self.lock
    }

    /// Publish the canonical image of the in-memory record set.
    fn persist(&self) -> Result<(), JournalError> {
        publish_bytes(&self.path, &encode_image(&self.records, self.epoch))
    }
}

/// What the coordinator decided about one request.
#[derive(Debug)]
pub enum Gate {
    /// The journal already holds a valid record — use this artifact,
    /// do not execute.
    Reuse(RunArtifact),
    /// The fingerprint is claimed by this session; execute, then
    /// [`JournalSession::commit`] or [`JournalSession::abandon`].
    Execute,
    /// Another live session is executing this fingerprint right now;
    /// poll again shortly.
    Wait,
}

/// The exactly-once execution coordinator for one journaled campaign:
/// wraps the shared [`JournalWriter`] with the claims registry so that
/// concurrent sessions partition a plan dynamically — every fingerprint
/// is executed by exactly one live session and everyone else reuses the
/// committed record.
#[derive(Debug)]
pub struct JournalSession {
    writer: Mutex<JournalWriter>,
    sessions: Sessions,
    claims: Claims,
    token: String,
    crash_after: Option<u64>,
}

impl JournalSession {
    /// Wrap an opened (registered) writer for coordinated execution.
    pub fn new(writer: JournalWriter, dir: &Path, crash_after: Option<u64>) -> JournalSession {
        let token = writer.lock_config().token.clone();
        JournalSession {
            writer: Mutex::new(writer),
            sessions: Sessions::new(dir),
            claims: Claims::new(dir),
            token,
            crash_after,
        }
    }

    /// Gate one request: under the journal lock, merge-on-reload and
    /// check the journal (→ [`Gate::Reuse`]), then the claims registry
    /// (live foreign claim → [`Gate::Wait`]); otherwise claim the
    /// fingerprint for this session (→ [`Gate::Execute`]). A claim whose
    /// session died is taken over here — claiming on top of it.
    pub fn begin(&self, request: &RunRequest) -> Result<Gate, JournalError> {
        let mut writer = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let lock_config = writer.lock_config().clone();
        let _guard = lock::acquire(&lock_config).map_err(lock_err)?;
        writer.reload_merge()?;
        let fingerprint = request.fingerprint();
        if let Some(record) = writer.record(fingerprint) {
            if record.label == request.label() {
                return Ok(Gate::Reuse(record.artifact.clone()));
            }
            // A fingerprint hit whose label disagrees is a key collision
            // (or a tampered record): distrust it and execute ourselves.
        }
        if self.claims.live_by_other(fingerprint, &self.token, &self.sessions) {
            return Ok(Gate::Wait);
        }
        self.claims
            .claim(fingerprint, &self.token)
            .map_err(|e| io_err(&lock_config.path, "write", e))?;
        Ok(Gate::Execute)
    }

    /// Commit one executed artifact: locked append (merge-on-reload
    /// inside), then claim release. Returns whether the record was
    /// actually appended (`false`: a concurrent writer landed an
    /// equivalent record first). The crash harness fires here, *after*
    /// the append is durable and while the writer mutex still serializes
    /// in-process appends — so "crash after N appends" is exact.
    pub fn commit(
        &self,
        request: &RunRequest,
        artifact: &RunArtifact,
    ) -> Result<bool, JournalError> {
        let fingerprint = request.fingerprint();
        let mut writer = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let appended = match writer.append(fingerprint, &request.label(), artifact) {
            Ok(appended) => appended,
            Err(e) => {
                drop(writer);
                self.claims.release(fingerprint);
                return Err(e);
            }
        };
        if appended && self.crash_after.is_some_and(|n| writer.appends() >= n) {
            self.claims.release(fingerprint);
            // The crash harness: die *after* the append is durable,
            // exactly like a power cut between runs.
            eprintln!(
                "journal: deliberate crash after {} append(s) (crash harness)",
                writer.appends()
            );
            std::process::exit(CRASH_EXIT_CODE);
        }
        drop(writer);
        self.claims.release(fingerprint);
        Ok(appended)
    }

    /// Release this session's claim on a request that failed or
    /// panicked, so waiters (and retries) can take it over.
    pub fn abandon(&self, request: &RunRequest) {
        self.claims.release(request.fingerprint());
    }

    /// End the campaign: deregister the writer session (claims are
    /// already released per-request; a crashed session's leftovers are
    /// swept by the next opener).
    pub fn finish(&self) {
        self.sessions.deregister(&self.token);
    }
}

/// Where and how a journaled execution persists its artifacts.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Cache directory holding the journal file.
    pub dir: PathBuf,
    /// Load existing records before executing (otherwise the journal is
    /// rewritten from scratch — unless live concurrent writers are
    /// registered, in which case their campaign is joined).
    pub resume: bool,
    /// The code/config epoch to stamp and verify records with.
    /// [`current_epoch`] outside of tests.
    pub epoch: u64,
    /// How long to wait for the advisory journal lock before failing
    /// with a [`JournalErrorKind::LockTimeout`] error (CLI exit 5).
    pub lock_timeout: Duration,
    /// Crash harness: deliberately exit the process (status
    /// [`CRASH_EXIT_CODE`]) after this many successful appends, leaving
    /// a valid journal prefix behind for `--resume` to pick up.
    pub crash_after_appends: Option<u64>,
}

impl JournalConfig {
    /// Journal into `dir` under the current epoch, no resume.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            resume: false,
            epoch: current_epoch(),
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
            crash_after_appends: None,
        }
    }

    /// Builder-style resume toggle.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Builder-style epoch override (tests and the chaos harness).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Builder-style lock-timeout override.
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// Builder-style crash harness arm.
    pub fn with_crash_after(mut self, appends: u64) -> Self {
        self.crash_after_appends = Some(appends);
        self
    }
}

/// What a journaled execution did: how much of the plan was served from
/// the journal, what had to run, and every defect that was healed.
#[derive(Debug, Clone, Default)]
pub struct ResumeReport {
    /// Requests in the plan.
    pub planned: usize,
    /// Requests satisfied by journal records present at open (not
    /// re-executed).
    pub reused: usize,
    /// Requests this invocation actually executed (each counted once,
    /// however many attempts it took). Across concurrent invocations
    /// sharing a cache, these counts sum to the plan size — the
    /// exactly-once invariant.
    pub executed: usize,
    /// Requests a *concurrent* writer landed while this invocation was
    /// running — reused live instead of executed.
    pub reused_live: usize,
    /// Successful artifacts appended to the journal this invocation.
    pub journaled: usize,
    /// Corruption events detected and healed during load.
    pub defects: Vec<JournalDefect>,
    /// Journal write failures (the runs still succeeded; only their
    /// durability was lost).
    pub write_errors: Vec<String>,
}

/// Render the resume report for stderr: one summary line plus one line
/// per defect and write error.
pub fn render_resume_report(report: &ResumeReport, dir: &Path) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let live = if report.reused_live > 0 {
        format!(", reused {} live from concurrent writer(s)", report.reused_live)
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "journal {}: reused {} of {} planned run(s), executed {}, journaled {}{live}",
        dir.display(),
        report.reused,
        report.planned,
        report.executed,
        report.journaled
    );
    for defect in &report.defects {
        let _ = writeln!(out, "journal defect (healed by recomputation): {defect}");
    }
    for err in &report.write_errors {
        let _ = writeln!(out, "journal write error (run kept, durability lost): {err}");
    }
    out
}

/// Execute `plan` with the real workload runner, journaling every
/// completed artifact into `journal.dir` and (with `journal.resume`)
/// serving already-journaled runs from disk instead of re-executing.
pub fn execute_journaled(
    plan: &Plan,
    jobs: usize,
    config: &SuperviseConfig,
    journal: &JournalConfig,
) -> Result<(ExecutedPlan, ResumeReport), JournalError> {
    let fuel = config.timeout_fuel;
    execute_journaled_with(plan, jobs, config, journal, move |request, attempt| {
        crate::exec::try_run_request(request, deadline_limits(fuel))
            .map_err(|e| classify_guard_failure(e, attempt, fuel.is_some()))
    })
}

/// The journaled-execution core with an injectable per-attempt runner
/// (tests count executions here). Semantics:
///
/// 1. Open the journal under the lock (healing defects; loading records
///    iff `resume` — or iff live concurrent writers are registered, the
///    campaign-join case) and register this session as a writer.
/// 2. Serve every planned request whose `(fingerprint, epoch)` key has a
///    valid record — a *reused* slot with zero duration and 0 attempts.
/// 3. Execute the residual plan under the normal supervisor, gating
///    every run through the [`JournalSession`] coordinator: a record
///    another process landed meanwhile is reused live; a fingerprint a
///    live session has claimed is waited on; everything else is claimed,
///    executed, and committed (durable before the pool moves on).
///    Degraded runs are never journaled; their claims are abandoned so
///    waiters can take over.
/// 4. Return the merged [`ExecutedPlan`] — byte-identical store content
///    to a cold run, whatever mix of reuse and execution produced it.
pub fn execute_journaled_with<F>(
    plan: &Plan,
    jobs: usize,
    config: &SuperviseConfig,
    journal: &JournalConfig,
    run: F,
) -> Result<(ExecutedPlan, ResumeReport), JournalError>
where
    F: Fn(&RunRequest, u32) -> Result<RunArtifact, RunFailure> + Sync,
{
    let started = Instant::now();
    let token = fresh_token();
    let (writer, loaded) = JournalWriter::open_with(
        &journal.dir,
        journal.epoch,
        journal.resume,
        &token,
        journal.lock_timeout,
        true,
    )?;
    let mut report = ResumeReport {
        planned: plan.len(),
        defects: loaded.defects.clone(),
        ..ResumeReport::default()
    };

    // Partition the plan: journal hits are reused, everything else runs.
    let mut reused: Vec<(RunRequest, RunArtifact)> = Vec::new();
    let mut residual: Vec<RunRequest> = Vec::new();
    for request in plan.requests() {
        match loaded.records.get(&request.fingerprint()) {
            Some(record) if record.label == request.label() => {
                reused.push((*request, record.artifact.clone()));
            }
            Some(record) => {
                // A fingerprint hit whose label disagrees is a key
                // collision (or a tampered label): distrust the record.
                report.defects.push(JournalDefect {
                    kind: JournalDefectKind::BadChecksum,
                    offset: 0,
                    detail: format!(
                        "fingerprint {:016x} maps to `{}` in the journal but `{}` in the plan; requeued",
                        request.fingerprint(),
                        record.label,
                        request.label()
                    ),
                });
                residual.push(*request);
            }
            None => residual.push(*request),
        }
    }
    report.reused = reused.len();

    let residual_plan = Plan::build(residual);
    let session = JournalSession::new(writer, &journal.dir, journal.crash_after_appends);
    let executed_fps: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
    let reused_live = AtomicUsize::new(0);
    let journaled = AtomicUsize::new(0);
    let write_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let fatal: Mutex<Option<JournalError>> = Mutex::new(None);
    let note_error = |e: &JournalError| {
        if e.kind == JournalErrorKind::LockTimeout {
            let mut slot = fatal.lock().unwrap_or_else(|p| p.into_inner());
            if slot.is_none() {
                *slot = Some(e.clone());
            }
        }
        write_errors
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(e.to_string());
    };
    let executed = supervise_with(&residual_plan, jobs, config, |request, attempt| {
        // Gate through the coordinator until this request is either
        // served (a concurrent writer landed it) or claimed by us.
        loop {
            match session.begin(request) {
                Ok(Gate::Reuse(artifact)) => {
                    reused_live.fetch_add(1, Ordering::Relaxed);
                    return Ok(artifact);
                }
                Ok(Gate::Wait) => std::thread::sleep(CLAIM_POLL),
                Ok(Gate::Execute) => break,
                Err(e) => {
                    note_error(&e);
                    if e.kind == JournalErrorKind::LockTimeout {
                        return Err(RunFailure::faulted(
                            attempt,
                            format!("journal coordination lost: {e}"),
                        ));
                    }
                    // Degraded coordination: execute unclaimed rather
                    // than losing the run (worst case is a duplicate
                    // execution, never lost data).
                    break;
                }
            }
        }
        executed_fps
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(request.fingerprint());
        // A panicking run must not leave its claim behind — release it,
        // then let the pool's own catch_unwind classify the panic.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(request, attempt)));
        let result = match outcome {
            Ok(result) => result,
            Err(payload) => {
                session.abandon(request);
                std::panic::resume_unwind(payload);
            }
        };
        match &result {
            Ok(artifact) => match session.commit(request, artifact) {
                Ok(true) => {
                    journaled.fetch_add(1, Ordering::Relaxed);
                }
                Ok(false) => {} // a concurrent writer landed it first
                Err(e) => note_error(&e),
            },
            Err(_) => session.abandon(request),
        }
        result
    });
    session.finish();
    if let Some(e) = fatal.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }
    report.executed = executed_fps
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .len();
    report.reused_live = reused_live.load(Ordering::Relaxed);
    report.journaled = journaled.load(Ordering::Relaxed);
    report.write_errors = write_errors.into_inner().unwrap_or_else(|p| p.into_inner());

    // Merge reused and executed slots back into plan order.
    let mut store = executed.store.clone();
    let executed_timings: BTreeMap<RunRequest, RunTiming> =
        executed.timings.iter().map(|t| (t.request, *t)).collect();
    let mut timings = Vec::with_capacity(plan.len());
    for (request, artifact) in reused {
        store.insert(request, artifact);
    }
    for request in plan.requests() {
        match executed_timings.get(request) {
            Some(timing) => timings.push(*timing),
            // A reused slot: no attempts, no time spent.
            None => timings.push(RunTiming {
                request: *request,
                duration: Duration::ZERO,
                attempts: 0,
            }),
        }
    }
    Ok((
        ExecutedPlan {
            store,
            timings,
            wall: started.elapsed(),
            jobs: jobs.clamp(1, plan.len().max(1)),
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{ConsoleDigest, Language, Scale, WorkloadId};

    fn artifact(tag: u64) -> RunArtifact {
        let mut art = RunArtifact::empty();
        art.program_bytes = tag as usize;
        art.console = ConsoleDigest::of(&format!("OK {tag}\n"));
        art
    }

    fn request(i: usize) -> RunRequest {
        let names = ["des", "compress", "eqntott", "espresso", "li"];
        RunRequest::pipeline(WorkloadId::macro_bench(
            Language::Mipsi,
            names[i % names.len()],
            Scale::Test,
        ))
    }

    fn journal_with(n: usize, epoch: u64) -> Vec<u8> {
        let mut bytes = MAGIC.to_vec();
        for i in 0..n {
            let req = request(i);
            bytes.extend_from_slice(&encode_record(
                epoch,
                req.fingerprint(),
                &req.label(),
                &artifact(i as u64 + 1),
            ));
        }
        bytes
    }

    #[test]
    fn clean_journal_round_trips() {
        let bytes = journal_with(3, 7);
        let loaded = load_bytes(&bytes, 7);
        assert!(loaded.defects.is_empty(), "{:?}", loaded.defects);
        assert_eq!(loaded.records.len(), 3);
        for i in 0..3 {
            let rec = &loaded.records[&request(i).fingerprint()];
            assert_eq!(rec.label, request(i).label());
            assert_eq!(rec.artifact.program_bytes, i + 1);
        }
    }

    #[test]
    fn empty_and_header_only_images_are_clean() {
        assert!(load_bytes(&[], 1).defects.is_empty());
        let header = load_bytes(&MAGIC, 1);
        assert!(header.defects.is_empty());
        assert!(header.records.is_empty());
    }

    #[test]
    fn foreign_magic_is_a_bad_version_defect() {
        let loaded = load_bytes(b"NOTAJRNLxxxx", 1);
        assert_eq!(loaded.defects.len(), 1);
        assert_eq!(loaded.defects[0].kind, JournalDefectKind::BadVersion);
        assert!(loaded.records.is_empty());
    }

    #[test]
    fn payload_bit_flip_is_detected_and_isolated() {
        let mut bytes = journal_with(3, 7);
        let spans = record_spans(&bytes);
        assert_eq!(spans.len(), 3);
        // Flip one bit inside record 1's payload.
        bytes[spans[1].payload_start + 3] ^= 0x10;
        let loaded = load_bytes(&bytes, 7);
        assert_eq!(loaded.defects.len(), 1);
        assert_eq!(loaded.defects[0].kind, JournalDefectKind::BadChecksum);
        assert_eq!(loaded.defects[0].offset, spans[1].start);
        // Records 0 and 2 survive.
        assert_eq!(loaded.records.len(), 2);
        assert!(loaded.records.contains_key(&request(0).fingerprint()));
        assert!(loaded.records.contains_key(&request(2).fingerprint()));
    }

    #[test]
    fn stale_epoch_and_bad_version_are_classified_not_checksum_errors() {
        let pristine = journal_with(2, 7);
        let spans = record_spans(&pristine);

        let mut stale = pristine.clone();
        stale[spans[0].body_start + 2..spans[0].body_start + 10]
            .copy_from_slice(&99u64.to_le_bytes());
        reseal_record(&mut stale, &spans[0]);
        let loaded = load_bytes(&stale, 7);
        assert_eq!(loaded.defects.len(), 1);
        assert_eq!(loaded.defects[0].kind, JournalDefectKind::StaleEpoch);
        assert_eq!(loaded.records.len(), 1);

        let mut wrong_version = pristine.clone();
        wrong_version[spans[1].body_start..spans[1].body_start + 2]
            .copy_from_slice(&9u16.to_le_bytes());
        reseal_record(&mut wrong_version, &spans[1]);
        let loaded = load_bytes(&wrong_version, 7);
        assert_eq!(loaded.defects.len(), 1);
        assert_eq!(loaded.defects[0].kind, JournalDefectKind::BadVersion);
        assert_eq!(loaded.records.len(), 1);
    }

    #[test]
    fn duplicate_keys_keep_the_first_record() {
        let mut bytes = journal_with(2, 7);
        let req = request(0);
        bytes.extend_from_slice(&encode_record(
            7,
            req.fingerprint(),
            &req.label(),
            &artifact(99),
        ));
        let loaded = load_bytes(&bytes, 7);
        assert_eq!(loaded.defects.len(), 1);
        assert_eq!(loaded.defects[0].kind, JournalDefectKind::DuplicateKey);
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(
            loaded.records[&req.fingerprint()].artifact.program_bytes,
            1,
            "first record must win"
        );
    }

    #[test]
    fn truncation_mid_final_record_is_one_torn_tail() {
        let bytes = journal_with(3, 7);
        let spans = record_spans(&bytes);
        let cut = spans[2].start + 10;
        let loaded = load_bytes(&bytes[..cut], 7);
        assert_eq!(loaded.defects.len(), 1);
        assert_eq!(loaded.defects[0].kind, JournalDefectKind::TornTail);
        assert_eq!(loaded.records.len(), 2, "only the torn record is lost");
    }

    #[test]
    fn defect_counts_bucket_by_kind() {
        let mut bytes = journal_with(3, 7);
        let spans = record_spans(&bytes);
        bytes[spans[0].payload_start] ^= 0x01;
        bytes[spans[1].payload_start] ^= 0x01;
        let cut = spans[2].start + 6;
        let loaded = load_bytes(&bytes[..cut], 7);
        let counts = loaded.defect_counts();
        assert_eq!(counts.get("bad-checksum"), Some(&2));
        assert_eq!(counts.get("torn-tail"), Some(&1));
        assert_eq!(counts.get("stale-epoch"), None);
    }

    #[test]
    fn writer_heals_defects_on_open() {
        let dir = std::env::temp_dir().join(format!("interp-journal-heal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(JOURNAL_FILE);
        // A journal with two records, the second bit-flipped.
        let mut bytes = journal_with(2, 7);
        let spans = record_spans(&bytes);
        bytes[spans[1].payload_start] ^= 0x01;
        std::fs::write(&path, &bytes).expect("seed journal");

        let (writer, loaded) = JournalWriter::open(&dir, 7, true).expect("open");
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.defects.len(), 1);
        assert_eq!(writer.appends(), 0);
        // The healed image on disk parses cleanly and matches record 0
        // byte-for-byte (the codec is a fixed point).
        let healed = std::fs::read(&path).expect("read healed");
        let reparsed = load_bytes(&healed, 7);
        assert!(reparsed.defects.is_empty());
        assert_eq!(reparsed.records.len(), 1);
        assert_eq!(&healed[8..], &bytes[spans[0].start..spans[0].end]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_resume_open_truncates() {
        let dir =
            std::env::temp_dir().join(format!("interp-journal-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(JOURNAL_FILE);
        std::fs::write(&path, journal_with(2, 7)).expect("seed journal");
        let (_writer, loaded) = JournalWriter::open(&dir, 7, false).expect("open");
        assert!(loaded.records.is_empty());
        let fresh = std::fs::read(&path).expect("read");
        assert_eq!(fresh, MAGIC.to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_resume_open_joins_a_live_campaign() {
        let dir = std::env::temp_dir().join(format!("interp-journal-join-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(JOURNAL_FILE), journal_with(2, 7)).expect("seed journal");
        // A live writer session is registered: a non-resume open must
        // NOT truncate — it joins the campaign and keeps the records.
        Sessions::new(&dir).register("live-writer").expect("register");
        let (writer, loaded) = JournalWriter::open_with(
            &dir,
            7,
            false,
            "joiner",
            Duration::from_secs(5),
            true,
        )
        .expect("open");
        assert_eq!(loaded.records.len(), 2, "campaign join must keep records");
        assert!(writer.record(request(0).fingerprint()).is_some());
        // Both sessions are now registered.
        assert_eq!(Sessions::new(&dir).all().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_merges_concurrent_records_instead_of_losing_them() {
        let dir =
            std::env::temp_dir().join(format!("interp-journal-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let (mut a, _) = JournalWriter::open(&dir, 7, false).expect("open a");
        // Writer B (a second handle on the same journal) lands record 0.
        let (mut b, _) = JournalWriter::open_with(
            &dir,
            7,
            false,
            "writer-b",
            Duration::from_secs(5),
            false,
        )
        .expect("open b");
        assert!(b
            .append(request(0).fingerprint(), &request(0).label(), &artifact(1))
            .expect("append b"));
        // Writer A appends record 1 — the merge-on-reload must fold in
        // B's record 0 rather than overwrite it with A's stale image.
        assert!(a
            .append(request(1).fingerprint(), &request(1).label(), &artifact(2))
            .expect("append a"));
        let loaded = load_file(&dir.join(JOURNAL_FILE), 7).expect("load");
        assert!(loaded.defects.is_empty(), "{:?}", loaded.defects);
        assert_eq!(loaded.records.len(), 2, "concurrent append lost a record");
        // A second append of an already-landed fingerprint is a no-op.
        assert!(!a
            .append(request(0).fingerprint(), &request(0).label(), &artifact(9))
            .expect("duplicate append"));
        assert_eq!(a.appends(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_image_is_canonical_across_append_orders() {
        let base = std::env::temp_dir().join(format!(
            "interp-journal-canon-{}",
            std::process::id()
        ));
        let mut images = Vec::new();
        for (tag, order) in [("fwd", [0usize, 1, 2]), ("rev", [2, 1, 0])] {
            let dir = base.join(tag);
            let _ = std::fs::remove_dir_all(&dir);
            let (mut w, _) = JournalWriter::open(&dir, 7, false).expect("open");
            for i in order {
                w.append(request(i).fingerprint(), &request(i).label(), &artifact(i as u64 + 1))
                    .expect("append");
            }
            images.push(std::fs::read(dir.join(JOURNAL_FILE)).expect("read"));
        }
        assert_eq!(
            images[0], images[1],
            "canonical image must not depend on append order"
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn resume_report_renders_summary_and_defects() {
        let report = ResumeReport {
            planned: 10,
            reused: 6,
            executed: 4,
            reused_live: 0,
            journaled: 4,
            defects: vec![JournalDefect {
                kind: JournalDefectKind::TornTail,
                offset: 42,
                detail: "test tear".to_string(),
            }],
            write_errors: vec!["disk full".to_string()],
        };
        let text = render_resume_report(&report, Path::new("/tmp/cache"));
        assert!(text.contains("reused 6 of 10"), "{text}");
        assert!(text.contains("torn-tail @byte 42"), "{text}");
        assert!(text.contains("disk full"), "{text}");
        assert!(!text.contains("live from concurrent"), "{text}");

        let live = ResumeReport { reused_live: 3, ..report };
        let text = render_resume_report(&live, Path::new("/tmp/cache"));
        assert!(text.contains("reused 3 live from concurrent writer(s)"), "{text}");
    }
}
