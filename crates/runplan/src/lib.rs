//! The run-plan engine: one place where every experiment's workload runs
//! are declared, deduplicated, executed in parallel, and memoized.
//!
//! Experiments declare the [`RunRequest`]s they need (a typed
//! [`interp_core::WorkloadId`] plus a [`interp_core::SinkKind`]); the
//! planner builds a [`Plan`] that executes each distinct request exactly
//! once — dropping duplicates across experiments and *subsuming*
//! counting-only requests under pipeline-timing requests for the same
//! workload (a timing run produces a strict superset of a counting run's
//! artifact). The [`pool`] executes the plan on a `std::thread::scope`
//! worker pool with deterministic result ordering, and the resulting
//! [`ArtifactStore`] hands each experiment its [`interp_core::RunArtifact`]s.
//!
//! ```text
//!  table1 ─┐ requests                      ┌────────────┐   artifacts
//!  table2 ─┤    │     ┌──────────┐  plan   │ worker pool │──────┐
//!  figures ─┼────┼────►│ dedup +  │────────►│ (N scoped   │      ▼
//!  memmodel─┤    │     │ subsume  │         │  threads)   │  ArtifactStore
//!  fig3/4 ──┤    │     └──────────┘         └────────────┘      │
//!  ablations┘    │         sorted, deterministic order          ▼
//!                │                                    table renderers
//! ```
//!
//! Determinism: a [`Plan`]'s request order is a pure function of the
//! request set, artifacts land in plan order regardless of which worker
//! finished first, and every workload run is itself deterministic — so
//! `--jobs 1` and `--jobs 8` produce byte-identical tables.
//!
//! Supervision: the pool isolates each slot behind `catch_unwind`,
//! bounds attempts with fuel/wall-clock deadlines, retries transient
//! failures in deterministic plan-order rounds ([`SuperviseConfig`]),
//! and records whatever still fails as a typed [`RunFailure`] slot that
//! renderers degrade (`DEGRADED(<kind>)`) instead of crashing — one
//! wedged or panicking run can no longer cost the other 78. The
//! [`chaos`] module proves it by injecting seeded faults into both the
//! guests and the pool itself.
//!
//! Persistence: the [`journal`] module makes executions crash-safe.
//! Every completed artifact is appended to a checksummed on-disk journal
//! (atomic write-temp → fsync → rename), keyed by a stable
//! [`RunRequest::fingerprint`] plus the code/config epoch
//! ([`fingerprint`]); a resumed plan serves journaled runs from disk and
//! executes only the residue, while any corruption — torn tail, bit
//! flip, stale epoch, format drift, duplicate key — is detected,
//! classified as a typed [`JournalDefect`], reported, and healed by
//! requeuing the affected runs. Resumed output is byte-identical to a
//! cold run at any job count.
//!
//! Coordination: the [`lock`] module makes the cache safe to *share*.
//! Every journal republish happens under an advisory file lock (atomic
//! hard-link acquisition, stale-lock takeover from dead holders) with a
//! merge-on-reload pass folding in records concurrent processes landed;
//! a per-fingerprint claims registry gives N concurrent invocations
//! exactly-once execution over one cooperatively-filled cache. The
//! [`compact`] module rewrites a corrupted or bloated journal down to
//! its canonical image under the same lock, and [`status`] snapshots a
//! cache (records, defects, lock holder, writers, claims) read-only.

pub mod chaos;
pub mod compact;
pub mod exec;
pub mod fingerprint;
pub mod fleet;
pub mod journal;
pub mod lock;
pub mod plan;
pub mod pool;
pub mod serve;
pub mod status;
pub mod store;
pub mod supervise;

pub use chaos::{chaos_execute, render_chaos_summary, with_quiet_injected_panics, ChaosLane};
pub use compact::{compact, compact_with, CompactReport};
pub use exec::{run_request, try_run_request};
pub use fleet::{
    fleet_members, live_member, sweep_dead_members, FleetMemberInfo, FleetMembership,
    DEFAULT_MEMBER_STALE, FLEET_DIR,
};
pub use fingerprint::{current_epoch, journal_key};
pub use journal::{
    execute_journaled, execute_journaled_with, load_bytes, load_file, render_resume_report,
    Gate, JournalConfig, JournalDefect, JournalDefectKind, JournalError, JournalErrorKind,
    JournalSession, JournalWriter, LoadedJournal, ResumeReport, DEFAULT_CACHE_DIR,
};
pub use lock::{
    acquire, fresh_token, parse_field, pid_alive, probe, Claims, LockConfig, LockError,
    LockErrorKind, LockGuard, LockStatus, SessionInfo, Sessions, DEFAULT_LOCK_TIMEOUT,
};
pub use serve::{
    deadline_in, parse_request, parse_response, request_stop, serve, serve_status, submit,
    wait, withdraw_stop, PlanService, Reject, RejectKind, ServeAccounting, ServeConfig, ServeError,
    ServeOutcome, ServeReport, ServeRequest, ServeResponse, ServeStatus, WaitOutcome,
    DEFAULT_SERVE_POLL, DEFAULT_SERVE_QUEUE,
};
pub use status::{cache_status, render_cache_status, CacheStatus};
pub use plan::Plan;
pub use pool::{
    default_jobs, execute, execute_supervised, execute_with, render_failures, render_timings,
    run_concurrently, supervise_with, ExecutedPlan, RunTiming,
};
pub use store::{ArtifactStore, ResolveError};
pub use supervise::{backoff_delay, FailureKind, RunFailure, SuperviseConfig};

use interp_core::RunRequest;

/// Plan and execute `requests` in one call: dedup, subsume, run on
/// `jobs` workers, and return the executed plan with its artifact store
/// and per-run timings.
pub fn run_all(requests: impl IntoIterator<Item = RunRequest>, jobs: usize) -> ExecutedPlan {
    execute(&Plan::build(requests), jobs)
}
