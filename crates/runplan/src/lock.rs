//! Multi-process coordination primitives for a shared cache directory:
//! the advisory journal lock, the writer-session registry, and
//! per-fingerprint execution claims.
//!
//! # Lock protocol
//!
//! The lock is a file (`journal.lock`) whose *existence* is the lock and
//! whose content names the holder (`pid`, session `token`, `epoch`).
//! Acquisition is write-temp + atomic publish: the content is written to
//! a per-session temp file first, then `hard_link`ed to the lock path —
//! link creation is atomic and fails if the lock exists, and because the
//! content is in place *before* the link, no other process can ever
//! observe a half-written lock file.
//!
//! # Stale-lock recovery
//!
//! A holder that dies without releasing leaves the lock file behind. A
//! contender that finds the holder's PID dead (or the content
//! unparseable) *steals* the lock by atomically renaming it to a
//! per-contender grave name: exactly one rename succeeds, so exactly one
//! contender performs the takeover, and everyone — winner included —
//! simply re-enters the normal acquisition loop. A live holder is never
//! stolen from; contenders wait until [`LockConfig::timeout`] and then
//! fail with [`LockErrorKind::Timeout`].
//!
//! # Sessions and claims
//!
//! Cooperating journaled executions each register a *session* — a file
//! in `writers/` named by a unique token and holding the PID — so a
//! non-resume opener can tell a live concurrent campaign from a dead
//! cache, and `repro status` can show who is active. While executing,
//! a session *claims* each fingerprint it is about to run (a file in
//! `claims/`, created under the journal lock), so concurrent processes
//! partition the plan dynamically with exactly-once execution: a
//! fingerprint claimed by a live session is waited on, not re-run, and
//! a claim whose session died is simply taken over. All claim and
//! registry mutations happen while holding the journal lock, so plain
//! files suffice.

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// File name of the advisory lock inside a cache directory.
pub const LOCK_FILE: &str = "journal.lock";

/// Directory (inside the cache dir) holding one file per live
/// writer session.
pub const WRITERS_DIR: &str = "writers";

/// Directory (inside the cache dir) holding one file per in-flight
/// execution claim.
pub const CLAIMS_DIR: &str = "claims";

/// Default patience for lock acquisition before giving up.
pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// How often a blocked contender re-examines the lock.
const LOCK_POLL: Duration = Duration::from_millis(5);

/// Why a lock operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockErrorKind {
    /// A live holder kept the lock past [`LockConfig::timeout`].
    Timeout,
    /// The underlying filesystem operation failed.
    Io,
}

/// A failed lock operation: what kind, where, and why.
#[derive(Debug, Clone)]
pub struct LockError {
    /// Timeout vs. I/O.
    pub kind: LockErrorKind,
    /// The lock file path.
    pub path: PathBuf,
    /// Human-readable cause (for a timeout, includes the holder).
    pub detail: String,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            LockErrorKind::Timeout => "lock timeout",
            LockErrorKind::Io => "lock I/O failure",
        };
        write!(f, "{what} on {}: {}", self.path.display(), self.detail)
    }
}

impl std::error::Error for LockError {}

/// How to acquire the journal lock: where it lives, who we are, and how
/// long to wait for a live holder.
#[derive(Debug, Clone)]
pub struct LockConfig {
    /// The lock file path (`<cache>/journal.lock`).
    pub path: PathBuf,
    /// Unique session token written into the lock (release checks it, so
    /// a stolen lock is never removed by its previous owner).
    pub token: String,
    /// The code/config epoch, recorded for `repro status`.
    pub epoch: u64,
    /// How long to wait on a live holder before failing with
    /// [`LockErrorKind::Timeout`].
    pub timeout: Duration,
}

impl LockConfig {
    /// Lock configuration for the journal in `dir` held by session
    /// `token` under `epoch`, with the default timeout.
    pub fn for_dir(dir: &Path, token: &str, epoch: u64) -> LockConfig {
        LockConfig {
            path: dir.join(LOCK_FILE),
            token: token.to_string(),
            epoch,
            timeout: DEFAULT_LOCK_TIMEOUT,
        }
    }

    /// Builder-style timeout override.
    pub fn with_timeout(mut self, timeout: Duration) -> LockConfig {
        self.timeout = timeout;
        self
    }
}

/// Holding the journal lock. Dropping the guard releases it (removal is
/// conditional on the lock still carrying our token, so a guard that
/// outlived a steal is a no-op).
#[derive(Debug)]
pub struct LockGuard {
    path: PathBuf,
    token: String,
    released: bool,
}

impl LockGuard {
    fn release_inner(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        if let Ok(content) = std::fs::read_to_string(&self.path) {
            if parse_field(&content, "token") == Some(self.token.as_str()) {
                let _ = std::fs::remove_file(&self.path);
            }
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        self.release_inner();
    }
}

static SESSION_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A process-unique session token: PID, a process-global counter, and a
/// sub-second clock component, so concurrent sessions *within* one
/// process (tests, future `repro serve`) are distinct identities too.
pub fn fresh_token() -> String {
    let n = SESSION_COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos());
    format!("{}-{n}-{nanos:08x}", std::process::id())
}

/// Best-effort same-host liveness: a PID is alive if its procfs entry
/// exists. Our own PID is always alive; PID 0 never is. On platforms
/// without procfs this is conservative (assumes alive), so stale state
/// is only ever *kept*, never wrongly stolen.
pub fn pid_alive(pid: u32) -> bool {
    if pid == 0 {
        return false;
    }
    if pid == std::process::id() {
        return true;
    }
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Parse `key value` lines of a lock/registry/claim/heartbeat file —
/// the one line-oriented metadata format every serve/lock state file
/// shares.
pub fn parse_field<'a>(content: &'a str, key: &str) -> Option<&'a str> {
    content.lines().find_map(|line| {
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(str::trim)
    })
}

/// The holder PID recorded in a lock file, if parseable.
pub fn holder_pid(content: &str) -> Option<u32> {
    parse_field(content, "pid").and_then(|v| v.parse().ok())
}

/// The holder token recorded in a lock file, if present.
pub fn holder_token(content: &str) -> Option<&str> {
    parse_field(content, "token")
}

fn io_lock_err(path: &Path, detail: impl fmt::Display) -> LockError {
    LockError {
        kind: LockErrorKind::Io,
        path: path.to_path_buf(),
        detail: detail.to_string(),
    }
}

/// Acquire the journal lock described by `config`, waiting on a live
/// holder up to `config.timeout` and stealing from a dead one.
pub fn acquire(config: &LockConfig) -> Result<LockGuard, LockError> {
    let deadline = Instant::now() + config.timeout;
    let mut last_holder = String::new();
    loop {
        match try_acquire(config)? {
            Some(guard) => return Ok(guard),
            None => {
                if let Ok(content) = std::fs::read_to_string(&config.path) {
                    last_holder = content.trim().replace('\n', ", ");
                }
                if Instant::now() >= deadline {
                    return Err(LockError {
                        kind: LockErrorKind::Timeout,
                        path: config.path.clone(),
                        detail: format!(
                            "held past the {:?} timeout by a live process ({last_holder})",
                            config.timeout
                        ),
                    });
                }
                std::thread::sleep(LOCK_POLL);
            }
        }
    }
}

/// One acquisition attempt: `Ok(Some)` on success, `Ok(None)` when a
/// live holder has it (caller waits and retries), `Err` on I/O failure.
/// A dead holder is stolen here; the caller retries either way.
fn try_acquire(config: &LockConfig) -> Result<Option<LockGuard>, LockError> {
    let tmp = temp_path(config);
    {
        let mut f =
            std::fs::File::create(&tmp).map_err(|e| io_lock_err(&tmp, e))?;
        let content = format!(
            "pid {}\ntoken {}\nepoch {:016x}\n",
            std::process::id(),
            config.token,
            config.epoch
        );
        f.write_all(content.as_bytes())
            .map_err(|e| io_lock_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_lock_err(&tmp, e))?;
    }
    // Atomic publish: link only succeeds if no lock exists, and the
    // linked content is already durable — no observable half-state.
    let linked = std::fs::hard_link(&tmp, &config.path);
    let _ = std::fs::remove_file(&tmp);
    match linked {
        Ok(()) => Ok(Some(LockGuard {
            path: config.path.clone(),
            token: config.token.clone(),
            released: false,
        })),
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            let content = std::fs::read_to_string(&config.path).unwrap_or_default();
            match holder_pid(&content) {
                Some(pid) if pid_alive(pid) => Ok(None),
                // Dead or unparseable holder: steal, then retry the
                // normal path (someone else may beat us to the link).
                _ => {
                    steal(&config.path);
                    Ok(None)
                }
            }
        }
        Err(e) => Err(io_lock_err(&config.path, e)),
    }
}

/// Per-session temp file used for atomic lock publication.
fn temp_path(config: &LockConfig) -> PathBuf {
    config
        .path
        .with_file_name(format!("{LOCK_FILE}.tmp-{}", config.token))
}

/// Atomically retire a stale lock: rename it to a per-stealer grave name
/// — exactly one concurrent stealer's rename can succeed — then delete
/// the grave. Losers see `NotFound` and simply retry acquisition.
fn steal(path: &Path) {
    let grave = path.with_file_name(format!(
        "{LOCK_FILE}.stale-{}-{}",
        std::process::id(),
        SESSION_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    if std::fs::rename(path, &grave).is_ok() {
        let _ = std::fs::remove_file(&grave);
    }
}

/// Remove leftover lock temp/grave files whose owning process is dead —
/// debris from a crash between steps of acquisition or takeover.
pub fn sweep_lock_debris(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_debris = name
            .strip_prefix(LOCK_FILE)
            .is_some_and(|rest| rest.starts_with(".tmp-") || rest.starts_with(".stale-"));
        if !is_debris {
            continue;
        }
        // Owner PID leads the token suffix (`<pid>-...`).
        let owner = name
            .rsplit_once('-')
            .map(|_| name)
            .and_then(|n| n.split(['-']).find_map(|part| part.parse::<u32>().ok()));
        if owner.is_none_or(|pid| !pid_alive(pid)) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// One live (or stale) writer session as recorded in `writers/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// The session token (the registry file name).
    pub token: String,
    /// The recorded PID.
    pub pid: u32,
    /// Whether the PID is currently alive.
    pub live: bool,
}

/// The writer-session registry: one file per journaled execution, named
/// by its token, holding its PID. All mutations happen under the journal
/// lock.
#[derive(Debug, Clone)]
pub struct Sessions {
    dir: PathBuf,
}

impl Sessions {
    /// The registry inside `cache_dir` (the directory is created on
    /// first registration).
    pub fn new(cache_dir: &Path) -> Sessions {
        Sessions { dir: cache_dir.join(WRITERS_DIR) }
    }

    /// Register `token` as a live writer session.
    pub fn register(&self, token: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        std::fs::write(
            self.dir.join(token),
            format!("pid {}\n", std::process::id()),
        )
    }

    /// Remove `token`'s registration (end of session; best-effort).
    pub fn deregister(&self, token: &str) {
        let _ = std::fs::remove_file(self.dir.join(token));
    }

    /// Every recorded session, live or stale.
    pub fn all(&self) -> Vec<SessionInfo> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut sessions: Vec<SessionInfo> = entries
            .flatten()
            .filter_map(|entry| {
                let token = entry.file_name().to_str()?.to_string();
                let content = std::fs::read_to_string(entry.path()).unwrap_or_default();
                let pid = holder_pid(&content).unwrap_or(0);
                Some(SessionInfo { token, pid, live: pid_alive(pid) })
            })
            .collect();
        sessions.sort_by(|a, b| a.token.cmp(&b.token));
        sessions
    }

    /// Count of live sessions other than `token`.
    pub fn live_others(&self, token: &str) -> usize {
        self.all()
            .iter()
            .filter(|s| s.live && s.token != token)
            .count()
    }

    /// True if `token` is registered and its PID is alive.
    pub fn is_live(&self, token: &str) -> bool {
        let content = std::fs::read_to_string(self.dir.join(token)).unwrap_or_default();
        holder_pid(&content).is_some_and(pid_alive)
    }

    /// Remove registrations whose PID is dead (crash leftovers).
    pub fn sweep_stale(&self) {
        for session in self.all() {
            if !session.live {
                let _ = std::fs::remove_file(self.dir.join(&session.token));
            }
        }
    }
}

/// Per-fingerprint execution claims: `claims/<fingerprint:016x>` holds
/// the claiming session's token and PID. Created and inspected only
/// while holding the journal lock; removed on commit or abandonment.
#[derive(Debug, Clone)]
pub struct Claims {
    dir: PathBuf,
}

impl Claims {
    /// The claims directory inside `cache_dir` (created on first claim).
    pub fn new(cache_dir: &Path) -> Claims {
        Claims { dir: cache_dir.join(CLAIMS_DIR) }
    }

    fn path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}"))
    }

    /// Record that session `token` is about to execute `fingerprint`.
    pub fn claim(&self, fingerprint: u64, token: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        std::fs::write(
            self.path(fingerprint),
            format!("pid {}\ntoken {token}\n", std::process::id()),
        )
    }

    /// Drop the claim on `fingerprint` (commit or abandonment).
    pub fn release(&self, fingerprint: u64) {
        let _ = std::fs::remove_file(self.path(fingerprint));
    }

    /// The claiming session's token, if any claim is on file.
    pub fn holder(&self, fingerprint: u64) -> Option<String> {
        let content = std::fs::read_to_string(self.path(fingerprint)).ok()?;
        holder_token(&content).map(str::to_string)
    }

    /// True if `fingerprint` is claimed by a session other than
    /// `my_token` that is still alive (registered with a live PID). A
    /// claim whose session died is *not* live — the caller takes it
    /// over by claiming on top of it.
    pub fn live_by_other(&self, fingerprint: u64, my_token: &str, sessions: &Sessions) -> bool {
        match self.holder(fingerprint) {
            Some(token) => token != my_token && sessions.is_live(&token),
            None => false,
        }
    }

    /// In-flight claims on file (live and stale) — `repro status`.
    pub fn count(&self) -> usize {
        std::fs::read_dir(&self.dir).map_or(0, |entries| entries.flatten().count())
    }

    /// Remove claims whose session is no longer live.
    pub fn sweep_stale(&self, sessions: &Sessions) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let content = std::fs::read_to_string(entry.path()).unwrap_or_default();
            let live = holder_token(&content).is_some_and(|t| sessions.is_live(t));
            if !live {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// The lock's current state as `repro status` reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockStatus {
    /// No lock file on disk.
    Free,
    /// A lock file exists; holder details and liveness attached.
    Held {
        /// Recorded holder PID (0 if unparseable).
        pid: u32,
        /// Recorded holder token (empty if unparseable).
        token: String,
        /// Whether the holder PID is alive (a dead holder means the
        /// next acquisition will steal the lock).
        live: bool,
    },
}

/// Inspect the lock in `dir` without touching it.
pub fn probe(dir: &Path) -> LockStatus {
    match std::fs::read_to_string(dir.join(LOCK_FILE)) {
        Err(_) => LockStatus::Free,
        Ok(content) => {
            let pid = holder_pid(&content).unwrap_or(0);
            LockStatus::Held {
                pid,
                token: holder_token(&content).unwrap_or("").to_string(),
                live: pid_alive(pid),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "interp-lock-test-{tag}-{}-{}",
            std::process::id(),
            SESSION_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    /// A PID far above any real pid_max, guaranteed dead.
    const DEAD_PID: u32 = 4_000_000_000;

    fn config(dir: &Path, token: &str) -> LockConfig {
        LockConfig::for_dir(dir, token, 7).with_timeout(Duration::from_secs(5))
    }

    #[test]
    fn acquire_release_round_trips() {
        let dir = fresh_dir("basic");
        let guard = acquire(&config(&dir, "a")).expect("acquire");
        assert!(dir.join(LOCK_FILE).exists());
        match probe(&dir) {
            LockStatus::Held { pid, token, live } => {
                assert_eq!(pid, std::process::id());
                assert_eq!(token, "a");
                assert!(live);
            }
            other => panic!("expected Held, got {other:?}"),
        }
        drop(guard);
        assert!(!dir.join(LOCK_FILE).exists(), "release must remove the lock");
        assert_eq!(probe(&dir), LockStatus::Free);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_holder_times_out_contender() {
        let dir = fresh_dir("timeout");
        let _held = acquire(&config(&dir, "holder")).expect("acquire");
        let contender = config(&dir, "contender").with_timeout(Duration::from_millis(50));
        let err = acquire(&contender).expect_err("must time out");
        assert_eq!(err.kind, LockErrorKind::Timeout);
        assert!(err.detail.contains("holder"), "{}", err.detail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn contender_acquires_after_release() {
        let dir = fresh_dir("contend");
        let guard = acquire(&config(&dir, "first")).expect("acquire");
        let dir2 = dir.clone();
        let waiter = std::thread::spawn(move || acquire(&config(&dir2, "second")));
        std::thread::sleep(Duration::from_millis(40));
        drop(guard);
        let second = waiter.join().expect("join").expect("second acquire");
        drop(second);
        assert_eq!(probe(&dir), LockStatus::Free);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_holder_is_stolen() {
        let dir = fresh_dir("stale");
        std::fs::write(
            dir.join(LOCK_FILE),
            format!("pid {DEAD_PID}\ntoken ghost\nepoch 0000000000000007\n"),
        )
        .expect("plant stale lock");
        let started = Instant::now();
        let guard = acquire(&config(&dir, "taker")).expect("steal stale lock");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "takeover must not wait for the timeout"
        );
        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparseable_lock_is_stolen() {
        let dir = fresh_dir("garbage");
        std::fs::write(dir.join(LOCK_FILE), b"not a lock file").expect("plant");
        let guard = acquire(&config(&dir, "taker")).expect("steal garbage lock");
        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn takeover_race_admits_one_holder_at_a_time() {
        let dir = fresh_dir("race");
        std::fs::write(
            dir.join(LOCK_FILE),
            format!("pid {DEAD_PID}\ntoken ghost\n"),
        )
        .expect("plant");
        let inside = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for i in 0..4 {
            let dir = dir.clone();
            let inside = Arc::clone(&inside);
            handles.push(std::thread::spawn(move || {
                let guard = acquire(&config(&dir, &format!("racer-{i}"))).expect("acquire");
                assert!(
                    !inside.swap(true, Ordering::SeqCst),
                    "two racers held the lock at once"
                );
                std::thread::sleep(Duration::from_millis(5));
                inside.store(false, Ordering::SeqCst);
                drop(guard);
            }));
        }
        for h in handles {
            h.join().expect("racer");
        }
        assert_eq!(probe(&dir), LockStatus::Free);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stolen_guard_does_not_remove_new_holder() {
        let dir = fresh_dir("stolen-guard");
        let cfg = config(&dir, "victim");
        let guard = acquire(&cfg).expect("acquire");
        // Simulate a steal: replace the lock with another session's.
        std::fs::write(
            dir.join(LOCK_FILE),
            format!("pid {}\ntoken thief\n", std::process::id()),
        )
        .expect("overwrite");
        drop(guard); // must NOT remove the thief's lock
        match probe(&dir) {
            LockStatus::Held { token, .. } => assert_eq!(token, "thief"),
            other => panic!("thief's lock vanished: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sessions_register_sweep_and_count() {
        let dir = fresh_dir("sessions");
        let sessions = Sessions::new(&dir);
        sessions.register("alive-1").expect("register");
        // Plant a stale session by rewriting the PID to a dead one.
        sessions.register("stale-1").expect("register");
        std::fs::write(
            dir.join(WRITERS_DIR).join("stale-1"),
            format!("pid {DEAD_PID}\n"),
        )
        .expect("stale");
        assert_eq!(sessions.all().len(), 2);
        assert!(sessions.is_live("alive-1"));
        assert!(!sessions.is_live("stale-1"));
        assert_eq!(sessions.live_others("alive-1"), 0);
        assert_eq!(sessions.live_others("someone-else"), 1);
        sessions.sweep_stale();
        assert_eq!(sessions.all().len(), 1);
        sessions.deregister("alive-1");
        assert!(sessions.all().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claims_track_liveness_through_sessions() {
        let dir = fresh_dir("claims");
        let sessions = Sessions::new(&dir);
        let claims = Claims::new(&dir);
        sessions.register("worker").expect("register");
        claims.claim(0xABCD, "worker").expect("claim");
        assert_eq!(claims.holder(0xABCD).as_deref(), Some("worker"));
        assert!(claims.live_by_other(0xABCD, "other", &sessions));
        assert!(!claims.live_by_other(0xABCD, "worker", &sessions), "own claim is not an obstacle");
        assert_eq!(claims.count(), 1);

        // Session dies: the claim goes stale and sweeps away.
        sessions.deregister("worker");
        assert!(!claims.live_by_other(0xABCD, "other", &sessions));
        claims.sweep_stale(&sessions);
        assert_eq!(claims.count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_debris_is_swept_when_owner_dead() {
        let dir = fresh_dir("debris");
        let dead_tmp = dir.join(format!("{LOCK_FILE}.tmp-{DEAD_PID}-0-00"));
        let live_tmp = dir.join(format!("{LOCK_FILE}.tmp-{}-0-00", std::process::id()));
        std::fs::write(&dead_tmp, b"x").expect("write");
        std::fs::write(&live_tmp, b"x").expect("write");
        sweep_lock_debris(&dir);
        assert!(!dead_tmp.exists(), "dead owner's debris must be swept");
        assert!(live_tmp.exists(), "live owner's temp must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
