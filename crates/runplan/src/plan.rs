//! The planner: turn every experiment's request list into a minimal,
//! deterministically-ordered set of runs.

use interp_core::RunRequest;
use std::collections::BTreeSet;

/// A deduplicated, deterministically-ordered set of [`RunRequest`]s.
///
/// Two normalizations happen at build time:
///
/// 1. **Dedup** — the same request from several experiments (table2 and
///    fig3 both want `pipeline:mipsi/des`) executes once.
/// 2. **Subsumption** — a counting request whose pipeline twin is also
///    planned is dropped; the pipeline artifact carries everything the
///    counting artifact would (the sink never feeds back into the
///    counters), and [`crate::ArtifactStore::get`] resolves the counting
///    lookup to the pipeline artifact.
///
/// Request order is the `Ord` order of [`RunRequest`] — a pure function
/// of the request *set*, independent of arrival order and job count.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    requests: Vec<RunRequest>,
}

impl Plan {
    /// Build a plan from raw requests (duplicates welcome).
    pub fn build(requests: impl IntoIterator<Item = RunRequest>) -> Plan {
        let set: BTreeSet<RunRequest> = requests.into_iter().collect();
        let requests = set
            .iter()
            .filter(|req| {
                req.subsumed_by()
                    .is_none_or(|stronger| !set.contains(&stronger))
            })
            .copied()
            .collect();
        Plan { requests }
    }

    /// The planned requests, in execution (= deterministic) order.
    pub fn requests(&self) -> &[RunRequest] {
        &self.requests
    }

    /// Number of runs the plan will execute.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if nothing needs to run.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{Language, RunRequest, Scale, SinkKind, WorkloadId};

    fn id(name: &'static str) -> WorkloadId {
        WorkloadId::macro_bench(Language::Mipsi, name, Scale::Test)
    }

    #[test]
    fn duplicates_collapse() {
        let plan = Plan::build(vec![
            RunRequest::pipeline(id("des")),
            RunRequest::pipeline(id("des")),
            RunRequest::pipeline(id("des")),
        ]);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn counting_subsumed_by_planned_pipeline() {
        let plan = Plan::build(vec![
            RunRequest::counting(id("des")),
            RunRequest::pipeline(id("des")),
        ]);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.requests()[0].sink, SinkKind::Pipeline);
    }

    #[test]
    fn lone_counting_requests_survive() {
        let plan = Plan::build(vec![RunRequest::counting(id("des"))]);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.requests()[0].sink, SinkKind::Counting);
    }

    #[test]
    fn sweep_requests_are_never_subsumed() {
        let plan = Plan::build(vec![
            RunRequest::new(id("des"), SinkKind::ICacheSweep),
            RunRequest::pipeline(id("des")),
        ]);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn order_is_independent_of_arrival() {
        let a = vec![
            RunRequest::pipeline(id("li")),
            RunRequest::counting(id("des")),
            RunRequest::pipeline(id("compress")),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(Plan::build(a).requests(), Plan::build(b).requests());
    }
}
