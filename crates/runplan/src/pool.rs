//! The worker pool: execute a [`Plan`] on `std::thread::scope` threads
//! (no external dependencies) with deterministic result ordering and
//! per-run timing.

use crate::plan::Plan;
use crate::store::ArtifactStore;
use interp_core::{RunArtifact, RunRequest};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long one planned run took.
#[derive(Debug, Clone, Copy)]
pub struct RunTiming {
    /// The executed request.
    pub request: RunRequest,
    /// Wall-clock duration of the run on its worker.
    pub duration: Duration,
}

/// The result of executing a [`Plan`]: the artifact store plus the
/// timing report that makes the parallel speedup visible.
#[derive(Debug, Clone)]
pub struct ExecutedPlan {
    /// Memoized artifacts, one per planned request.
    pub store: ArtifactStore,
    /// Per-run timings in plan order.
    pub timings: Vec<RunTiming>,
    /// Wall-clock time for the whole plan.
    pub wall: Duration,
    /// Worker threads used.
    pub jobs: usize,
}

impl ExecutedPlan {
    /// Sum of per-run durations — the serial cost the pool amortized.
    pub fn cpu_time(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }
}

/// Worker count to use when the user does not say: the machine's
/// available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Execute `plan` with the real workload runner on `jobs` workers.
pub fn execute(plan: &Plan, jobs: usize) -> ExecutedPlan {
    execute_with(plan, jobs, crate::exec::run_request)
}

/// Execute `plan` on `jobs` workers with a custom request runner (tests
/// inject probes here to count executions).
///
/// Workers claim requests from a shared cursor, so long runs do not
/// convoy behind short ones; artifacts land in *plan order* regardless
/// of completion order, keeping every downstream rendering byte-stable
/// across job counts.
pub fn execute_with<F>(plan: &Plan, jobs: usize, run: F) -> ExecutedPlan
where
    F: Fn(&RunRequest) -> RunArtifact + Sync,
{
    let requests = plan.requests();
    let n = requests.len();
    let jobs = jobs.clamp(1, n.max(1));
    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(RunArtifact, Duration)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let begun = Instant::now();
                let artifact = run(&requests[i]);
                *slots[i].lock().expect("worker slot poisoned") =
                    Some((artifact, begun.elapsed()));
            });
        }
    });

    let mut store = ArtifactStore::new();
    let mut timings = Vec::with_capacity(n);
    for (request, slot) in requests.iter().zip(slots) {
        let (artifact, duration) = slot
            .into_inner()
            .expect("worker slot poisoned")
            .expect("scope joined with an unfilled slot");
        store.insert(*request, artifact);
        timings.push(RunTiming {
            request: *request,
            duration,
        });
    }
    ExecutedPlan {
        store,
        timings,
        wall: started.elapsed(),
        jobs,
    }
}

/// Render the per-run timing report (slowest first) plus the
/// serial-vs-parallel summary line.
pub fn render_timings(executed: &ExecutedPlan) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut rows: Vec<&RunTiming> = executed.timings.iter().collect();
    rows.sort_by(|a, b| b.duration.cmp(&a.duration).then(a.request.cmp(&b.request)));
    let _ = writeln!(
        out,
        "run plan: {} runs on {} worker(s)",
        executed.timings.len(),
        executed.jobs
    );
    for t in rows {
        let _ = writeln!(out, "  {:>9.3}s  {}", t.duration.as_secs_f64(), t.request);
    }
    let cpu = executed.cpu_time().as_secs_f64();
    let wall = executed.wall.as_secs_f64();
    let _ = writeln!(
        out,
        "  total run time {cpu:.3}s, wall {wall:.3}s ({:.2}x)",
        if wall > 0.0 { cpu / wall } else { 1.0 }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{Language, Scale, WorkloadId};

    fn requests(n: usize) -> Vec<RunRequest> {
        // Distinct micro names are not needed — distinct scales/languages
        // suffice to make distinct requests; use the macro registry names.
        let names = ["des", "compress", "eqntott", "espresso", "li"];
        (0..n)
            .map(|i| {
                RunRequest::pipeline(WorkloadId::macro_bench(
                    Language::Mipsi,
                    names[i % names.len()],
                    if i / names.len() == 0 { Scale::Test } else { Scale::Paper },
                ))
            })
            .collect()
    }

    #[test]
    fn every_planned_request_executes_exactly_once() {
        let plan = Plan::build(
            // Feed heavy duplication: every request three times.
            requests(8).into_iter().flat_map(|r| [r, r, r]),
        );
        let counter = AtomicUsize::new(0);
        let executed = execute_with(&plan, 4, |_req| {
            counter.fetch_add(1, Ordering::Relaxed);
            interp_core::RunArtifact::empty()
        });
        assert_eq!(counter.load(Ordering::Relaxed), plan.len());
        assert_eq!(executed.store.len(), plan.len());
        assert_eq!(executed.timings.len(), plan.len());
    }

    #[test]
    fn artifacts_land_in_plan_order_for_any_job_count() {
        let plan = Plan::build(requests(10));
        for jobs in [1, 2, 8, 64] {
            let executed = execute_with(&plan, jobs, |req| {
                let mut art = interp_core::RunArtifact::empty();
                // Tag the artifact so order can be checked.
                art.program_bytes = req.workload.name.len();
                art
            });
            let got: Vec<usize> = plan
                .requests()
                .iter()
                .map(|r| executed.store.expect(r).program_bytes)
                .collect();
            let want: Vec<usize> = plan
                .requests()
                .iter()
                .map(|r| r.workload.name.len())
                .collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn timing_render_mentions_job_count_and_totals() {
        let plan = Plan::build(requests(3));
        let executed = execute_with(&plan, 2, |_| interp_core::RunArtifact::empty());
        let text = render_timings(&executed);
        assert!(text.contains("3 runs on 2 worker(s)"), "{text}");
        assert!(text.contains("total run time"), "{text}");
    }

    #[test]
    fn empty_plan_executes_to_empty_store() {
        let executed = execute_with(&Plan::build([]), 8, |_| interp_core::RunArtifact::empty());
        assert!(executed.store.is_empty());
        assert!(executed.timings.is_empty());
    }
}
