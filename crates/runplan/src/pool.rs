//! The supervised worker pool: execute a [`Plan`] on `std::thread::scope`
//! threads (no external dependencies) with deterministic result ordering,
//! per-run timing, panic isolation, deadlines, and bounded retries.
//!
//! Every slot's execution is wrapped in `catch_unwind`; a panicking or
//! wedged run becomes a typed [`RunFailure`] in its slot instead of
//! killing the whole plan. Failures classified transient are re-queued in
//! plan order for up to [`SuperviseConfig::retries`] extra rounds, so the
//! final store content is a pure function of the request set, the runner,
//! and the retry budget — never of the worker count or finish order.

use crate::exec;
use crate::plan::Plan;
use crate::store::ArtifactStore;
use crate::supervise::{RunFailure, SuperviseConfig};
use interp_core::{RunArtifact, RunRequest};
use interp_guard::{GuardError, Limits};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How one planned run went: wall time across every attempt, and how
/// many attempts the supervisor spent on it.
#[derive(Debug, Clone, Copy)]
pub struct RunTiming {
    /// The executed request.
    pub request: RunRequest,
    /// Wall-clock duration summed over all attempts of the run.
    pub duration: Duration,
    /// Attempts executed (1 for a first-try success; up to
    /// `retries + 1` for a run that kept failing transiently).
    pub attempts: u32,
}

/// The result of executing a [`Plan`]: the artifact store (successful
/// and degraded slots) plus the timing report that makes the parallel
/// speedup — and the retry spend — visible.
#[derive(Debug, Clone)]
pub struct ExecutedPlan {
    /// Memoized results, one slot per planned request.
    pub store: ArtifactStore,
    /// Per-run timings in plan order.
    pub timings: Vec<RunTiming>,
    /// Wall-clock time for the whole plan.
    pub wall: Duration,
    /// Worker threads used.
    pub jobs: usize,
}

impl ExecutedPlan {
    /// Sum of per-run durations — the serial cost the pool amortized.
    pub fn cpu_time(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }

    /// Number of slots that stayed failed after retries.
    pub fn failure_count(&self) -> usize {
        self.store.failures().count()
    }

    /// True if any slot degraded — the `--strict` exit-code signal.
    pub fn is_degraded(&self) -> bool {
        self.failure_count() > 0
    }
}

/// Worker count to use when the user does not say: the machine's
/// available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Execute `plan` with the real workload runner on `jobs` workers under
/// the default supervision policy.
pub fn execute(plan: &Plan, jobs: usize) -> ExecutedPlan {
    execute_supervised(plan, jobs, &SuperviseConfig::new())
}

/// Execute `plan` with the real workload runner under `config`: the
/// fuel deadline rides in on `Limits::max_host_steps`, and a
/// `HostStepBudget` trip under a configured fuel deadline classifies as
/// [`crate::FailureKind::DeadlineExceeded`].
pub fn execute_supervised(plan: &Plan, jobs: usize, config: &SuperviseConfig) -> ExecutedPlan {
    let fuel = config.timeout_fuel;
    supervise_with(plan, jobs, config, move |request, attempt| {
        exec::try_run_request(request, deadline_limits(fuel))
            .map_err(|e| classify_guard_failure(e, attempt, fuel.is_some()))
    })
}

/// The per-attempt [`Limits`] a fuel deadline implies.
pub fn deadline_limits(timeout_fuel: Option<u64>) -> Limits {
    match timeout_fuel {
        Some(fuel) => Limits::unlimited().with_max_host_steps(fuel),
        None => Limits::unlimited(),
    }
}

/// Map a typed guard fault from one attempt into the supervisor's
/// failure taxonomy: a host-step budget trip under a configured fuel
/// deadline is a deadline, everything else a fault.
pub fn classify_guard_failure(
    error: GuardError,
    attempt: u32,
    fuel_deadline: bool,
) -> RunFailure {
    match &error {
        GuardError::HostStepBudget { .. } if fuel_deadline => {
            RunFailure::deadline(attempt, error.to_string())
        }
        _ => RunFailure::faulted(attempt, error.to_string()),
    }
}

/// Execute `plan` on `jobs` workers with an infallible request runner
/// (tests inject probes here to count executions). A panic inside `run`
/// still degrades that slot instead of aborting the plan.
pub fn execute_with<F>(plan: &Plan, jobs: usize, run: F) -> ExecutedPlan
where
    F: Fn(&RunRequest) -> RunArtifact + Sync,
{
    supervise_with(plan, jobs, &SuperviseConfig::new(), move |request, _attempt| {
        Ok(run(request))
    })
}

/// Run `work` over `items` on up to `jobs` scoped worker threads and
/// return the results in item order. Each slot is isolated behind
/// `catch_unwind`: a panicking item yields `None` in its slot instead of
/// poisoning its worker or aborting the batch. This is the generic
/// fan-out under the serve daemon's `--serve-jobs` concurrent request
/// execution — same idioms as [`supervise_with`], without the
/// plan/retry machinery.
pub fn run_concurrently<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, items.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::SeqCst);
                let Some(item) = items.get(index) else {
                    break;
                };
                let result = catch_unwind(AssertUnwindSafe(|| work(item)));
                let mut slot = slots[index]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                *slot = result.ok();
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner()))
        .collect()
}

/// One in-flight run as the watchdog sees it: when it began, and
/// whether the monitor has marked it overdue.
#[derive(Default)]
struct WatchSlot {
    begun: Mutex<Option<Instant>>,
    overdue: AtomicBool,
}

/// The supervision core: execute `plan` on `jobs` workers with a
/// fallible per-attempt runner, under `config`'s retry and deadline
/// policy.
///
/// Workers claim requests from a shared cursor, so long runs do not
/// convoy behind short ones; results land in *plan order* regardless of
/// completion order. Retries happen in rounds — round `r` re-runs, in
/// plan order, every slot whose round-`r-1` failure was transient — so
/// each slot's attempt count and final result are independent of the
/// worker count, keeping every downstream rendering byte-stable across
/// job counts.
pub fn supervise_with<F>(
    plan: &Plan,
    jobs: usize,
    config: &SuperviseConfig,
    run: F,
) -> ExecutedPlan
where
    F: Fn(&RunRequest, u32) -> Result<RunArtifact, RunFailure> + Sync,
{
    let requests = plan.requests();
    let n = requests.len();
    let jobs = jobs.clamp(1, n.max(1));
    let started = Instant::now();

    let mut results: Vec<Option<Result<RunArtifact, RunFailure>>> = Vec::new();
    results.resize_with(n, || None);
    let mut durations = vec![Duration::ZERO; n];
    let mut attempts = vec![0u32; n];

    // Round r executes attempt r of every still-pending slot; the queue
    // is always a plan-order subset of indices, so scheduling stays a
    // pure function of the failure history.
    let mut queue: Vec<usize> = (0..n).collect();
    let mut round: u32 = 0;
    while !queue.is_empty() {
        let outcomes = run_round(requests, &queue, jobs, round, config, &run);
        let mut next = Vec::new();
        for (&i, (outcome, elapsed)) in queue.iter().zip(outcomes) {
            attempts[i] += 1;
            durations[i] += elapsed;
            match outcome {
                Err(ref failure) if failure.kind.is_transient() && round < config.retries => {
                    next.push(i);
                }
                final_result => results[i] = Some(final_result),
            }
        }
        queue = next;
        round += 1;
    }

    let mut store = ArtifactStore::new();
    let mut timings = Vec::with_capacity(n);
    for (i, request) in requests.iter().enumerate() {
        match results[i].take() {
            Some(Ok(artifact)) => store.insert(*request, artifact),
            Some(Err(failure)) => store.insert_failure(*request, failure),
            // Unreachable by construction — every index passes through
            // exactly one round that fills it — but a missing slot must
            // degrade, not panic.
            None => store.insert_failure(
                *request,
                RunFailure::panicked(round, "supervisor finished with an unfilled slot"),
            ),
        }
        timings.push(RunTiming {
            request: *request,
            duration: durations[i],
            attempts: attempts[i],
        });
    }
    ExecutedPlan {
        store,
        timings,
        wall: started.elapsed(),
        jobs,
    }
}

/// Execute attempt `round` of every queued slot and return `(result,
/// duration)` per slot in queue order. Panics are caught at the slot
/// boundary; poisoned or unfilled slots surface as `Panicked` failures
/// instead of secondary panics.
fn run_round<F>(
    requests: &[RunRequest],
    queue: &[usize],
    jobs: usize,
    round: u32,
    config: &SuperviseConfig,
    run: &F,
) -> Vec<(Result<RunArtifact, RunFailure>, Duration)>
where
    F: Fn(&RunRequest, u32) -> Result<RunArtifact, RunFailure> + Sync,
{
    let m = queue.len();
    let cursor = AtomicUsize::new(0);
    let remaining = AtomicUsize::new(m);
    let slots: Vec<Mutex<Option<(Result<RunArtifact, RunFailure>, Duration)>>> =
        (0..m).map(|_| Mutex::new(None)).collect();
    let watch: Vec<WatchSlot> = (0..m).map(|_| WatchSlot::default()).collect();

    std::thread::scope(|scope| {
        // The wall-clock watchdog: scan in-flight slots and mark any
        // that outlive the deadline, then exit once every slot in the
        // round has reported in.
        if let Some(deadline) = config.wall_deadline {
            let (watch, remaining) = (&watch, &remaining);
            scope.spawn(move || {
                while remaining.load(Ordering::Acquire) > 0 {
                    for w in watch {
                        if w.overdue.load(Ordering::Relaxed) {
                            continue;
                        }
                        let begun = *w.begun.lock().unwrap_or_else(|p| p.into_inner());
                        if begun.is_some_and(|b| b.elapsed() > deadline) {
                            w.overdue.store(true, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let qi = cursor.fetch_add(1, Ordering::Relaxed);
                if qi >= m {
                    break;
                }
                let request = &requests[queue[qi]];
                let begun = Instant::now();
                *watch[qi].begun.lock().unwrap_or_else(|p| p.into_inner()) = Some(begun);
                let caught = catch_unwind(AssertUnwindSafe(|| run(request, round)));
                let elapsed = begun.elapsed();
                let mut result = match caught {
                    Ok(result) => result,
                    Err(payload) => {
                        Err(RunFailure::panicked(round, panic_message(payload.as_ref())))
                    }
                };
                // A run that finished after its wall deadline is still
                // overdue; a run that already failed keeps its more
                // specific failure. The detail stays constant (no
                // elapsed time) so degraded output is byte-stable.
                let overdue = watch[qi].overdue.load(Ordering::Relaxed)
                    || config.wall_deadline.is_some_and(|d| elapsed > d);
                if result.is_ok() && overdue {
                    result = Err(RunFailure::deadline(
                        round,
                        "run exceeded its wall-clock deadline",
                    ));
                }
                *slots[qi].lock().unwrap_or_else(|p| p.into_inner()) = Some((result, elapsed));
                remaining.fetch_sub(1, Ordering::Release);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| match slot.into_inner() {
            Ok(Some(filled)) => filled,
            Ok(None) => (
                Err(RunFailure::panicked(round, "scope joined with an unfilled slot")),
                Duration::ZERO,
            ),
            Err(_poison) => (
                Err(RunFailure::panicked(round, "worker slot mutex poisoned")),
                Duration::ZERO,
            ),
        })
        .collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Render the per-run timing report (slowest first) plus the
/// serial-vs-parallel summary line.
pub fn render_timings(executed: &ExecutedPlan) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut rows: Vec<&RunTiming> = executed.timings.iter().collect();
    rows.sort_by(|a, b| b.duration.cmp(&a.duration).then(a.request.cmp(&b.request)));
    let _ = writeln!(
        out,
        "run plan: {} runs on {} worker(s)",
        executed.timings.len(),
        executed.jobs
    );
    for t in rows {
        let retry = if t.attempts > 1 {
            format!("  ({} attempts)", t.attempts)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  {:>9.3}s  {}{retry}",
            t.duration.as_secs_f64(),
            t.request
        );
    }
    let cpu = executed.cpu_time().as_secs_f64();
    let wall = executed.wall.as_secs_f64();
    let _ = writeln!(
        out,
        "  total run time {cpu:.3}s, wall {wall:.3}s ({:.2}x)",
        if wall > 0.0 { cpu / wall } else { 1.0 }
    );
    out
}

/// Render the plan-level failure report: one line per degraded slot, in
/// deterministic store order; empty if nothing degraded. `repro` prints
/// this to stderr after the tables.
pub fn render_failures(executed: &ExecutedPlan) -> String {
    use std::fmt::Write as _;
    let failures: Vec<_> = executed.store.failures().collect();
    if failures.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan degraded: {} of {} run(s) failed after retries",
        failures.len(),
        executed.store.len()
    );
    for (request, failure) in failures {
        let _ = writeln!(out, "  {request}: {failure}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{Language, Scale, WorkloadId};

    fn requests(n: usize) -> Vec<RunRequest> {
        // Distinct micro names are not needed — distinct scales/languages
        // suffice to make distinct requests; use the macro registry names.
        let names = ["des", "compress", "eqntott", "espresso", "li"];
        (0..n)
            .map(|i| {
                RunRequest::pipeline(WorkloadId::macro_bench(
                    Language::Mipsi,
                    names[i % names.len()],
                    if i / names.len() == 0 { Scale::Test } else { Scale::Paper },
                ))
            })
            .collect()
    }

    #[test]
    fn every_planned_request_executes_exactly_once() {
        let plan = Plan::build(
            // Feed heavy duplication: every request three times.
            requests(8).into_iter().flat_map(|r| [r, r, r]),
        );
        let counter = AtomicUsize::new(0);
        let executed = execute_with(&plan, 4, |_req| {
            counter.fetch_add(1, Ordering::Relaxed);
            interp_core::RunArtifact::empty()
        });
        assert_eq!(counter.load(Ordering::Relaxed), plan.len());
        assert_eq!(executed.store.len(), plan.len());
        assert_eq!(executed.timings.len(), plan.len());
        assert!(!executed.is_degraded());
        assert!(executed.timings.iter().all(|t| t.attempts == 1));
    }

    #[test]
    fn artifacts_land_in_plan_order_for_any_job_count() {
        let plan = Plan::build(requests(10));
        for jobs in [1, 2, 8, 64] {
            let executed = execute_with(&plan, jobs, |req| {
                let mut art = interp_core::RunArtifact::empty();
                // Tag the artifact so order can be checked.
                art.program_bytes = req.workload.name.len();
                art
            });
            let got: Vec<usize> = plan
                .requests()
                .iter()
                .map(|r| executed.store.get(r).expect("stored").program_bytes)
                .collect();
            let want: Vec<usize> = plan
                .requests()
                .iter()
                .map(|r| r.workload.name.len())
                .collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn timing_render_mentions_job_count_and_totals() {
        let plan = Plan::build(requests(3));
        let executed = execute_with(&plan, 2, |_| interp_core::RunArtifact::empty());
        let text = render_timings(&executed);
        assert!(text.contains("3 runs on 2 worker(s)"), "{text}");
        assert!(text.contains("total run time"), "{text}");
        assert_eq!(render_failures(&executed), "");
    }

    #[test]
    fn empty_plan_executes_to_empty_store() {
        let executed = execute_with(&Plan::build([]), 8, |_| interp_core::RunArtifact::empty());
        assert!(executed.store.is_empty());
        assert!(executed.timings.is_empty());
    }

    #[test]
    fn fuel_deadline_classifies_host_step_budget() {
        let err = GuardError::HostStepBudget { executed: 1000, cap: 1000 };
        let with_fuel = classify_guard_failure(err.clone(), 2, true);
        assert_eq!(with_fuel.kind, crate::FailureKind::DeadlineExceeded);
        assert_eq!(with_fuel.attempt, 2);
        // Without a configured fuel deadline, the same trip is a plain
        // fault (some other limit policy tripped it).
        let without = classify_guard_failure(err, 0, false);
        assert_eq!(without.kind, crate::FailureKind::Faulted);
        assert_eq!(
            deadline_limits(Some(42)),
            Limits::unlimited().with_max_host_steps(42)
        );
        assert_eq!(deadline_limits(None), Limits::unlimited());
    }

    #[test]
    fn run_concurrently_preserves_order_and_isolates_panics() {
        let items: Vec<usize> = (0..17).collect();
        for jobs in [1, 3, 32] {
            let results = crate::chaos::with_quiet_injected_panics(|| {
                run_concurrently(&items, jobs, |&n| {
                    assert!(n != 13, "chaos: unlucky");
                    n * 2
                })
            });
            assert_eq!(results.len(), items.len());
            for (n, result) in items.iter().zip(&results) {
                if *n == 13 {
                    assert_eq!(*result, None, "panicking item must yield None");
                } else {
                    assert_eq!(*result, Some(n * 2), "jobs={jobs} item={n}");
                }
            }
        }
        assert!(run_concurrently(&Vec::<usize>::new(), 4, |&n| n).is_empty());
    }
}
