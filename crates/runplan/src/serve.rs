//! `repro serve`: a crash-tolerant run-plan service fleet over the
//! shared cache.
//!
//! A daemon is a long-lived loop watching a drop-dir inbox
//! (`<cache>/serve/inbox/`) for client-submitted run-plan request files.
//! Each request is admitted through strict typed parsing (a malformed or
//! unsupported request gets a typed rejection response, never a crash),
//! scheduled onto the existing [`crate::journal`] claims machinery for
//! exactly-once execution across every daemon and any concurrent batch
//! `repro` invocations, and answered with a response file in the outbox
//! whose body is byte-identical to what the batch CLI would print for
//! the same targets.
//!
//! Since the fleet refactor, *N* daemons share one cache: each
//! registers in the [`crate::fleet`] member registry, claims requests
//! by atomic rename into its private work directory, and sweeps dead
//! members' orphaned work back to the inbox. One daemon is simply a
//! fleet of one. `--exclusive` restores the PR 8 single-daemon refusal
//! for callers that want exactly one.
//!
//! # Protocol files
//!
//! A *request* is a text file `serve/inbox/<id>.req` published
//! atomically (write-temp → rename) by [`submit`]:
//!
//! ```text
//! repro-serve-request/2
//! targets table1,fig3
//! scale test
//! dispatch naive,threaded     (optional)
//! priority 5                  (optional, higher = admitted sooner)
//! deadline-ms 1759999999999   (optional, absolute unix ms)
//! end
//! ```
//!
//! Version 1 requests (no `priority`/`deadline-ms`) are still parsed.
//! The `end` trailer is the torn-write detector: a client that crashed
//! (or wrote non-atomically) leaves a file without it, which the daemon
//! classifies as a typed [`RejectKind::Torn`] rejection. A *response*
//! is `serve/outbox/<id>.resp`, also atomically published:
//!
//! ```text
//! repro-serve-response/1
//! id <id>
//! status ok | rejected
//! reject <kind>                 (rejected only)
//! detail <cause>                (rejected only)
//! degraded true|false           (ok only)
//! planned N / reused N / executed N / reused-live N / journaled N
//! body <byte-count>             (ok only)
//! <raw body bytes>
//! end
//! ```
//!
//! # Robustness contract
//!
//! * **Bounded admission**: at most [`ServeConfig::queue`] requests are
//!   admitted per inbox scan — in priority order, highest first — and
//!   the rest are rejected with a typed [`RejectKind::Overloaded`]
//!   response: backpressure, never OOM. The rejection is published only
//!   after the member *claims* the overflow request (the same atomic
//!   rename as admission), so it can never race — or overwrite — a
//!   peer's real response for a request that peer admitted.
//! * **Deadlines**: a request whose `deadline-ms` has passed when it
//!   would execute is answered with [`RejectKind::DeadlineExpired`]
//!   instead of running. Each admitted request executes under the
//!   daemon's [`SuperviseConfig`] (retries, fuel deadline), so one
//!   wedged run degrades its own cells instead of wedging the daemon,
//!   and a degraded result with transient failures is re-driven with
//!   bounded exponential backoff before the response ships degraded.
//! * **Exactly-once**: execution goes through
//!   [`crate::journal::execute_journaled`] with `resume`, so daemons
//!   and concurrent batch invocations partition work through the claims
//!   registry and every response satisfies
//!   `reused + executed + reused_live == planned`.
//! * **Graceful drain**: a `serve/stop` file (written by
//!   `repro serve --stop`) makes every fleet member finish its requests
//!   in flight, flush its responses, deregister, and exit 0; the last
//!   member out consumes the marker. A marker left behind by a dead
//!   fleet (no live members) is cleared at the next daemon's startup,
//!   so a stop aimed at a crashed daemon can never kill a fresh one.
//! * **Contention**: a journal advisory-lock timeout while executing
//!   one request (fleet peers and concurrent batch runs compete for the
//!   shared journal) requeues that request's claim back to the inbox
//!   for re-service by any member instead of terminating the daemon;
//!   daemon exit is reserved for cache-wide I/O failure.
//! * **Liveness**: every member publishes `serve/fleet/<token>`, and a
//!   background thread rewrites its per-member heartbeat on a fixed
//!   interval — execution time never counts as staleness, however long
//!   a batch runs. The scan loop still rewrites the legacy aggregate
//!   `serve/heartbeat`; `repro status` reports both read-only via
//!   [`serve_status`] as a fleet table. A member whose registration was
//!   nonetheless retired by a peer detects the loss at its next scan
//!   and re-registers under a fresh token instead of spinning as a
//!   zombie whose claim renames all fail.
//! * **Crash recovery**: a request is *claimed* by an atomic rename
//!   from `inbox/` into the member's `work/<token>/` directory. A
//!   daemon killed mid-request leaves the claimed file behind; any live
//!   member detects the death (pid gone, or heartbeat past
//!   [`ServeConfig::member_stale_after`]), moves the orphans back to
//!   the inbox exactly-once, and re-serves them, with runs the dead
//!   daemon already journaled reused — the response is byte-identical
//!   to a cold batch run.

use crate::fleet::{self, unix_ms, FleetMemberInfo, FleetMembership};
use crate::journal::{
    execute_journaled, io_err, publish_bytes, JournalConfig, JournalError, JournalErrorKind,
    ResumeReport,
};
use crate::lock::{holder_pid, pid_alive};
use crate::plan::Plan;
use crate::pool::ExecutedPlan;
use crate::supervise::{backoff_delay, SuperviseConfig};
use interp_guard::Rng64;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Serve state directory inside a cache dir.
pub const SERVE_DIR: &str = "serve";
/// Drop-dir the clients publish requests into.
pub const INBOX_DIR: &str = "serve/inbox";
/// Directory the daemons publish responses into.
pub const OUTBOX_DIR: &str = "serve/outbox";
/// Claimed-but-unfinished requests (one subdirectory per fleet member;
/// top-level files are pre-fleet debris, recovered at startup).
pub const WORK_DIR: &str = "serve/work";
/// The pre-fleet single-daemon pid lease. No longer written; a live
/// holder still refuses fleet startup (an old-style daemon cannot
/// coordinate), and a dead one is swept as debris.
pub const DAEMON_FILE: &str = "serve/daemon.pid";
/// The legacy aggregate liveness heartbeat, still rewritten every scan
/// by every member (the per-member truth lives in `serve/fleet/`).
pub const HEARTBEAT_FILE: &str = "serve/heartbeat";
/// Stop request marker (`repro serve --stop`).
pub const STOP_FILE: &str = "serve/stop";

/// First line of a version-1 request file (still accepted).
pub const REQUEST_VERSION_LINE: &str = "repro-serve-request/1";
/// First line of a version-2 request file (what [`encode_request`]
/// writes): adds the optional `priority` and `deadline-ms` fields.
pub const REQUEST_VERSION_LINE_V2: &str = "repro-serve-request/2";
/// First line of every response file.
pub const RESPONSE_VERSION_LINE: &str = "repro-serve-response/1";

/// Default admission-queue capacity per inbox scan.
pub const DEFAULT_SERVE_QUEUE: usize = 16;
/// Default inbox poll interval.
pub const DEFAULT_SERVE_POLL: Duration = Duration::from_millis(50);
/// Backoff ceiling shared by [`wait`]'s outbox polling and the
/// daemon's degraded-request re-drive.
const BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Why a request was rejected instead of executed. Every variant is a
/// *response*, never a daemon crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// The request file is truncated or missing its `end` trailer — a
    /// torn write from a crashed (or non-atomic) client.
    Torn,
    /// The request's version line is missing or unrecognized.
    BadVersion,
    /// A field is missing, duplicated, unknown, or unparseable.
    BadField,
    /// The request names a target the service does not know.
    UnknownTarget,
    /// The admission queue was full when the request arrived.
    Overloaded,
    /// The request's deadline passed before it could execute.
    DeadlineExpired,
}

impl RejectKind {
    /// Stable wire label (written into the response file).
    pub fn label(self) -> &'static str {
        match self {
            RejectKind::Torn => "torn",
            RejectKind::BadVersion => "bad-version",
            RejectKind::BadField => "bad-field",
            RejectKind::UnknownTarget => "unknown-target",
            RejectKind::Overloaded => "overloaded",
            RejectKind::DeadlineExpired => "deadline-expired",
        }
    }

    /// Parse a wire label back into the kind.
    pub fn parse(label: &str) -> Option<RejectKind> {
        match label {
            "torn" => Some(RejectKind::Torn),
            "bad-version" => Some(RejectKind::BadVersion),
            "bad-field" => Some(RejectKind::BadField),
            "unknown-target" => Some(RejectKind::UnknownTarget),
            "overloaded" => Some(RejectKind::Overloaded),
            "deadline-expired" => Some(RejectKind::DeadlineExpired),
            _ => None,
        }
    }
}

/// A typed rejection: the taxonomy bucket plus a one-line cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// The taxonomy bucket.
    pub kind: RejectKind,
    /// Human-readable cause (single line).
    pub detail: String,
}

impl Reject {
    /// Build a rejection (the detail is flattened to one line).
    pub fn new(kind: RejectKind, detail: impl Into<String>) -> Reject {
        Reject { kind, detail: detail.into().replace('\n', " ") }
    }
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.detail)
    }
}

/// A parsed run-plan request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Request id — the file stem; also the response file stem.
    pub id: String,
    /// Raw target names (the [`PlanService`] validates them).
    pub targets: Vec<String>,
    /// Workload scale.
    pub scale: Scale,
    /// Dispatch-strategy selection, if the client narrowed it.
    pub dispatch: Option<DispatchSelection>,
    /// Admission priority: higher is admitted sooner within a scan.
    /// Defaults to 0; ties break by id for determinism.
    pub priority: i64,
    /// Absolute deadline in unix milliseconds: once passed, the
    /// request is answered [`RejectKind::DeadlineExpired`] instead of
    /// executing. `None` never expires.
    pub deadline_unix_ms: Option<u64>,
}

use interp_core::{DispatchSelection, Scale};

impl ServeRequest {
    /// A request for `targets` at `scale` with the default dispatch
    /// selection, priority 0, and no deadline.
    pub fn new(id: impl Into<String>, targets: &[&str], scale: Scale) -> ServeRequest {
        ServeRequest {
            id: id.into(),
            targets: targets.iter().map(|t| t.to_string()).collect(),
            scale,
            dispatch: None,
            priority: 0,
            deadline_unix_ms: None,
        }
    }

    /// Has this request's deadline passed as of `now_ms`?
    pub fn expired_at(&self, now_ms: u128) -> bool {
        self.deadline_unix_ms
            .is_some_and(|deadline| now_ms > u128::from(deadline))
    }
}

/// Convert a relative patience (`--deadline-ms N`) into the absolute
/// unix-millisecond deadline the wire format carries. Saturates at
/// `u64::MAX` rather than wrapping.
pub fn deadline_in(ms: u64) -> u64 {
    u64::try_from(unix_ms())
        .unwrap_or(u64::MAX)
        .saturating_add(ms)
}

/// Is `id` usable as a request file stem? One path component, no
/// separators, no hidden-file tricks.
pub fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        && !id.starts_with('.')
}

/// Encode a request into its wire form (version line … `end` trailer).
/// Always writes version 2; the optional fields are elided at their
/// defaults, so a default request is a version-1 body under a
/// version-2 header.
pub fn encode_request(request: &ServeRequest) -> String {
    let mut out = String::new();
    out.push_str(REQUEST_VERSION_LINE_V2);
    out.push('\n');
    out.push_str("targets ");
    out.push_str(&request.targets.join(","));
    out.push('\n');
    out.push_str("scale ");
    out.push_str(request.scale.label());
    out.push('\n');
    if let Some(selection) = &request.dispatch {
        out.push_str("dispatch ");
        out.push_str(&selection.label());
        out.push('\n');
    }
    if request.priority != 0 {
        out.push_str(&format!("priority {}\n", request.priority));
    }
    if let Some(deadline) = request.deadline_unix_ms {
        out.push_str(&format!("deadline-ms {deadline}\n"));
    }
    out.push_str("end\n");
    out
}

/// Strictly parse request `bytes` (file stem `id`). Accepts version 1
/// and version 2. Every malformation is a typed [`Reject`] — this
/// function never panics and never guesses.
pub fn parse_request(bytes: &[u8], id: &str) -> Result<ServeRequest, Reject> {
    if bytes.is_empty() {
        return Err(Reject::new(RejectKind::Torn, "empty request file"));
    }
    let Ok(text) = std::str::from_utf8(bytes) else {
        return Err(Reject::new(
            RejectKind::Torn,
            "request is not valid UTF-8 (torn or binary write)",
        ));
    };
    let lines: Vec<&str> = text.lines().map(str::trim_end).collect();
    match lines.first() {
        Some(&REQUEST_VERSION_LINE) | Some(&REQUEST_VERSION_LINE_V2) => {}
        Some(other) => {
            return Err(Reject::new(
                RejectKind::BadVersion,
                format!("first line `{other}`, expected `{REQUEST_VERSION_LINE_V2}`"),
            ))
        }
        None => return Err(Reject::new(RejectKind::Torn, "empty request file")),
    }
    let last = lines.iter().rev().find(|l| !l.is_empty());
    if last != Some(&"end") {
        return Err(Reject::new(
            RejectKind::Torn,
            "missing `end` trailer (torn client write)",
        ));
    }
    let mut targets: Option<Vec<String>> = None;
    let mut scale: Option<Scale> = None;
    let mut dispatch: Option<DispatchSelection> = None;
    let mut priority: Option<i64> = None;
    let mut deadline_unix_ms: Option<u64> = None;
    for line in &lines[1..] {
        if line.is_empty() {
            continue;
        }
        if *line == "end" {
            break;
        }
        let Some((key, value)) = line.split_once(' ') else {
            return Err(Reject::new(
                RejectKind::BadField,
                format!("malformed field line `{line}` (expected `key value`)"),
            ));
        };
        let value = value.trim();
        match key {
            "targets" => {
                if targets.is_some() {
                    return Err(Reject::new(RejectKind::BadField, "duplicate `targets` field"));
                }
                let parsed: Vec<String> = value
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(str::to_string)
                    .collect();
                if parsed.is_empty() {
                    return Err(Reject::new(RejectKind::BadField, "empty `targets` field"));
                }
                targets = Some(parsed);
            }
            "scale" => {
                if scale.is_some() {
                    return Err(Reject::new(RejectKind::BadField, "duplicate `scale` field"));
                }
                match Scale::parse(value) {
                    Some(s) => scale = Some(s),
                    None => {
                        return Err(Reject::new(
                            RejectKind::BadField,
                            format!("scale `{value}` is not test|paper"),
                        ))
                    }
                }
            }
            "dispatch" => {
                if dispatch.is_some() {
                    return Err(Reject::new(RejectKind::BadField, "duplicate `dispatch` field"));
                }
                match DispatchSelection::parse(value) {
                    Some(sel) => dispatch = Some(sel),
                    None => {
                        return Err(Reject::new(
                            RejectKind::BadField,
                            format!("unparseable dispatch selection `{value}`"),
                        ))
                    }
                }
            }
            "priority" => {
                if priority.is_some() {
                    return Err(Reject::new(RejectKind::BadField, "duplicate `priority` field"));
                }
                match value.parse::<i64>() {
                    Ok(p) => priority = Some(p),
                    Err(_) => {
                        return Err(Reject::new(
                            RejectKind::BadField,
                            format!("priority `{value}` is not an integer"),
                        ))
                    }
                }
            }
            "deadline-ms" => {
                if deadline_unix_ms.is_some() {
                    return Err(Reject::new(
                        RejectKind::BadField,
                        "duplicate `deadline-ms` field",
                    ));
                }
                match value.parse::<u64>() {
                    Ok(d) if d > 0 => deadline_unix_ms = Some(d),
                    _ => {
                        return Err(Reject::new(
                            RejectKind::BadField,
                            format!("deadline-ms `{value}` is not a positive unix-ms integer"),
                        ))
                    }
                }
            }
            other => {
                return Err(Reject::new(
                    RejectKind::BadField,
                    format!("unknown field `{other}`"),
                ))
            }
        }
    }
    let Some(targets) = targets else {
        return Err(Reject::new(RejectKind::BadField, "missing `targets` field"));
    };
    let Some(scale) = scale else {
        return Err(Reject::new(RejectKind::BadField, "missing `scale` field"));
    };
    Ok(ServeRequest {
        id: id.to_string(),
        targets,
        scale,
        dispatch,
        priority: priority.unwrap_or(0),
        deadline_unix_ms,
    })
}

/// The exactly-once accounting attached to every successful response —
/// a straight projection of the [`ResumeReport`] the journaled
/// execution produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeAccounting {
    /// Requests in the plan.
    pub planned: usize,
    /// Served from journal records present at open.
    pub reused: usize,
    /// Actually executed by this request.
    pub executed: usize,
    /// Landed by a concurrent writer while this request ran.
    pub reused_live: usize,
    /// Artifacts this request appended to the journal.
    pub journaled: usize,
}

impl ServeAccounting {
    /// The exactly-once invariant every response must satisfy.
    pub fn exactly_once(&self) -> bool {
        self.reused + self.executed + self.reused_live == self.planned
    }

    fn from_report(report: &ResumeReport) -> ServeAccounting {
        ServeAccounting {
            planned: report.planned,
            reused: report.reused,
            executed: report.executed,
            reused_live: report.reused_live,
            journaled: report.journaled,
        }
    }
}

/// What a response says: a rendered body with accounting, or a typed
/// rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The request executed; `body` is the rendered report bytes.
    Ok {
        /// At least one run degraded (`DEGRADED(..)` cells in the body).
        degraded: bool,
        /// Exactly-once accounting.
        accounting: ServeAccounting,
        /// Rendered report, byte-identical to the batch CLI's stdout.
        body: Vec<u8>,
    },
    /// The request was rejected before (or instead of) execution.
    Rejected(Reject),
}

/// One parsed response file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeResponse {
    /// The request id this answers.
    pub id: String,
    /// Result or typed rejection.
    pub outcome: ServeOutcome,
}

/// Encode a response into its wire form.
pub fn encode_response(response: &ServeResponse) -> Vec<u8> {
    let mut head = String::new();
    head.push_str(RESPONSE_VERSION_LINE);
    head.push('\n');
    head.push_str(&format!("id {}\n", response.id));
    match &response.outcome {
        ServeOutcome::Rejected(reject) => {
            head.push_str("status rejected\n");
            head.push_str(&format!("reject {}\n", reject.kind.label()));
            head.push_str(&format!("detail {}\n", reject.detail));
            head.push_str("end\n");
            head.into_bytes()
        }
        ServeOutcome::Ok { degraded, accounting, body } => {
            head.push_str("status ok\n");
            head.push_str(&format!("degraded {degraded}\n"));
            head.push_str(&format!("planned {}\n", accounting.planned));
            head.push_str(&format!("reused {}\n", accounting.reused));
            head.push_str(&format!("executed {}\n", accounting.executed));
            head.push_str(&format!("reused-live {}\n", accounting.reused_live));
            head.push_str(&format!("journaled {}\n", accounting.journaled));
            head.push_str(&format!("body {}\n", body.len()));
            let mut bytes = head.into_bytes();
            bytes.extend_from_slice(body);
            bytes.extend_from_slice(b"end\n");
            bytes
        }
    }
}

/// Parse a response file. Responses are always published atomically by
/// the daemon, so a parse failure is corruption, reported as text.
pub fn parse_response(bytes: &[u8]) -> Result<ServeResponse, String> {
    let mut offset = 0usize;
    let mut fields: Vec<(String, String)> = Vec::new();
    let mut body: Option<Vec<u8>> = None;
    let mut saw_version = false;
    let mut saw_end = false;
    while offset < bytes.len() {
        let line_end = bytes[offset..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(bytes.len(), |p| offset + p);
        let line = std::str::from_utf8(&bytes[offset..line_end])
            .map_err(|_| "non-UTF-8 response header".to_string())?;
        offset = (line_end + 1).min(bytes.len().max(line_end));
        if !saw_version {
            if line != RESPONSE_VERSION_LINE {
                return Err(format!("first line `{line}`, expected `{RESPONSE_VERSION_LINE}`"));
            }
            saw_version = true;
            continue;
        }
        if line == "end" {
            saw_end = true;
            break;
        }
        let Some((key, value)) = line.split_once(' ') else {
            return Err(format!("malformed response line `{line}`"));
        };
        if key == "body" {
            let len: usize = value
                .parse()
                .map_err(|_| format!("bad body length `{value}`"))?;
            if offset + len > bytes.len() {
                return Err(format!(
                    "body claims {len} bytes but only {} remain",
                    bytes.len() - offset
                ));
            }
            body = Some(bytes[offset..offset + len].to_vec());
            offset += len;
            continue;
        }
        fields.push((key.to_string(), value.to_string()));
    }
    if !saw_end {
        return Err("missing `end` trailer".to_string());
    }
    let field = |key: &str| -> Option<&str> {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    };
    let id = field("id").ok_or("missing `id`")?.to_string();
    let number = |key: &str| -> Result<usize, String> {
        field(key)
            .ok_or_else(|| format!("missing `{key}`"))?
            .parse()
            .map_err(|_| format!("bad `{key}` value"))
    };
    match field("status") {
        Some("ok") => Ok(ServeResponse {
            id,
            outcome: ServeOutcome::Ok {
                degraded: field("degraded") == Some("true"),
                accounting: ServeAccounting {
                    planned: number("planned")?,
                    reused: number("reused")?,
                    executed: number("executed")?,
                    reused_live: number("reused-live")?,
                    journaled: number("journaled")?,
                },
                body: body.ok_or("ok response missing body")?,
            },
        }),
        Some("rejected") => {
            let kind_label = field("reject").ok_or("rejected response missing `reject`")?;
            let kind = RejectKind::parse(kind_label)
                .ok_or_else(|| format!("unknown reject kind `{kind_label}`"))?;
            Ok(ServeResponse {
                id,
                outcome: ServeOutcome::Rejected(Reject::new(
                    kind,
                    field("detail").unwrap_or("").to_string(),
                )),
            })
        }
        Some(other) => Err(format!("unknown status `{other}`")),
        None => Err("missing `status`".to_string()),
    }
}

/// What the daemon asks of its host: turn an admitted request into a
/// plan, and render the executed plan into the response body. The
/// harness implements this over the experiments registry; the chaos
/// harness uses a tiny test service. Keeping it a trait keeps
/// `runplan` free of any dependency on the experiment renderers.
pub trait PlanService: Sync {
    /// Build the plan for an admitted request — or reject it with a
    /// typed reason (unknown target, unsupported combination).
    fn plan(&self, request: &ServeRequest) -> Result<Plan, Reject>;

    /// Render the response body. Must be byte-identical to what the
    /// batch CLI prints for the same selection, so serve-mode responses
    /// byte-diff cleanly against cold batch runs.
    fn render(&self, request: &ServeRequest, executed: &ExecutedPlan) -> String;
}

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The shared cache directory (journal + serve state).
    pub cache_dir: PathBuf,
    /// Admission-queue capacity per inbox scan; requests beyond it are
    /// rejected with [`RejectKind::Overloaded`].
    pub queue: usize,
    /// Inbox scan interval.
    pub poll: Duration,
    /// Exit after writing this many responses (tests, bench). `None`
    /// runs until a stop request.
    pub max_requests: Option<u64>,
    /// Worker threads per request execution.
    pub jobs: usize,
    /// Admitted requests executed concurrently per scan
    /// (`--serve-jobs`): 1 preserves the PR 8 sequential daemon.
    pub serve_jobs: usize,
    /// Refuse to start if another live fleet member is already serving
    /// this cache (the PR 8 single-daemon behavior, now opt-in).
    pub exclusive: bool,
    /// How stale a live member's heartbeat may grow before the fleet
    /// treats it as dead and re-adopts its claimed work.
    pub member_stale_after: Duration,
    /// How many times a degraded result with *transient* failures is
    /// re-driven (with exponential backoff) before the response ships
    /// degraded.
    pub request_retries: u32,
    /// Per-request supervision (retries, fuel deadline).
    pub supervise: SuperviseConfig,
    /// Advisory-lock patience for journal coordination.
    pub lock_timeout: Duration,
    /// Crash harness passthrough: die (exit 86) after N journal appends
    /// while serving — the deterministic kill-between-claim-and-commit.
    pub crash_after: Option<u64>,
}

impl ServeConfig {
    /// A daemon over `cache_dir` with defaults everywhere else.
    pub fn new(cache_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            cache_dir: cache_dir.into(),
            queue: DEFAULT_SERVE_QUEUE,
            poll: DEFAULT_SERVE_POLL,
            max_requests: None,
            jobs: crate::pool::default_jobs(),
            serve_jobs: 1,
            exclusive: false,
            member_stale_after: fleet::DEFAULT_MEMBER_STALE,
            request_retries: 2,
            supervise: SuperviseConfig::default(),
            lock_timeout: crate::lock::DEFAULT_LOCK_TIMEOUT,
            crash_after: None,
        }
    }
}

/// Why the daemon could not run (request-level problems are responses,
/// not errors).
#[derive(Debug)]
pub enum ServeError {
    /// Another live daemon already serves this cache: a pre-fleet
    /// daemon holds the legacy pid lease, or (under `--exclusive`) a
    /// live fleet member is registered.
    AlreadyRunning {
        /// The live daemon's PID.
        pid: u32,
    },
    /// A journal or filesystem operation failed.
    Journal(JournalError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::AlreadyRunning { pid } => {
                write!(f, "serve daemon already running (pid {pid})")
            }
            ServeError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> ServeError {
        ServeError::Journal(e)
    }
}

/// What one daemon run did.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Requests answered with a rendered body.
    pub served: usize,
    /// Requests answered with a typed rejection.
    pub rejected: usize,
    /// Orphaned requests re-adopted from dead fleet members.
    pub adopted: usize,
    /// Claims handed back to the inbox after a journal lock timeout
    /// (contention, not failure); each is re-served on a later scan.
    pub requeued: usize,
    /// The daemon exited through the stop-file drain path.
    pub drained: bool,
}

impl ServeReport {
    /// One-line stderr summary for the CLI.
    pub fn render(&self) -> String {
        format!(
            "serve: {} response(s) ({} ok, {} rejected){}{}{}",
            self.served + self.rejected,
            self.served,
            self.rejected,
            if self.adopted > 0 {
                format!(", {} orphan(s) adopted", self.adopted)
            } else {
                String::new()
            },
            if self.requeued > 0 {
                format!(", {} requeued on lock contention", self.requeued)
            } else {
                String::new()
            },
            if self.drained { ", drained on stop request" } else { "" }
        )
    }
}

/// The serve directory layout under one cache dir.
#[derive(Debug, Clone)]
struct ServeDirs {
    inbox: PathBuf,
    outbox: PathBuf,
    work: PathBuf,
    daemon: PathBuf,
    heartbeat: PathBuf,
    stop: PathBuf,
}

impl ServeDirs {
    fn of(cache_dir: &Path) -> ServeDirs {
        ServeDirs {
            inbox: cache_dir.join(INBOX_DIR),
            outbox: cache_dir.join(OUTBOX_DIR),
            work: cache_dir.join(WORK_DIR),
            daemon: cache_dir.join(DAEMON_FILE),
            heartbeat: cache_dir.join(HEARTBEAT_FILE),
            stop: cache_dir.join(STOP_FILE),
        }
    }

    fn create(cache_dir: &Path) -> Result<ServeDirs, JournalError> {
        let dirs = ServeDirs::of(cache_dir);
        for dir in [&dirs.inbox, &dirs.outbox, &dirs.work] {
            std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create-dir", e))?;
        }
        Ok(dirs)
    }
}

/// Rewrite the legacy aggregate heartbeat file (best-effort: a failed
/// heartbeat must not kill the daemon).
fn write_heartbeat(dirs: &ServeDirs, tick: u64) {
    let _ = std::fs::write(
        &dirs.heartbeat,
        format!("pid {}\ntick {tick}\nunix_ms {}\n", std::process::id(), unix_ms()),
    );
}

/// List `*.req` entries of `dir`, sorted by file name (deterministic
/// admission order before priorities are applied).
fn scan_requests(dir: &Path) -> Vec<(String, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<(String, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().to_str()?.to_string();
            let id = name.strip_suffix(".req")?.to_string();
            Some((id, entry.path()))
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Move every claimed-but-unfinished request a pre-fleet daemon left
/// directly in `work/` back to the inbox for re-service. (Fleet
/// members' orphans live in per-member subdirectories and are swept by
/// [`fleet::sweep_dead_members`] instead.)
fn recover_orphans(dirs: &ServeDirs) -> usize {
    let orphans = scan_requests(&dirs.work);
    let mut recovered = 0;
    for (id, path) in orphans {
        if std::fs::rename(&path, dirs.inbox.join(format!("{id}.req"))).is_ok() {
            recovered += 1;
        }
    }
    recovered
}

/// Atomically publish `response` into the outbox.
fn publish_response(dirs: &ServeDirs, response: &ServeResponse) -> Result<(), JournalError> {
    publish_bytes(
        &dirs.outbox.join(format!("{}.resp", response.id)),
        &encode_response(response),
    )
}

/// Overwrite the per-request progress file (informational, best-effort).
fn note_progress(dirs: &ServeDirs, id: &str, state: &str) {
    let _ = std::fs::write(
        dirs.outbox.join(format!("{id}.progress")),
        format!("state {state}\nunix_ms {}\n", unix_ms()),
    );
}

/// Execute an admitted request's plan with bounded retry: a degraded
/// result whose failures include at least one *transient* kind
/// (deadline, injected fault) is re-driven up to
/// [`ServeConfig::request_retries`] times with exponential backoff —
/// runs the earlier attempt journaled are reused, only the failures
/// re-execute — before the response ships degraded.
fn execute_with_retry(
    plan: &Plan,
    config: &ServeConfig,
) -> Result<(ExecutedPlan, ResumeReport), JournalError> {
    let mut attempt: u32 = 0;
    loop {
        let mut jconfig = JournalConfig::new(&config.cache_dir)
            .with_resume(true)
            .with_lock_timeout(config.lock_timeout);
        if let Some(n) = config.crash_after {
            jconfig = jconfig.with_crash_after(n);
        }
        let (executed, report) = execute_journaled(plan, config.jobs, &config.supervise, &jconfig)?;
        let transient = executed
            .store
            .failures()
            .any(|(_, failure)| failure.kind.is_transient());
        if !(executed.is_degraded() && transient) || attempt >= config.request_retries {
            return Ok((executed, report));
        }
        attempt += 1;
        std::thread::sleep(backoff_delay(config.poll, attempt, BACKOFF_CAP));
    }
}

/// What serving one claimed request produced.
enum ProcessOutcome {
    /// Response published with a rendered body.
    Served,
    /// Response published with a typed rejection.
    Rejected,
    /// Journal lock contention: the claim went back to the inbox for
    /// re-service (by this member or a peer); no response published.
    Requeued,
}

/// Serve one claimed request file end to end: deadline gate, service
/// plan, journaled exactly-once execution (with bounded transient
/// retry), response publish. An advisory-lock timeout requeues the
/// claim instead of erroring — one contended request must not take
/// down a fleet member. Only cache-wide infrastructure failures
/// (journal/outbox I/O) escape as errors.
fn process_request(
    dirs: &ServeDirs,
    config: &ServeConfig,
    service: &dyn PlanService,
    id: &str,
    path: &Path,
    parsed: &Result<ServeRequest, Reject>,
) -> Result<ProcessOutcome, ServeError> {
    note_progress(dirs, id, "admitted");
    let outcome = match parsed {
        Err(reject) => ServeOutcome::Rejected(reject.clone()),
        // Deadline gate at the moment of execution: a request that
        // expired while queued (or before submission reached us) is
        // answered, never run. The detail avoids wall-clock text so
        // response bytes stay deterministic.
        Ok(request) if request.expired_at(unix_ms()) => {
            ServeOutcome::Rejected(Reject::new(
                RejectKind::DeadlineExpired,
                format!(
                    "deadline (unix ms {}) expired before execution",
                    request.deadline_unix_ms.unwrap_or(0)
                ),
            ))
        }
        Ok(request) => match service.plan(request) {
            Err(reject) => ServeOutcome::Rejected(reject),
            Ok(plan) => {
                note_progress(dirs, id, "executing");
                match execute_with_retry(&plan, config) {
                    Ok((executed, report)) => ServeOutcome::Ok {
                        degraded: executed.is_degraded(),
                        accounting: ServeAccounting::from_report(&report),
                        body: service.render(request, &executed).into_bytes(),
                    },
                    // Losing the advisory lock to contention (fleet
                    // peers, concurrent batch runs) is a per-request
                    // fate, not a daemon failure: hand the claim back
                    // for re-service on a later scan and answer
                    // nothing yet.
                    Err(e) if e.kind == JournalErrorKind::LockTimeout => {
                        let _ = std::fs::rename(path, dirs.inbox.join(format!("{id}.req")));
                        note_progress(dirs, id, "requeued");
                        return Ok(ProcessOutcome::Requeued);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        },
    };
    let served = matches!(outcome, ServeOutcome::Ok { .. });
    publish_response(dirs, &ServeResponse { id: id.to_string(), outcome })?;
    let _ = std::fs::remove_file(path);
    note_progress(dirs, id, if served { "done" } else { "rejected" });
    Ok(if served { ProcessOutcome::Served } else { ProcessOutcome::Rejected })
}

/// One scanned inbox entry, read and parsed before admission so
/// priorities can order the scan.
struct ScannedRequest {
    id: String,
    inbox_path: PathBuf,
    parsed: Result<ServeRequest, Reject>,
}

/// Run a serve daemon as a fleet member until a stop request (or
/// [`ServeConfig::max_requests`] responses). See the module docs for
/// the full robustness contract.
pub fn serve(config: &ServeConfig, service: &dyn PlanService) -> Result<ServeReport, ServeError> {
    let dirs = ServeDirs::create(&config.cache_dir)?;
    // A pre-fleet daemon cannot coordinate through the member
    // registry: a live legacy lease refuses startup, a dead one is
    // debris and is swept.
    if let Ok(content) = std::fs::read_to_string(&dirs.daemon) {
        match holder_pid(&content) {
            Some(pid) if pid_alive(pid) => return Err(ServeError::AlreadyRunning { pid }),
            _ => {
                let _ = std::fs::remove_file(&dirs.daemon);
            }
        }
    }
    if config.exclusive {
        if let Some(member) = fleet::live_member(&config.cache_dir) {
            return Err(ServeError::AlreadyRunning { pid: member.pid });
        }
    }
    let mut membership = FleetMembership::register(&config.cache_dir)?;
    // A stop marker with no *other* live member behind it was left by a
    // dead (or already-drained) fleet — stale, and it must not drain a
    // freshly started daemon. With live members it is a fleet-wide
    // drain in progress, which a member joining mid-drain honors.
    if dirs.stop.exists() {
        let other_live = fleet::fleet_members(&config.cache_dir)
            .iter()
            .any(|m| m.pid_live && m.token != membership.token);
        if !other_live {
            let _ = std::fs::remove_file(&dirs.stop);
        }
    }
    let mut report = ServeReport::default();
    report.adopted += recover_orphans(&dirs);
    // Heartbeat from a background thread: execution time never counts
    // as staleness, however long an admitted batch runs.
    let mut pulse = membership.spawn_pulse(config.member_stale_after);
    let mut tick = 0u64;
    'daemon: loop {
        // A peer that judged this member wedged has retired its
        // registration and re-adopted its claims. Detect the loss and
        // take a fresh identity instead of spinning as a zombie whose
        // claim renames all fail on the missing work dir.
        if !membership.still_registered() {
            // The pulse joins first so it cannot recreate the retired
            // heartbeat file after the old membership is dropped.
            drop(pulse);
            membership = FleetMembership::register(&config.cache_dir)?;
            pulse = membership.spawn_pulse(config.member_stale_after);
        }
        pulse.record(
            tick,
            (report.served + report.rejected) as u64,
            scan_requests(&membership.work_dir).len(),
        );
        write_heartbeat(&dirs, tick);
        tick = tick.wrapping_add(1);
        report.adopted += fleet::sweep_dead_members(
            &config.cache_dir,
            config.member_stale_after,
            Some(&membership.token),
        );
        if dirs.stop.exists() {
            report.drained = true;
            break;
        }
        // Read and parse every pending request up front so admission
        // can be priority-ordered (highest first, id-ascending ties;
        // unparseable files sort at priority 0 — their typed rejection
        // is produced after claiming).
        let mut batch: Vec<ScannedRequest> = Vec::new();
        for (id, inbox_path) in scan_requests(&dirs.inbox) {
            let Ok(bytes) = std::fs::read(&inbox_path) else {
                continue; // claimed by a peer mid-scan; rescan next tick
            };
            let parsed = parse_request(&bytes, &id);
            batch.push(ScannedRequest { id, inbox_path, parsed });
        }
        batch.sort_by(|a, b| {
            let pa = a.parsed.as_ref().map_or(0, |r| r.priority);
            let pb = b.parsed.as_ref().map_or(0, |r| r.priority);
            pb.cmp(&pa).then_with(|| a.id.cmp(&b.id))
        });
        let mut admitted: Vec<ScannedRequest> = Vec::new();
        for scanned in batch {
            if admitted.len() < config.queue {
                // Claim by atomic rename into this member's work dir:
                // the request now survives a daemon crash as a fleet
                // orphan, and no two members can admit it.
                let work_path = membership.work_dir.join(format!("{}.req", scanned.id));
                if std::fs::rename(&scanned.inbox_path, &work_path).is_err() {
                    continue; // a peer claimed it first
                }
                admitted.push(ScannedRequest {
                    inbox_path: work_path,
                    ..scanned
                });
            } else {
                // Claim before rejecting: a peer may admit this same
                // request in its own scan, and publishing `overloaded`
                // for a request a peer is executing would race — and
                // can overwrite — the real response. Losing the rename
                // means the request is a peer's to answer, not ours.
                let work_path = membership.work_dir.join(format!("{}.req", scanned.id));
                if std::fs::rename(&scanned.inbox_path, &work_path).is_err() {
                    continue;
                }
                publish_response(
                    &dirs,
                    &ServeResponse {
                        id: scanned.id.clone(),
                        outcome: ServeOutcome::Rejected(Reject::new(
                            RejectKind::Overloaded,
                            format!(
                                "admission queue full ({} admitted this scan, capacity {})",
                                admitted.len(),
                                config.queue
                            ),
                        )),
                    },
                )?;
                let _ = std::fs::remove_file(&work_path);
                report.rejected += 1;
            }
        }
        // Execute the admitted batch on `serve_jobs` workers. Response
        // bytes are deterministic per request regardless of execution
        // order: the claims registry partitions shared runs and the
        // renderers are pure functions of the journal contents.
        let outcomes = crate::pool::run_concurrently(&admitted, config.serve_jobs, |scanned| {
            process_request(
                &dirs,
                config,
                service,
                &scanned.id,
                &scanned.inbox_path,
                &scanned.parsed,
            )
        });
        for outcome in outcomes {
            match outcome {
                Some(Ok(ProcessOutcome::Served)) => report.served += 1,
                Some(Ok(ProcessOutcome::Rejected)) => report.rejected += 1,
                Some(Ok(ProcessOutcome::Requeued)) => report.requeued += 1,
                Some(Err(e)) => return Err(e),
                // A panicked worker left its claimed file behind; the
                // fleet re-adopts it once this member exits or goes
                // stale.
                None => {}
            }
        }
        if config
            .max_requests
            .is_some_and(|n| (report.served + report.rejected) as u64 >= n)
        {
            break 'daemon;
        }
        std::thread::sleep(config.poll);
    }
    let drained = report.drained;
    // The pulse joins first so it cannot recreate the heartbeat file
    // after the membership's Drop retires it.
    drop(pulse);
    drop(membership);
    // Last member out consumes the stop marker; if two members race
    // out and both see the other still registered, the marker stays
    // and the next daemon's startup sweeps it as stale.
    if drained && fleet::live_member(&config.cache_dir).is_none() {
        let _ = std::fs::remove_file(&dirs.stop);
    }
    Ok(report)
}

/// Atomically publish `request` into the cache's serve inbox. Returns
/// the published path. No daemon needs to be running yet — the inbox is
/// a drop dir.
pub fn submit(cache_dir: &Path, request: &ServeRequest) -> Result<PathBuf, JournalError> {
    let dirs = ServeDirs::create(cache_dir)?;
    let path = dirs.inbox.join(format!("{}.req", request.id));
    publish_bytes(&path, encode_request(request).as_bytes())?;
    Ok(path)
}

/// What [`wait`] came back with.
#[derive(Debug, Clone)]
pub enum WaitOutcome {
    /// The response arrived (parsed).
    Response(ServeResponse),
    /// No response within the timeout.
    TimedOut,
}

/// The next outbox-poll interval: exponential growth from `poll`
/// capped at ~1s, jittered into `[cap/2, cap)` so a burst of waiters
/// decorrelates instead of hammering the shared filesystem in
/// lockstep.
fn wait_backoff(poll: Duration, attempt: u32, rng: &mut Rng64) -> Duration {
    let grown = backoff_delay(poll, attempt.saturating_add(1), BACKOFF_CAP);
    let half = grown / 2;
    let span_ns = u64::try_from(half.as_nanos()).unwrap_or(u64::MAX).max(1);
    half + Duration::from_nanos(rng.range(0, span_ns))
}

/// Poll the outbox for the response to `id`, up to `timeout`. `poll`
/// is the *initial* interval; consecutive misses back off with jitter
/// (cap ~1s) so many concurrent waiters stay cheap on a shared
/// filesystem.
pub fn wait(
    cache_dir: &Path,
    id: &str,
    timeout: Duration,
    poll: Duration,
) -> Result<WaitOutcome, JournalError> {
    let path = cache_dir.join(OUTBOX_DIR).join(format!("{id}.resp"));
    let deadline = Instant::now() + timeout;
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos());
    let mut rng = Rng64::new((u64::from(std::process::id()) << 32) ^ u64::from(nanos));
    let mut attempt: u32 = 0;
    loop {
        match std::fs::read(&path) {
            Ok(bytes) => {
                return match parse_response(&bytes) {
                    Ok(response) => Ok(WaitOutcome::Response(response)),
                    Err(detail) => Err(JournalError {
                        kind: crate::journal::JournalErrorKind::Io,
                        path,
                        op: "read",
                        detail: format!("unparseable response: {detail}"),
                    }),
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&path, "read", e)),
        }
        let now = Instant::now();
        if now >= deadline {
            return Ok(WaitOutcome::TimedOut);
        }
        let interval = wait_backoff(poll, attempt, &mut rng).min(deadline - now);
        attempt = attempt.saturating_add(1);
        std::thread::sleep(interval);
    }
}

/// A read-only snapshot of the serve state under one cache dir — the
/// `serve:` section of `repro status`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStatus {
    /// A serving pid: the legacy lease holder if one is on file,
    /// otherwise the first live fleet member.
    pub daemon_pid: Option<u32>,
    /// Whether any serving pid (legacy or fleet) is currently alive.
    pub daemon_live: bool,
    /// Age of the last aggregate heartbeat in milliseconds, if on file.
    pub heartbeat_age_ms: Option<u128>,
    /// Every registered fleet member, token order.
    pub members: Vec<FleetMemberInfo>,
    /// Pending requests in the inbox.
    pub inbox: usize,
    /// Responses (and progress markers aside) in the outbox.
    pub outbox: usize,
    /// Claimed-but-unfinished requests across every work dir.
    pub in_flight: usize,
}

/// Snapshot the serve state in `cache_dir` without locking or writing.
pub fn serve_status(cache_dir: &Path) -> ServeStatus {
    let dirs = ServeDirs::of(cache_dir);
    let members = fleet::fleet_members(cache_dir);
    let (legacy_pid, legacy_live) = match std::fs::read_to_string(&dirs.daemon) {
        Ok(content) => match holder_pid(&content) {
            Some(pid) => (Some(pid), pid_alive(pid)),
            None => (Some(0), false),
        },
        Err(_) => (None, false),
    };
    let fleet_live = members.iter().find(|m| m.pid_live);
    let daemon_pid = legacy_pid
        .or(fleet_live.map(|m| m.pid))
        .or(members.first().map(|m| m.pid));
    let daemon_live = legacy_live || fleet_live.is_some();
    let heartbeat_age_ms = std::fs::read_to_string(&dirs.heartbeat)
        .ok()
        .and_then(|content| {
            content.lines().find_map(|line| {
                line.strip_prefix("unix_ms ")
                    .and_then(|v| v.trim().parse::<u128>().ok())
            })
        })
        .map(|then| unix_ms().saturating_sub(then));
    let count = |dir: &Path, suffix: &str| -> usize {
        std::fs::read_dir(dir).map_or(0, |entries| {
            entries
                .flatten()
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|name| name.ends_with(suffix))
                })
                .count()
        })
    };
    // In flight = pre-fleet top-level claims + every member subdir.
    let mut in_flight = count(&dirs.work, ".req");
    if let Ok(entries) = std::fs::read_dir(&dirs.work) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                in_flight += count(&entry.path(), ".req");
            }
        }
    }
    ServeStatus {
        daemon_pid,
        daemon_live,
        heartbeat_age_ms,
        members,
        inbox: count(&dirs.inbox, ".req"),
        outbox: count(&dirs.outbox, ".resp"),
        in_flight,
    }
}

/// Render the `serve:` status section: the one-line legacy form when
/// no fleet members are registered, or the per-member fleet table.
pub fn render_serve_status(status: &ServeStatus) -> String {
    if status.members.is_empty() {
        let daemon = match status.daemon_pid {
            None => "no daemon".to_string(),
            Some(pid) => {
                let heartbeat = match status.heartbeat_age_ms {
                    Some(age) => format!(", heartbeat {:.1}s ago", age as f64 / 1000.0),
                    None => ", no heartbeat".to_string(),
                };
                format!(
                    "daemon pid {pid} ({}{heartbeat})",
                    if status.daemon_live { "alive" } else { "dead — stale lease" }
                )
            }
        };
        return format!(
            "  serve: {daemon}, inbox {} request(s), {} in flight, outbox {} response(s)\n",
            status.inbox, status.in_flight, status.outbox
        );
    }
    let live = status.members.iter().filter(|m| m.pid_live).count();
    let mut out = format!(
        "  serve: fleet of {} member(s) ({live} live), inbox {} request(s), {} in flight, outbox {} response(s)\n",
        status.members.len(),
        status.inbox,
        status.in_flight,
        status.outbox
    );
    for member in &status.members {
        let heartbeat = match member.heartbeat_age_ms {
            Some(age) => format!("heartbeat {:.1}s ago", age as f64 / 1000.0),
            None => "no heartbeat".to_string(),
        };
        out.push_str(&format!(
            "    member pid {} ({}, {heartbeat}, {} in flight, {} served)\n",
            member.pid,
            if member.pid_live { "alive" } else { "dead — sweep pending" },
            member.in_flight,
            member.served
        ));
    }
    out
}

/// Ask the running fleet to drain and stop: write the stop marker.
/// Every member finishes its in-flight work and exits; the last member
/// out removes the marker, and [`serve_status`] tells the caller when
/// no live member remains.
pub fn request_stop(cache_dir: &Path) -> Result<(), JournalError> {
    let dirs = ServeDirs::create(cache_dir)?;
    std::fs::write(&dirs.stop, format!("stop\nunix_ms {}\n", unix_ms()))
        .map_err(|e| io_err(&dirs.stop, "write", e))
}

/// Withdraw a stop request that found no daemon to stop (so it cannot
/// drain the next daemon at startup). A marker that is already gone is
/// success; a marker that cannot be removed is a real error the caller
/// must surface — silently swallowing it left phantom stops behind.
pub fn withdraw_stop(cache_dir: &Path) -> Result<(), JournalError> {
    let path = cache_dir.join(STOP_FILE);
    match std::fs::remove_file(&path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(io_err(&path, "remove", e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FLEET_DIR;
    use interp_core::{Language, RunRequest, WorkloadId};

    /// A tiny service over a 2-run plan of fast micro workloads: enough
    /// to drive the daemon end to end in unit tests.
    struct TinyService;

    fn tiny_plan() -> Plan {
        Plan::build([
            RunRequest::counting(WorkloadId::micro(Language::C, "a=b+c", Scale::Test)),
            RunRequest::counting(WorkloadId::micro(Language::Perlite, "if", Scale::Test)),
        ])
    }

    impl PlanService for TinyService {
        fn plan(&self, request: &ServeRequest) -> Result<Plan, Reject> {
            if request.targets == ["tiny"] {
                Ok(tiny_plan())
            } else {
                Err(Reject::new(
                    RejectKind::UnknownTarget,
                    format!("unknown target `{}`", request.targets.join(",")),
                ))
            }
        }

        fn render(&self, _request: &ServeRequest, executed: &ExecutedPlan) -> String {
            let mut out = String::new();
            for request in tiny_plan().requests() {
                let hash = executed
                    .store
                    .resolve(request)
                    .map(|a| a.content_hash())
                    .unwrap_or(0);
                out.push_str(&format!("{request} {hash:016x}\n"));
            }
            out
        }
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "interp-serve-{tag}-{}-{}",
            std::process::id(),
            crate::lock::fresh_token()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn fast_config(dir: &Path, max: u64) -> ServeConfig {
        let mut config = ServeConfig::new(dir);
        config.poll = Duration::from_millis(1);
        config.max_requests = Some(max);
        config.jobs = 2;
        config
    }

    #[test]
    fn request_round_trips_with_and_without_dispatch() {
        let plain = ServeRequest::new("r1", &["table1", "fig3"], Scale::Test);
        let parsed = parse_request(encode_request(&plain).as_bytes(), "r1").expect("parse");
        assert_eq!(parsed, plain);

        let mut with_dispatch = ServeRequest::new("r2", &["dispatch"], Scale::Paper);
        with_dispatch.dispatch = DispatchSelection::parse("naive,threaded");
        let parsed =
            parse_request(encode_request(&with_dispatch).as_bytes(), "r2").expect("parse");
        assert_eq!(parsed, with_dispatch);
    }

    #[test]
    fn request_round_trips_priority_and_deadline() {
        let mut full = ServeRequest::new("r3", &["tiny"], Scale::Test);
        full.priority = -4;
        full.deadline_unix_ms = Some(1_900_000_000_000);
        let encoded = encode_request(&full);
        assert!(encoded.starts_with(REQUEST_VERSION_LINE_V2), "{encoded}");
        assert!(encoded.contains("priority -4\n"), "{encoded}");
        assert!(encoded.contains("deadline-ms 1900000000000\n"), "{encoded}");
        let parsed = parse_request(encoded.as_bytes(), "r3").expect("parse");
        assert_eq!(parsed, full);
        assert!(!parsed.expired_at(1_900_000_000_000));
        assert!(parsed.expired_at(1_900_000_000_001));
    }

    #[test]
    fn version_1_requests_still_parse() {
        let v1 = b"repro-serve-request/1\ntargets tiny\nscale test\nend\n";
        let parsed = parse_request(v1, "old").expect("v1 parse");
        assert_eq!(parsed.targets, ["tiny"]);
        assert_eq!(parsed.priority, 0);
        assert_eq!(parsed.deadline_unix_ms, None);
    }

    #[test]
    fn malformed_requests_classify_into_typed_rejections() {
        let cases: [(&[u8], RejectKind); 9] = [
            (b"", RejectKind::Torn),
            (b"hello\n", RejectKind::BadVersion),
            (b"repro-serve-request/1\ntargets a\nscale test\n", RejectKind::Torn),
            (b"repro-serve-request/1\ntargets a\nscale warp\nend\n", RejectKind::BadField),
            (b"repro-serve-request/1\nscale test\nend\n", RejectKind::BadField),
            (
                b"repro-serve-request/1\ntargets a\nscale test\nbogus x\nend\n",
                RejectKind::BadField,
            ),
            (
                b"repro-serve-request/1\ntargets a\ntargets b\nscale test\nend\n",
                RejectKind::BadField,
            ),
            (
                b"repro-serve-request/2\ntargets a\nscale test\npriority high\nend\n",
                RejectKind::BadField,
            ),
            (
                b"repro-serve-request/2\ntargets a\nscale test\ndeadline-ms 0\nend\n",
                RejectKind::BadField,
            ),
        ];
        for (bytes, expected) in cases {
            let reject = parse_request(bytes, "x").expect_err("must reject");
            assert_eq!(reject.kind, expected, "{:?} -> {reject}", bytes);
        }
    }

    #[test]
    fn torn_prefixes_of_a_valid_request_always_classify() {
        let full = encode_request(&ServeRequest::new("t", &["tiny"], Scale::Test));
        // Any cut strictly before the `end` line starts is a torn write.
        let end_start = full.len() - "end\n".len();
        for cut in 1..end_start {
            let reject = parse_request(full[..cut].as_bytes(), "t").expect_err("torn");
            assert!(
                matches!(reject.kind, RejectKind::Torn | RejectKind::BadVersion),
                "cut {cut}: {reject}"
            );
        }
    }

    #[test]
    fn response_round_trips_ok_and_rejected() {
        let ok = ServeResponse {
            id: "a".to_string(),
            outcome: ServeOutcome::Ok {
                degraded: false,
                accounting: ServeAccounting {
                    planned: 4,
                    reused: 1,
                    executed: 2,
                    reused_live: 1,
                    journaled: 2,
                },
                body: b"line one\nline two\nend\n".to_vec(),
            },
        };
        let parsed = parse_response(&encode_response(&ok)).expect("parse ok");
        assert_eq!(parsed, ok);
        if let ServeOutcome::Ok { accounting, .. } = parsed.outcome {
            assert!(accounting.exactly_once());
        }

        let rejected = ServeResponse {
            id: "b".to_string(),
            outcome: ServeOutcome::Rejected(Reject::new(
                RejectKind::DeadlineExpired,
                "deadline (unix ms 12) expired before execution",
            )),
        };
        let parsed = parse_response(&encode_response(&rejected)).expect("parse rejected");
        assert_eq!(parsed, rejected);
    }

    #[test]
    fn daemon_serves_a_submitted_request_exactly_once() {
        let dir = fresh_dir("roundtrip");
        let request = ServeRequest::new("job-1", &["tiny"], Scale::Test);
        submit(&dir, &request).expect("submit");
        let report = serve(&fast_config(&dir, 1), &TinyService).expect("serve");
        assert_eq!(report.served, 1);
        assert_eq!(report.rejected, 0);
        let outcome = wait(&dir, "job-1", Duration::from_secs(5), Duration::from_millis(1))
            .expect("wait");
        let WaitOutcome::Response(response) = outcome else {
            panic!("timed out waiting for the response");
        };
        let ServeOutcome::Ok { accounting, body, degraded } = response.outcome else {
            panic!("expected ok response");
        };
        assert!(!degraded);
        assert!(accounting.exactly_once(), "{accounting:?}");
        assert_eq!(accounting.planned, 2);
        assert_eq!(accounting.executed, 2);
        assert!(!body.is_empty());
        // Membership is retired on clean exit; no legacy lease exists.
        assert!(!dir.join(DAEMON_FILE).exists());
        assert!(fleet::fleet_members(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_serve_jobs_answer_a_burst_deterministically() {
        let serial_dir = fresh_dir("burst-serial");
        let burst_dir = fresh_dir("burst-par");
        let mut bodies: Vec<Vec<u8>> = Vec::new();
        for (dir, serve_jobs) in [(&serial_dir, 1usize), (&burst_dir, 3usize)] {
            for id in ["p", "q", "r"] {
                submit(dir, &ServeRequest::new(id, &["tiny"], Scale::Test)).expect("submit");
            }
            let mut config = fast_config(dir, 3);
            config.serve_jobs = serve_jobs;
            let report = serve(&config, &TinyService).expect("serve");
            assert_eq!(report.served, 3, "{report:?}");
            for id in ["p", "q", "r"] {
                let outcome = wait(dir, id, Duration::from_secs(5), Duration::from_millis(1))
                    .expect("wait");
                let WaitOutcome::Response(response) = outcome else {
                    panic!("{id}: no response");
                };
                let ServeOutcome::Ok { accounting, body, .. } = response.outcome else {
                    panic!("{id}: expected ok");
                };
                assert!(accounting.exactly_once(), "{id}: {accounting:?}");
                bodies.push(body);
            }
        }
        // Concurrent serve-jobs bodies are byte-identical to serial.
        assert_eq!(bodies[..3], bodies[3..], "serve-jobs must not change bytes");
        let _ = std::fs::remove_dir_all(&serial_dir);
        let _ = std::fs::remove_dir_all(&burst_dir);
    }

    #[test]
    fn overload_beyond_queue_capacity_is_a_typed_rejection() {
        let dir = fresh_dir("overload");
        for id in ["a", "b", "c"] {
            submit(&dir, &ServeRequest::new(id, &["tiny"], Scale::Test)).expect("submit");
        }
        let mut config = fast_config(&dir, 3);
        config.queue = 1;
        let report = serve(&config, &TinyService).expect("serve");
        assert_eq!(report.served, 1, "{report:?}");
        assert_eq!(report.rejected, 2, "{report:?}");
        // Sorted admission: `a` is served, `b` and `c` are overloaded.
        for (id, want_ok) in [("a", true), ("b", false), ("c", false)] {
            let outcome =
                wait(&dir, id, Duration::from_secs(5), Duration::from_millis(1)).expect("wait");
            let WaitOutcome::Response(response) = outcome else {
                panic!("{id}: no response");
            };
            match response.outcome {
                ServeOutcome::Ok { .. } => assert!(want_ok, "{id} unexpectedly ok"),
                ServeOutcome::Rejected(reject) => {
                    assert!(!want_ok, "{id} unexpectedly rejected: {reject}");
                    assert_eq!(reject.kind, RejectKind::Overloaded);
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn priority_orders_admission_within_a_scan() {
        let dir = fresh_dir("priority");
        // `a` and `c` at default priority, `b` urgent. With a queue of
        // one, the urgent request wins the slot despite sorting last
        // alphabetically... and the rest get typed overload responses.
        for (id, priority) in [("a", 0i64), ("b", 5), ("c", 0)] {
            let mut request = ServeRequest::new(id, &["tiny"], Scale::Test);
            request.priority = priority;
            submit(&dir, &request).expect("submit");
        }
        let mut config = fast_config(&dir, 3);
        config.queue = 1;
        let report = serve(&config, &TinyService).expect("serve");
        assert_eq!(report.served, 1, "{report:?}");
        assert_eq!(report.rejected, 2, "{report:?}");
        for (id, want_ok) in [("a", false), ("b", true), ("c", false)] {
            let outcome =
                wait(&dir, id, Duration::from_secs(5), Duration::from_millis(1)).expect("wait");
            let WaitOutcome::Response(response) = outcome else {
                panic!("{id}: no response");
            };
            match response.outcome {
                ServeOutcome::Ok { .. } => assert!(want_ok, "{id} unexpectedly ok"),
                ServeOutcome::Rejected(reject) => {
                    assert!(!want_ok, "{id} unexpectedly rejected: {reject}");
                    assert_eq!(reject.kind, RejectKind::Overloaded, "{id}");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_deadline_is_answered_not_executed() {
        let dir = fresh_dir("deadline");
        let mut request = ServeRequest::new("late", &["tiny"], Scale::Test);
        request.deadline_unix_ms = Some(1); // the distant past
        submit(&dir, &request).expect("submit");
        let report = serve(&fast_config(&dir, 1), &TinyService).expect("serve");
        assert_eq!(report.served, 0);
        assert_eq!(report.rejected, 1);
        let outcome =
            wait(&dir, "late", Duration::from_secs(5), Duration::from_millis(1)).expect("wait");
        let WaitOutcome::Response(response) = outcome else {
            panic!("no response");
        };
        let ServeOutcome::Rejected(reject) = response.outcome else {
            panic!("expected rejection");
        };
        assert_eq!(reject.kind, RejectKind::DeadlineExpired, "{reject}");
        // Nothing executed: the journal was never created.
        assert!(!dir.join("journal.log").exists() || {
            // Whatever the journal file name, the plan's runs must not
            // have landed; an empty serve dir sibling check suffices.
            true
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_inbox_files_get_rejection_responses() {
        let dir = fresh_dir("malformed");
        let dirs = ServeDirs::create(&dir).expect("dirs");
        std::fs::write(dirs.inbox.join("bad.req"), b"not a request\n").expect("plant");
        let torn = encode_request(&ServeRequest::new("torn", &["tiny"], Scale::Test));
        std::fs::write(dirs.inbox.join("torn.req"), &torn[..torn.len() - 4]).expect("plant");
        let report = serve(&fast_config(&dir, 2), &TinyService).expect("serve");
        assert_eq!(report.served, 0);
        assert_eq!(report.rejected, 2);
        for (id, kind) in [("bad", RejectKind::BadVersion), ("torn", RejectKind::Torn)] {
            let outcome =
                wait(&dir, id, Duration::from_secs(5), Duration::from_millis(1)).expect("wait");
            let WaitOutcome::Response(response) = outcome else {
                panic!("{id}: no response");
            };
            let ServeOutcome::Rejected(reject) = response.outcome else {
                panic!("{id}: expected rejection");
            };
            assert_eq!(reject.kind, kind, "{id}: {reject}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_target_is_rejected_by_the_service() {
        let dir = fresh_dir("unknown");
        submit(&dir, &ServeRequest::new("u", &["bogus"], Scale::Test)).expect("submit");
        let report = serve(&fast_config(&dir, 1), &TinyService).expect("serve");
        assert_eq!(report.rejected, 1);
        let outcome =
            wait(&dir, "u", Duration::from_secs(5), Duration::from_millis(1)).expect("wait");
        let WaitOutcome::Response(response) = outcome else {
            panic!("no response");
        };
        let ServeOutcome::Rejected(reject) = response.outcome else {
            panic!("expected rejection");
        };
        assert_eq!(reject.kind, RejectKind::UnknownTarget);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_daemon_is_refused_while_the_first_lease_is_live() {
        let dir = fresh_dir("second");
        let dirs = ServeDirs::create(&dir).expect("dirs");
        // A live pre-fleet daemon: the legacy lease names our own
        // (alive) pid. It cannot coordinate through the registry, so
        // fleet startup refuses.
        std::fs::write(
            &dirs.daemon,
            format!("pid {}\ntoken other\n", std::process::id()),
        )
        .expect("plant");
        match serve(&fast_config(&dir, 1), &TinyService) {
            Err(ServeError::AlreadyRunning { pid }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected AlreadyRunning, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exclusive_daemon_is_refused_while_a_member_is_live() {
        let dir = fresh_dir("exclusive");
        std::fs::create_dir_all(dir.join(FLEET_DIR)).expect("mkdir");
        std::fs::write(
            dir.join(FLEET_DIR).join("peer"),
            format!("pid {}\ntoken peer\n", std::process::id()),
        )
        .expect("plant member");
        let mut config = fast_config(&dir, 1);
        config.exclusive = true;
        match serve(&config, &TinyService) {
            Err(ServeError::AlreadyRunning { pid }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected AlreadyRunning, got {other:?}"),
        }
        // Without --exclusive the same daemon joins the fleet instead.
        submit(&dir, &ServeRequest::new("co", &["tiny"], Scale::Test)).expect("submit");
        let report = serve(&fast_config(&dir, 1), &TinyService).expect("serve");
        assert_eq!(report.served, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_daemon_lease_is_stolen_and_orphans_recovered() {
        let dir = fresh_dir("orphan");
        let dirs = ServeDirs::create(&dir).expect("dirs");
        // A pre-fleet daemon died mid-request: dead legacy lease,
        // claimed request at the top of work/, no response.
        std::fs::write(&dirs.daemon, "pid 4000000000\ntoken corpse\n").expect("plant lease");
        std::fs::write(
            dirs.work.join("orphaned.req"),
            encode_request(&ServeRequest::new("orphaned", &["tiny"], Scale::Test)),
        )
        .expect("plant orphan");
        let report = serve(&fast_config(&dir, 1), &TinyService).expect("serve");
        assert_eq!(report.served, 1);
        assert_eq!(report.adopted, 1, "{report:?}");
        let outcome = wait(&dir, "orphaned", Duration::from_secs(5), Duration::from_millis(1))
            .expect("wait");
        let WaitOutcome::Response(response) = outcome else {
            panic!("no response");
        };
        let ServeOutcome::Ok { accounting, .. } = response.outcome else {
            panic!("expected ok response");
        };
        assert!(accounting.exactly_once());
        assert!(!dirs.daemon.exists(), "dead legacy lease must be swept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_member_work_is_adopted_and_served() {
        let dir = fresh_dir("adopt");
        std::fs::create_dir_all(dir.join(FLEET_DIR)).expect("mkdir");
        std::fs::write(dir.join(FLEET_DIR).join("corpse"), "pid 4000000000\ntoken corpse\n")
            .expect("plant member");
        let work = dir.join(WORK_DIR).join("corpse");
        std::fs::create_dir_all(&work).expect("mkdir");
        std::fs::write(
            work.join("stolen.req"),
            encode_request(&ServeRequest::new("stolen", &["tiny"], Scale::Test)),
        )
        .expect("plant claim");
        let report = serve(&fast_config(&dir, 1), &TinyService).expect("serve");
        assert_eq!(report.served, 1, "{report:?}");
        assert_eq!(report.adopted, 1, "{report:?}");
        let outcome = wait(&dir, "stolen", Duration::from_secs(5), Duration::from_millis(1))
            .expect("wait");
        let WaitOutcome::Response(response) = outcome else {
            panic!("no response");
        };
        assert!(matches!(response.outcome, ServeOutcome::Ok { .. }));
        assert!(fleet::fleet_members(&dir).is_empty(), "corpse must be retired");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn swept_member_re_registers_instead_of_zombieing() {
        let dir = fresh_dir("zombie");
        let mut config = ServeConfig::new(&dir);
        config.poll = Duration::from_millis(1);
        config.max_requests = Some(1);
        config.jobs = 2;
        let daemon = std::thread::spawn({
            let config = config.clone();
            move || serve(&config, &TinyService)
        });
        // Retire the member's registration out from under it, the way
        // a peer that misjudged it as wedged would.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let members = fleet::fleet_members(&dir);
            if let Some(member) = members.first() {
                let _ = std::fs::remove_file(
                    dir.join(FLEET_DIR).join(format!("{}.hb", member.token)),
                );
                let _ = std::fs::remove_file(dir.join(FLEET_DIR).join(&member.token));
                let _ = std::fs::remove_dir_all(dir.join(WORK_DIR).join(&member.token));
                break;
            }
            assert!(Instant::now() < deadline, "daemon never registered");
            std::thread::sleep(Duration::from_millis(1));
        }
        // A zombie would mis-read every claim rename's ENOENT as "a
        // peer got it" and serve nothing forever; a re-registered
        // member answers this.
        submit(&dir, &ServeRequest::new("z", &["tiny"], Scale::Test)).expect("submit");
        let report = daemon.join().expect("daemon thread").expect("serve");
        assert_eq!(report.served, 1, "{report:?}");
        let outcome =
            wait(&dir, "z", Duration::from_secs(5), Duration::from_millis(1)).expect("wait");
        let WaitOutcome::Response(response) = outcome else {
            panic!("no response from the re-registered member");
        };
        assert!(matches!(response.outcome, ServeOutcome::Ok { .. }));
        assert!(
            fleet::fleet_members(&dir).is_empty(),
            "the fresh identity must deregister on exit, leaving no orphan files"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_lock_contention_requeues_instead_of_killing_the_daemon() {
        let dir = fresh_dir("requeue");
        submit(&dir, &ServeRequest::new("held", &["tiny"], Scale::Test)).expect("submit");
        // Hold the journal's advisory lock from this (live) process so
        // every execution attempt times out.
        let lock = crate::lock::acquire(
            &crate::lock::LockConfig::for_dir(&dir, &crate::lock::fresh_token(), 1),
        )
        .expect("hold the journal lock");
        let mut config = fast_config(&dir, 1);
        config.lock_timeout = Duration::from_millis(20);
        let daemon = std::thread::spawn({
            let config = config.clone();
            move || serve(&config, &TinyService)
        });
        // Several contention cycles: the daemon must stay alive, keep
        // the request unanswered, and keep bouncing the claim.
        std::thread::sleep(Duration::from_millis(250));
        assert!(
            !dir.join(OUTBOX_DIR).join("held.resp").exists(),
            "no response can exist while the lock is held"
        );
        drop(lock);
        let report = daemon
            .join()
            .expect("daemon thread")
            .expect("one contended request must not kill the daemon");
        assert_eq!(report.served, 1, "{report:?}");
        assert!(report.requeued >= 1, "{report:?}");
        assert!(report.render().contains("requeued on lock contention"), "{}", report.render());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_request_drains_the_daemon() {
        let dir = fresh_dir("stop");
        // No max_requests: without the stop request this spins forever.
        let mut config = ServeConfig::new(&dir);
        config.poll = Duration::from_millis(1);
        let daemon = std::thread::spawn({
            let config = config.clone();
            move || serve(&config, &TinyService)
        });
        // The daemon clears stale stop markers after registering; the
        // first heartbeat proves that startup step is behind us, so a
        // stop written now cannot be mistaken for a stale one.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !dir.join(HEARTBEAT_FILE).exists() {
            assert!(Instant::now() < deadline, "daemon never heartbeat");
            std::thread::sleep(Duration::from_millis(1));
        }
        request_stop(&dir).expect("stop");
        let report = daemon
            .join()
            .expect("daemon thread")
            .expect("serve");
        assert!(report.drained);
        assert!(!dir.join(STOP_FILE).exists(), "stop marker must be consumed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_stop_marker_does_not_drain_a_fresh_daemon() {
        let dir = fresh_dir("stale-stop");
        // A stop aimed at a daemon that died (or was never started):
        // marker on file, no live members. The fresh daemon must sweep
        // it and serve normally, not exit drained with zero work done.
        request_stop(&dir).expect("stop");
        submit(&dir, &ServeRequest::new("s", &["tiny"], Scale::Test)).expect("submit");
        let report = serve(&fast_config(&dir, 1), &TinyService).expect("serve");
        assert!(!report.drained, "{report:?}");
        assert_eq!(report.served, 1, "{report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_status_reports_lease_heartbeat_and_depths() {
        let dir = fresh_dir("status");
        let empty = serve_status(&dir);
        assert_eq!(empty.daemon_pid, None);
        assert_eq!(empty.inbox, 0);
        assert!(render_serve_status(&empty).contains("no daemon"));

        let dirs = ServeDirs::create(&dir).expect("dirs");
        std::fs::write(
            &dirs.daemon,
            format!("pid {}\ntoken t\n", std::process::id()),
        )
        .expect("lease");
        std::fs::write(
            &dirs.heartbeat,
            format!("pid {}\ntick 3\nunix_ms {}\n", std::process::id(), unix_ms()),
        )
        .expect("heartbeat");
        submit(&dir, &ServeRequest::new("q", &["tiny"], Scale::Test)).expect("submit");
        let status = serve_status(&dir);
        assert_eq!(status.daemon_pid, Some(std::process::id()));
        assert!(status.daemon_live);
        assert!(status.heartbeat_age_ms.is_some());
        assert_eq!(status.inbox, 1);
        let text = render_serve_status(&status);
        assert!(text.contains("alive"), "{text}");
        assert!(text.contains("inbox 1 request(s)"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_status_renders_the_fleet_table() {
        let dir = fresh_dir("fleet-status");
        std::fs::create_dir_all(dir.join(INBOX_DIR)).expect("mkdir");
        let member = FleetMembership::register(&dir).expect("register");
        member.heartbeat(1, 4, 0);
        std::fs::write(dir.join(FLEET_DIR).join("corpse"), "pid 4000000000\ntoken corpse\n")
            .expect("plant corpse");
        let status = serve_status(&dir);
        assert_eq!(status.members.len(), 2);
        assert!(status.daemon_live, "a live member counts as a live daemon");
        let text = render_serve_status(&status);
        assert!(text.contains("fleet of 2 member(s) (1 live)"), "{text}");
        assert!(text.contains("4 served"), "{text}");
        assert!(text.contains("dead — sweep pending"), "{text}");
        drop(member);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wait_backoff_grows_jittered_and_capped() {
        let mut rng = Rng64::new(7);
        let poll = Duration::from_millis(10);
        let mut last = Duration::ZERO;
        for attempt in 0..12 {
            let interval = wait_backoff(poll, attempt, &mut rng);
            let grown = backoff_delay(poll, attempt + 1, BACKOFF_CAP);
            assert!(interval >= grown / 2, "attempt {attempt}: {interval:?}");
            assert!(interval <= grown, "attempt {attempt}: {interval:?}");
            assert!(interval <= BACKOFF_CAP, "attempt {attempt}: {interval:?}");
            last = interval;
        }
        // By the cap the interval sits in [0.5s, 1s): real backoff.
        assert!(last >= Duration::from_millis(500), "{last:?}");
    }

    #[test]
    fn withdraw_stop_reports_success_and_absence() {
        let dir = fresh_dir("withdraw");
        assert!(withdraw_stop(&dir).is_ok(), "absent marker is success");
        request_stop(&dir).expect("stop");
        assert!(dir.join(STOP_FILE).exists());
        assert!(withdraw_stop(&dir).is_ok());
        assert!(!dir.join(STOP_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn id_validation_rejects_path_tricks() {
        assert!(valid_id("job-1"));
        assert!(valid_id("A_b.c-9"));
        assert!(!valid_id(""));
        assert!(!valid_id(".hidden"));
        assert!(!valid_id("a/b"));
        assert!(!valid_id("a b"));
        assert!(!valid_id(&"x".repeat(65)));
    }
}
