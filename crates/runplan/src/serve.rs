//! `repro serve`: a crash-tolerant run-plan service daemon over the
//! shared cache.
//!
//! The daemon is a long-lived loop watching a drop-dir inbox
//! (`<cache>/serve/inbox/`) for client-submitted run-plan request files.
//! Each request is admitted through strict typed parsing (a malformed or
//! unsupported request gets a typed rejection response, never a crash),
//! scheduled onto the existing [`crate::journal`] claims machinery for
//! exactly-once execution across the daemon and any concurrent batch
//! `repro` invocations, and answered with a response file in the outbox
//! whose body is byte-identical to what the batch CLI would print for
//! the same targets.
//!
//! # Protocol files
//!
//! A *request* is a text file `serve/inbox/<id>.req` published
//! atomically (write-temp → rename) by [`submit`]:
//!
//! ```text
//! repro-serve-request/1
//! targets table1,fig3
//! scale test
//! dispatch naive,threaded     (optional)
//! end
//! ```
//!
//! The `end` trailer is the torn-write detector: a client that crashed
//! (or wrote non-atomically) leaves a file without it, which the daemon
//! classifies as a typed [`RejectKind::Torn`] rejection. A *response*
//! is `serve/outbox/<id>.resp`, also atomically published:
//!
//! ```text
//! repro-serve-response/1
//! id <id>
//! status ok | rejected
//! reject <kind>                 (rejected only)
//! detail <cause>                (rejected only)
//! degraded true|false           (ok only)
//! planned N / reused N / executed N / reused-live N / journaled N
//! body <byte-count>             (ok only)
//! <raw body bytes>
//! end
//! ```
//!
//! # Robustness contract
//!
//! * **Bounded admission**: at most [`ServeConfig::queue`] requests are
//!   admitted per inbox scan; the rest are rejected with a typed
//!   [`RejectKind::Overloaded`] response — backpressure, never OOM.
//! * **Deadlines**: each request executes under the daemon's
//!   [`SuperviseConfig`] (retries, fuel deadline), so one wedged run
//!   degrades its own cells instead of wedging the daemon.
//! * **Exactly-once**: execution goes through
//!   [`crate::journal::execute_journaled`] with `resume`, so the daemon
//!   and concurrent batch invocations partition work through the claims
//!   registry and every response satisfies
//!   `reused + executed + reused_live == planned`.
//! * **Graceful drain**: a `serve/stop` file (written by
//!   `repro serve --stop`) makes the daemon finish the request in
//!   flight, flush its responses, release its pid lease, and exit 0.
//! * **Liveness**: the daemon holds a `serve/daemon.pid` lease (second
//!   live daemon is refused) and rewrites `serve/heartbeat` every scan,
//!   which `repro status` reports read-only via [`serve_status`].
//! * **Crash recovery**: a request is *claimed* by an atomic rename
//!   from `inbox/` to `work/`. A daemon killed mid-request leaves the
//!   claimed file behind; the next daemon moves every `work/` orphan
//!   back to the inbox on startup and re-serves it, with runs the dead
//!   daemon already journaled reused — the response is byte-identical
//!   to a cold batch run.

use crate::journal::{
    execute_journaled, io_err, publish_bytes, JournalConfig, JournalError, ResumeReport,
};
use crate::lock::{fresh_token, holder_pid, pid_alive};
use crate::plan::Plan;
use crate::pool::ExecutedPlan;
use crate::supervise::SuperviseConfig;
use interp_core::{DispatchSelection, Scale};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// Serve state directory inside a cache dir.
pub const SERVE_DIR: &str = "serve";
/// Drop-dir the clients publish requests into.
pub const INBOX_DIR: &str = "serve/inbox";
/// Directory the daemon publishes responses into.
pub const OUTBOX_DIR: &str = "serve/outbox";
/// Claimed-but-unfinished requests (the crash-recovery frontier).
pub const WORK_DIR: &str = "serve/work";
/// The daemon's pid lease file.
pub const DAEMON_FILE: &str = "serve/daemon.pid";
/// The daemon's liveness heartbeat, rewritten every scan.
pub const HEARTBEAT_FILE: &str = "serve/heartbeat";
/// Stop request marker (`repro serve --stop`).
pub const STOP_FILE: &str = "serve/stop";

/// First line of every request file.
pub const REQUEST_VERSION_LINE: &str = "repro-serve-request/1";
/// First line of every response file.
pub const RESPONSE_VERSION_LINE: &str = "repro-serve-response/1";

/// Default admission-queue capacity per inbox scan.
pub const DEFAULT_SERVE_QUEUE: usize = 16;
/// Default inbox poll interval.
pub const DEFAULT_SERVE_POLL: Duration = Duration::from_millis(50);

/// Why a request was rejected instead of executed. Every variant is a
/// *response*, never a daemon crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// The request file is truncated or missing its `end` trailer — a
    /// torn write from a crashed (or non-atomic) client.
    Torn,
    /// The request's version line is missing or unrecognized.
    BadVersion,
    /// A field is missing, duplicated, unknown, or unparseable.
    BadField,
    /// The request names a target the service does not know.
    UnknownTarget,
    /// The admission queue was full when the request arrived.
    Overloaded,
}

impl RejectKind {
    /// Stable wire label (written into the response file).
    pub fn label(self) -> &'static str {
        match self {
            RejectKind::Torn => "torn",
            RejectKind::BadVersion => "bad-version",
            RejectKind::BadField => "bad-field",
            RejectKind::UnknownTarget => "unknown-target",
            RejectKind::Overloaded => "overloaded",
        }
    }

    /// Parse a wire label back into the kind.
    pub fn parse(label: &str) -> Option<RejectKind> {
        match label {
            "torn" => Some(RejectKind::Torn),
            "bad-version" => Some(RejectKind::BadVersion),
            "bad-field" => Some(RejectKind::BadField),
            "unknown-target" => Some(RejectKind::UnknownTarget),
            "overloaded" => Some(RejectKind::Overloaded),
            _ => None,
        }
    }
}

/// A typed rejection: the taxonomy bucket plus a one-line cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// The taxonomy bucket.
    pub kind: RejectKind,
    /// Human-readable cause (single line).
    pub detail: String,
}

impl Reject {
    /// Build a rejection (the detail is flattened to one line).
    pub fn new(kind: RejectKind, detail: impl Into<String>) -> Reject {
        Reject { kind, detail: detail.into().replace('\n', " ") }
    }
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.detail)
    }
}

/// A parsed run-plan request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Request id — the file stem; also the response file stem.
    pub id: String,
    /// Raw target names (the [`PlanService`] validates them).
    pub targets: Vec<String>,
    /// Workload scale.
    pub scale: Scale,
    /// Dispatch-strategy selection, if the client narrowed it.
    pub dispatch: Option<DispatchSelection>,
}

impl ServeRequest {
    /// A request for `targets` at `scale` with the default dispatch
    /// selection.
    pub fn new(id: impl Into<String>, targets: &[&str], scale: Scale) -> ServeRequest {
        ServeRequest {
            id: id.into(),
            targets: targets.iter().map(|t| t.to_string()).collect(),
            scale,
            dispatch: None,
        }
    }
}

/// Is `id` usable as a request file stem? One path component, no
/// separators, no hidden-file tricks.
pub fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        && !id.starts_with('.')
}

/// Encode a request into its wire form (version line … `end` trailer).
pub fn encode_request(request: &ServeRequest) -> String {
    let mut out = String::new();
    out.push_str(REQUEST_VERSION_LINE);
    out.push('\n');
    out.push_str("targets ");
    out.push_str(&request.targets.join(","));
    out.push('\n');
    out.push_str("scale ");
    out.push_str(request.scale.label());
    out.push('\n');
    if let Some(selection) = &request.dispatch {
        out.push_str("dispatch ");
        out.push_str(&selection.label());
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Strictly parse request `bytes` (file stem `id`). Every malformation
/// is a typed [`Reject`] — this function never panics and never guesses.
pub fn parse_request(bytes: &[u8], id: &str) -> Result<ServeRequest, Reject> {
    if bytes.is_empty() {
        return Err(Reject::new(RejectKind::Torn, "empty request file"));
    }
    let Ok(text) = std::str::from_utf8(bytes) else {
        return Err(Reject::new(
            RejectKind::Torn,
            "request is not valid UTF-8 (torn or binary write)",
        ));
    };
    let lines: Vec<&str> = text.lines().map(str::trim_end).collect();
    match lines.first() {
        Some(&REQUEST_VERSION_LINE) => {}
        Some(other) => {
            return Err(Reject::new(
                RejectKind::BadVersion,
                format!("first line `{other}`, expected `{REQUEST_VERSION_LINE}`"),
            ))
        }
        None => return Err(Reject::new(RejectKind::Torn, "empty request file")),
    }
    let last = lines.iter().rev().find(|l| !l.is_empty());
    if last != Some(&"end") {
        return Err(Reject::new(
            RejectKind::Torn,
            "missing `end` trailer (torn client write)",
        ));
    }
    let mut targets: Option<Vec<String>> = None;
    let mut scale: Option<Scale> = None;
    let mut dispatch: Option<DispatchSelection> = None;
    for line in &lines[1..] {
        if line.is_empty() {
            continue;
        }
        if *line == "end" {
            break;
        }
        let Some((key, value)) = line.split_once(' ') else {
            return Err(Reject::new(
                RejectKind::BadField,
                format!("malformed field line `{line}` (expected `key value`)"),
            ));
        };
        let value = value.trim();
        match key {
            "targets" => {
                if targets.is_some() {
                    return Err(Reject::new(RejectKind::BadField, "duplicate `targets` field"));
                }
                let parsed: Vec<String> = value
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(str::to_string)
                    .collect();
                if parsed.is_empty() {
                    return Err(Reject::new(RejectKind::BadField, "empty `targets` field"));
                }
                targets = Some(parsed);
            }
            "scale" => {
                if scale.is_some() {
                    return Err(Reject::new(RejectKind::BadField, "duplicate `scale` field"));
                }
                match Scale::parse(value) {
                    Some(s) => scale = Some(s),
                    None => {
                        return Err(Reject::new(
                            RejectKind::BadField,
                            format!("scale `{value}` is not test|paper"),
                        ))
                    }
                }
            }
            "dispatch" => {
                if dispatch.is_some() {
                    return Err(Reject::new(RejectKind::BadField, "duplicate `dispatch` field"));
                }
                match DispatchSelection::parse(value) {
                    Some(sel) => dispatch = Some(sel),
                    None => {
                        return Err(Reject::new(
                            RejectKind::BadField,
                            format!("unparseable dispatch selection `{value}`"),
                        ))
                    }
                }
            }
            other => {
                return Err(Reject::new(
                    RejectKind::BadField,
                    format!("unknown field `{other}`"),
                ))
            }
        }
    }
    let Some(targets) = targets else {
        return Err(Reject::new(RejectKind::BadField, "missing `targets` field"));
    };
    let Some(scale) = scale else {
        return Err(Reject::new(RejectKind::BadField, "missing `scale` field"));
    };
    Ok(ServeRequest { id: id.to_string(), targets, scale, dispatch })
}

/// The exactly-once accounting attached to every successful response —
/// a straight projection of the [`ResumeReport`] the journaled
/// execution produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeAccounting {
    /// Requests in the plan.
    pub planned: usize,
    /// Served from journal records present at open.
    pub reused: usize,
    /// Actually executed by this request.
    pub executed: usize,
    /// Landed by a concurrent writer while this request ran.
    pub reused_live: usize,
    /// Artifacts this request appended to the journal.
    pub journaled: usize,
}

impl ServeAccounting {
    /// The exactly-once invariant every response must satisfy.
    pub fn exactly_once(&self) -> bool {
        self.reused + self.executed + self.reused_live == self.planned
    }

    fn from_report(report: &ResumeReport) -> ServeAccounting {
        ServeAccounting {
            planned: report.planned,
            reused: report.reused,
            executed: report.executed,
            reused_live: report.reused_live,
            journaled: report.journaled,
        }
    }
}

/// What a response says: a rendered body with accounting, or a typed
/// rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The request executed; `body` is the rendered report bytes.
    Ok {
        /// At least one run degraded (`DEGRADED(..)` cells in the body).
        degraded: bool,
        /// Exactly-once accounting.
        accounting: ServeAccounting,
        /// Rendered report, byte-identical to the batch CLI's stdout.
        body: Vec<u8>,
    },
    /// The request was rejected before (or instead of) execution.
    Rejected(Reject),
}

/// One parsed response file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeResponse {
    /// The request id this answers.
    pub id: String,
    /// Result or typed rejection.
    pub outcome: ServeOutcome,
}

/// Encode a response into its wire form.
pub fn encode_response(response: &ServeResponse) -> Vec<u8> {
    let mut head = String::new();
    head.push_str(RESPONSE_VERSION_LINE);
    head.push('\n');
    head.push_str(&format!("id {}\n", response.id));
    match &response.outcome {
        ServeOutcome::Rejected(reject) => {
            head.push_str("status rejected\n");
            head.push_str(&format!("reject {}\n", reject.kind.label()));
            head.push_str(&format!("detail {}\n", reject.detail));
            head.push_str("end\n");
            head.into_bytes()
        }
        ServeOutcome::Ok { degraded, accounting, body } => {
            head.push_str("status ok\n");
            head.push_str(&format!("degraded {degraded}\n"));
            head.push_str(&format!("planned {}\n", accounting.planned));
            head.push_str(&format!("reused {}\n", accounting.reused));
            head.push_str(&format!("executed {}\n", accounting.executed));
            head.push_str(&format!("reused-live {}\n", accounting.reused_live));
            head.push_str(&format!("journaled {}\n", accounting.journaled));
            head.push_str(&format!("body {}\n", body.len()));
            let mut bytes = head.into_bytes();
            bytes.extend_from_slice(body);
            bytes.extend_from_slice(b"end\n");
            bytes
        }
    }
}

/// Parse a response file. Responses are always published atomically by
/// the daemon, so a parse failure is corruption, reported as text.
pub fn parse_response(bytes: &[u8]) -> Result<ServeResponse, String> {
    let mut offset = 0usize;
    let mut fields: Vec<(String, String)> = Vec::new();
    let mut body: Option<Vec<u8>> = None;
    let mut saw_version = false;
    let mut saw_end = false;
    while offset < bytes.len() {
        let line_end = bytes[offset..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(bytes.len(), |p| offset + p);
        let line = std::str::from_utf8(&bytes[offset..line_end])
            .map_err(|_| "non-UTF-8 response header".to_string())?;
        offset = (line_end + 1).min(bytes.len().max(line_end));
        if !saw_version {
            if line != RESPONSE_VERSION_LINE {
                return Err(format!("first line `{line}`, expected `{RESPONSE_VERSION_LINE}`"));
            }
            saw_version = true;
            continue;
        }
        if line == "end" {
            saw_end = true;
            break;
        }
        let Some((key, value)) = line.split_once(' ') else {
            return Err(format!("malformed response line `{line}`"));
        };
        if key == "body" {
            let len: usize = value
                .parse()
                .map_err(|_| format!("bad body length `{value}`"))?;
            if offset + len > bytes.len() {
                return Err(format!(
                    "body claims {len} bytes but only {} remain",
                    bytes.len() - offset
                ));
            }
            body = Some(bytes[offset..offset + len].to_vec());
            offset += len;
            continue;
        }
        fields.push((key.to_string(), value.to_string()));
    }
    if !saw_end {
        return Err("missing `end` trailer".to_string());
    }
    let field = |key: &str| -> Option<&str> {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    };
    let id = field("id").ok_or("missing `id`")?.to_string();
    let number = |key: &str| -> Result<usize, String> {
        field(key)
            .ok_or_else(|| format!("missing `{key}`"))?
            .parse()
            .map_err(|_| format!("bad `{key}` value"))
    };
    match field("status") {
        Some("ok") => Ok(ServeResponse {
            id,
            outcome: ServeOutcome::Ok {
                degraded: field("degraded") == Some("true"),
                accounting: ServeAccounting {
                    planned: number("planned")?,
                    reused: number("reused")?,
                    executed: number("executed")?,
                    reused_live: number("reused-live")?,
                    journaled: number("journaled")?,
                },
                body: body.ok_or("ok response missing body")?,
            },
        }),
        Some("rejected") => {
            let kind_label = field("reject").ok_or("rejected response missing `reject`")?;
            let kind = RejectKind::parse(kind_label)
                .ok_or_else(|| format!("unknown reject kind `{kind_label}`"))?;
            Ok(ServeResponse {
                id,
                outcome: ServeOutcome::Rejected(Reject::new(
                    kind,
                    field("detail").unwrap_or("").to_string(),
                )),
            })
        }
        Some(other) => Err(format!("unknown status `{other}`")),
        None => Err("missing `status`".to_string()),
    }
}

/// What the daemon asks of its host: turn an admitted request into a
/// plan, and render the executed plan into the response body. The
/// harness implements this over the experiments registry; the chaos
/// harness uses a tiny test service. Keeping it a trait keeps
/// `runplan` free of any dependency on the experiment renderers.
pub trait PlanService: Sync {
    /// Build the plan for an admitted request — or reject it with a
    /// typed reason (unknown target, unsupported combination).
    fn plan(&self, request: &ServeRequest) -> Result<Plan, Reject>;

    /// Render the response body. Must be byte-identical to what the
    /// batch CLI prints for the same selection, so serve-mode responses
    /// byte-diff cleanly against cold batch runs.
    fn render(&self, request: &ServeRequest, executed: &ExecutedPlan) -> String;
}

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The shared cache directory (journal + serve state).
    pub cache_dir: PathBuf,
    /// Admission-queue capacity per inbox scan; requests beyond it are
    /// rejected with [`RejectKind::Overloaded`].
    pub queue: usize,
    /// Inbox scan interval.
    pub poll: Duration,
    /// Exit after writing this many responses (tests, bench). `None`
    /// runs until a stop request.
    pub max_requests: Option<u64>,
    /// Worker threads per request execution.
    pub jobs: usize,
    /// Per-request supervision (retries, fuel deadline).
    pub supervise: SuperviseConfig,
    /// Advisory-lock patience for journal coordination.
    pub lock_timeout: Duration,
    /// Crash harness passthrough: die (exit 86) after N journal appends
    /// while serving — the deterministic kill-between-claim-and-commit.
    pub crash_after: Option<u64>,
}

impl ServeConfig {
    /// A daemon over `cache_dir` with defaults everywhere else.
    pub fn new(cache_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            cache_dir: cache_dir.into(),
            queue: DEFAULT_SERVE_QUEUE,
            poll: DEFAULT_SERVE_POLL,
            max_requests: None,
            jobs: crate::pool::default_jobs(),
            supervise: SuperviseConfig::default(),
            lock_timeout: crate::lock::DEFAULT_LOCK_TIMEOUT,
            crash_after: None,
        }
    }
}

/// Why the daemon could not run (request-level problems are responses,
/// not errors).
#[derive(Debug)]
pub enum ServeError {
    /// Another live daemon holds the pid lease for this cache.
    AlreadyRunning {
        /// The live daemon's PID.
        pid: u32,
    },
    /// A journal or filesystem operation failed.
    Journal(JournalError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::AlreadyRunning { pid } => {
                write!(f, "serve daemon already running (pid {pid})")
            }
            ServeError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> ServeError {
        ServeError::Journal(e)
    }
}

/// What one daemon run did.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Requests answered with a rendered body.
    pub served: usize,
    /// Requests answered with a typed rejection.
    pub rejected: usize,
    /// The daemon exited through the stop-file drain path.
    pub drained: bool,
}

impl ServeReport {
    /// One-line stderr summary for the CLI.
    pub fn render(&self) -> String {
        format!(
            "serve: {} response(s) ({} ok, {} rejected){}",
            self.served + self.rejected,
            self.served,
            self.rejected,
            if self.drained { ", drained on stop request" } else { "" }
        )
    }
}

/// The serve directory layout under one cache dir.
#[derive(Debug, Clone)]
struct ServeDirs {
    inbox: PathBuf,
    outbox: PathBuf,
    work: PathBuf,
    daemon: PathBuf,
    heartbeat: PathBuf,
    stop: PathBuf,
}

impl ServeDirs {
    fn of(cache_dir: &Path) -> ServeDirs {
        ServeDirs {
            inbox: cache_dir.join(INBOX_DIR),
            outbox: cache_dir.join(OUTBOX_DIR),
            work: cache_dir.join(WORK_DIR),
            daemon: cache_dir.join(DAEMON_FILE),
            heartbeat: cache_dir.join(HEARTBEAT_FILE),
            stop: cache_dir.join(STOP_FILE),
        }
    }

    fn create(cache_dir: &Path) -> Result<ServeDirs, JournalError> {
        let dirs = ServeDirs::of(cache_dir);
        for dir in [&dirs.inbox, &dirs.outbox, &dirs.work] {
            std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create-dir", e))?;
        }
        Ok(dirs)
    }
}

/// The daemon's pid lease: same atomic hard-link publish as the journal
/// lock, same steal-from-the-dead rule — but a *live* holder is a hard
/// refusal ([`ServeError::AlreadyRunning`]), not a wait.
struct DaemonLease {
    path: PathBuf,
    token: String,
}

impl DaemonLease {
    fn acquire(path: &Path) -> Result<DaemonLease, ServeError> {
        let token = fresh_token();
        loop {
            let tmp = path.with_extension(format!("pid.tmp-{token}"));
            let content = format!("pid {}\ntoken {token}\n", std::process::id());
            std::fs::write(&tmp, content).map_err(|e| io_err(&tmp, "write", e))?;
            let linked = std::fs::hard_link(&tmp, path);
            let _ = std::fs::remove_file(&tmp);
            match linked {
                Ok(()) => return Ok(DaemonLease { path: path.to_path_buf(), token }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let content = std::fs::read_to_string(path).unwrap_or_default();
                    match holder_pid(&content) {
                        Some(pid) if pid_alive(pid) => {
                            return Err(ServeError::AlreadyRunning { pid })
                        }
                        // Dead or unparseable holder: retire the lease
                        // atomically and retry the link.
                        _ => {
                            let grave = path.with_extension(format!("pid.stale-{token}"));
                            if std::fs::rename(path, &grave).is_ok() {
                                let _ = std::fs::remove_file(&grave);
                            }
                        }
                    }
                }
                Err(e) => return Err(ServeError::Journal(io_err(path, "write", e))),
            }
        }
    }
}

impl Drop for DaemonLease {
    fn drop(&mut self) {
        if let Ok(content) = std::fs::read_to_string(&self.path) {
            if crate::lock::holder_token(&content) == Some(self.token.as_str()) {
                let _ = std::fs::remove_file(&self.path);
            }
        }
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is broken).
fn unix_ms() -> u128 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis())
}

/// Rewrite the heartbeat file (best-effort: a failed heartbeat must not
/// kill the daemon).
fn write_heartbeat(dirs: &ServeDirs, tick: u64) {
    let _ = std::fs::write(
        &dirs.heartbeat,
        format!("pid {}\ntick {tick}\nunix_ms {}\n", std::process::id(), unix_ms()),
    );
}

/// List `*.req` entries of `dir`, sorted by file name (deterministic
/// admission order).
fn scan_requests(dir: &Path) -> Vec<(String, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<(String, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().to_str()?.to_string();
            let id = name.strip_suffix(".req")?.to_string();
            Some((id, entry.path()))
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Move every claimed-but-unfinished request a dead daemon left in
/// `work/` back to the inbox for re-service.
fn recover_orphans(dirs: &ServeDirs) -> usize {
    let orphans = scan_requests(&dirs.work);
    let mut recovered = 0;
    for (id, path) in orphans {
        if std::fs::rename(&path, dirs.inbox.join(format!("{id}.req"))).is_ok() {
            recovered += 1;
        }
    }
    recovered
}

/// Atomically publish `response` into the outbox.
fn publish_response(dirs: &ServeDirs, response: &ServeResponse) -> Result<(), JournalError> {
    publish_bytes(
        &dirs.outbox.join(format!("{}.resp", response.id)),
        &encode_response(response),
    )
}

/// Overwrite the per-request progress file (informational, best-effort).
fn note_progress(dirs: &ServeDirs, id: &str, state: &str) {
    let _ = std::fs::write(
        dirs.outbox.join(format!("{id}.progress")),
        format!("state {state}\nunix_ms {}\n", unix_ms()),
    );
}

/// Serve one claimed request file end to end: strict parse, service
/// plan, journaled exactly-once execution, response publish. Returns
/// whether the response was a success body. Only infrastructure
/// failures (journal I/O, lock timeout) escape as errors.
fn process_request(
    dirs: &ServeDirs,
    config: &ServeConfig,
    service: &dyn PlanService,
    id: &str,
    path: &Path,
) -> Result<bool, ServeError> {
    note_progress(dirs, id, "admitted");
    let bytes = std::fs::read(path).map_err(|e| io_err(path, "read", e))?;
    let outcome = match parse_request(&bytes, id).and_then(|req| {
        service.plan(&req).map(|plan| (req, plan))
    }) {
        Err(reject) => ServeOutcome::Rejected(reject),
        Ok((request, plan)) => {
            note_progress(dirs, id, "executing");
            let mut jconfig = JournalConfig::new(&config.cache_dir)
                .with_resume(true)
                .with_lock_timeout(config.lock_timeout);
            if let Some(n) = config.crash_after {
                jconfig = jconfig.with_crash_after(n);
            }
            let (executed, report) =
                execute_journaled(&plan, config.jobs, &config.supervise, &jconfig)?;
            ServeOutcome::Ok {
                degraded: executed.is_degraded(),
                accounting: ServeAccounting::from_report(&report),
                body: service.render(&request, &executed).into_bytes(),
            }
        }
    };
    let ok = matches!(outcome, ServeOutcome::Ok { .. });
    publish_response(dirs, &ServeResponse { id: id.to_string(), outcome })?;
    let _ = std::fs::remove_file(path);
    note_progress(dirs, id, if ok { "done" } else { "rejected" });
    Ok(ok)
}

/// Run the serve daemon until a stop request (or
/// [`ServeConfig::max_requests`] responses). See the module docs for
/// the full robustness contract.
pub fn serve(config: &ServeConfig, service: &dyn PlanService) -> Result<ServeReport, ServeError> {
    let dirs = ServeDirs::create(&config.cache_dir)?;
    let lease = DaemonLease::acquire(&dirs.daemon)?;
    // A stale stop marker from a previous epoch must not kill a freshly
    // started daemon.
    let _ = std::fs::remove_file(&dirs.stop);
    recover_orphans(&dirs);
    let mut report = ServeReport::default();
    let mut tick = 0u64;
    'daemon: loop {
        write_heartbeat(&dirs, tick);
        tick = tick.wrapping_add(1);
        if dirs.stop.exists() {
            let _ = std::fs::remove_file(&dirs.stop);
            report.drained = true;
            break;
        }
        let batch = scan_requests(&dirs.inbox);
        let mut admitted = 0usize;
        for (id, inbox_path) in batch {
            let responded = if admitted < config.queue {
                // Claim by atomic rename: the request now survives a
                // daemon crash as a `work/` orphan, and can never be
                // double-admitted.
                let work_path = dirs.work.join(format!("{id}.req"));
                if std::fs::rename(&inbox_path, &work_path).is_err() {
                    continue; // vanished or unreadable; re-scan next tick
                }
                admitted += 1;
                match process_request(&dirs, config, service, &id, &work_path)? {
                    true => {
                        report.served += 1;
                        true
                    }
                    false => {
                        report.rejected += 1;
                        true
                    }
                }
            } else {
                publish_response(
                    &dirs,
                    &ServeResponse {
                        id: id.clone(),
                        outcome: ServeOutcome::Rejected(Reject::new(
                            RejectKind::Overloaded,
                            format!(
                                "admission queue full ({} admitted this scan, capacity {})",
                                admitted, config.queue
                            ),
                        )),
                    },
                )?;
                let _ = std::fs::remove_file(&inbox_path);
                report.rejected += 1;
                true
            };
            if responded
                && config
                    .max_requests
                    .is_some_and(|n| (report.served + report.rejected) as u64 >= n)
            {
                break 'daemon;
            }
        }
        std::thread::sleep(config.poll);
    }
    drop(lease);
    Ok(report)
}

/// Atomically publish `request` into the cache's serve inbox. Returns
/// the published path. The daemon does not need to be running yet — the
/// inbox is a drop dir.
pub fn submit(cache_dir: &Path, request: &ServeRequest) -> Result<PathBuf, JournalError> {
    let dirs = ServeDirs::create(cache_dir)?;
    let path = dirs.inbox.join(format!("{}.req", request.id));
    publish_bytes(&path, encode_request(request).as_bytes())?;
    Ok(path)
}

/// What [`wait`] came back with.
#[derive(Debug, Clone)]
pub enum WaitOutcome {
    /// The response arrived (parsed).
    Response(ServeResponse),
    /// No response within the timeout.
    TimedOut,
}

/// Poll the outbox for the response to `id`, up to `timeout`.
pub fn wait(
    cache_dir: &Path,
    id: &str,
    timeout: Duration,
    poll: Duration,
) -> Result<WaitOutcome, JournalError> {
    let path = cache_dir.join(OUTBOX_DIR).join(format!("{id}.resp"));
    let deadline = Instant::now() + timeout;
    loop {
        match std::fs::read(&path) {
            Ok(bytes) => {
                return match parse_response(&bytes) {
                    Ok(response) => Ok(WaitOutcome::Response(response)),
                    Err(detail) => Err(JournalError {
                        kind: crate::journal::JournalErrorKind::Io,
                        path,
                        op: "read",
                        detail: format!("unparseable response: {detail}"),
                    }),
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&path, "read", e)),
        }
        if Instant::now() >= deadline {
            return Ok(WaitOutcome::TimedOut);
        }
        std::thread::sleep(poll);
    }
}

/// A read-only snapshot of the serve state under one cache dir — the
/// `serve:` section of `repro status`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStatus {
    /// The pid recorded in the daemon lease, if one is on file.
    pub daemon_pid: Option<u32>,
    /// Whether that pid is currently alive.
    pub daemon_live: bool,
    /// Age of the last heartbeat in milliseconds, if one is on file.
    pub heartbeat_age_ms: Option<u128>,
    /// Pending requests in the inbox.
    pub inbox: usize,
    /// Responses (and progress markers aside) in the outbox.
    pub outbox: usize,
    /// Claimed-but-unfinished requests in `work/`.
    pub in_flight: usize,
}

/// Snapshot the serve state in `cache_dir` without locking or writing.
pub fn serve_status(cache_dir: &Path) -> ServeStatus {
    let dirs = ServeDirs::of(cache_dir);
    let (daemon_pid, daemon_live) = match std::fs::read_to_string(&dirs.daemon) {
        Ok(content) => match holder_pid(&content) {
            Some(pid) => (Some(pid), pid_alive(pid)),
            None => (Some(0), false),
        },
        Err(_) => (None, false),
    };
    let heartbeat_age_ms = std::fs::read_to_string(&dirs.heartbeat)
        .ok()
        .and_then(|content| {
            content.lines().find_map(|line| {
                line.strip_prefix("unix_ms ")
                    .and_then(|v| v.trim().parse::<u128>().ok())
            })
        })
        .map(|then| unix_ms().saturating_sub(then));
    let count = |dir: &Path, suffix: &str| -> usize {
        std::fs::read_dir(dir).map_or(0, |entries| {
            entries
                .flatten()
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|name| name.ends_with(suffix))
                })
                .count()
        })
    };
    ServeStatus {
        daemon_pid,
        daemon_live,
        heartbeat_age_ms,
        inbox: count(&dirs.inbox, ".req"),
        outbox: count(&dirs.outbox, ".resp"),
        in_flight: count(&dirs.work, ".req"),
    }
}

/// Render the `serve:` status line.
pub fn render_serve_status(status: &ServeStatus) -> String {
    let daemon = match status.daemon_pid {
        None => "no daemon".to_string(),
        Some(pid) => {
            let heartbeat = match status.heartbeat_age_ms {
                Some(age) => format!(", heartbeat {:.1}s ago", age as f64 / 1000.0),
                None => ", no heartbeat".to_string(),
            };
            format!(
                "daemon pid {pid} ({}{heartbeat})",
                if status.daemon_live { "alive" } else { "dead — stale lease" }
            )
        }
    };
    format!(
        "  serve: {daemon}, inbox {} request(s), {} in flight, outbox {} response(s)\n",
        status.inbox, status.in_flight, status.outbox
    )
}

/// Ask a running daemon to drain and stop: write the stop marker. The
/// daemon removes it on exit; [`serve_status`] tells the caller when
/// the lease is gone.
pub fn request_stop(cache_dir: &Path) -> Result<(), JournalError> {
    let dirs = ServeDirs::create(cache_dir)?;
    std::fs::write(&dirs.stop, b"stop\n").map_err(|e| io_err(&dirs.stop, "write", e))
}

/// Withdraw a stop request that found no daemon to stop (so it cannot
/// kill the next daemon at startup).
pub fn withdraw_stop(cache_dir: &Path) {
    let _ = std::fs::remove_file(cache_dir.join(STOP_FILE));
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{Language, RunRequest, WorkloadId};

    /// A tiny service over a 2-run plan of fast micro workloads: enough
    /// to drive the daemon end to end in unit tests.
    struct TinyService;

    fn tiny_plan() -> Plan {
        Plan::build([
            RunRequest::counting(WorkloadId::micro(Language::C, "a=b+c", Scale::Test)),
            RunRequest::counting(WorkloadId::micro(Language::Perlite, "if", Scale::Test)),
        ])
    }

    impl PlanService for TinyService {
        fn plan(&self, request: &ServeRequest) -> Result<Plan, Reject> {
            if request.targets == ["tiny"] {
                Ok(tiny_plan())
            } else {
                Err(Reject::new(
                    RejectKind::UnknownTarget,
                    format!("unknown target `{}`", request.targets.join(",")),
                ))
            }
        }

        fn render(&self, _request: &ServeRequest, executed: &ExecutedPlan) -> String {
            let mut out = String::new();
            for request in tiny_plan().requests() {
                let hash = executed
                    .store
                    .resolve(request)
                    .map(|a| a.content_hash())
                    .unwrap_or(0);
                out.push_str(&format!("{request} {hash:016x}\n"));
            }
            out
        }
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "interp-serve-{tag}-{}-{}",
            std::process::id(),
            fresh_token()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn fast_config(dir: &Path, max: u64) -> ServeConfig {
        let mut config = ServeConfig::new(dir);
        config.poll = Duration::from_millis(1);
        config.max_requests = Some(max);
        config.jobs = 2;
        config
    }

    #[test]
    fn request_round_trips_with_and_without_dispatch() {
        let plain = ServeRequest::new("r1", &["table1", "fig3"], Scale::Test);
        let parsed = parse_request(encode_request(&plain).as_bytes(), "r1").expect("parse");
        assert_eq!(parsed, plain);

        let mut with_dispatch = ServeRequest::new("r2", &["dispatch"], Scale::Paper);
        with_dispatch.dispatch = DispatchSelection::parse("naive,threaded");
        let parsed =
            parse_request(encode_request(&with_dispatch).as_bytes(), "r2").expect("parse");
        assert_eq!(parsed, with_dispatch);
    }

    #[test]
    fn malformed_requests_classify_into_typed_rejections() {
        let cases: [(&[u8], RejectKind); 7] = [
            (b"", RejectKind::Torn),
            (b"hello\n", RejectKind::BadVersion),
            (b"repro-serve-request/1\ntargets a\nscale test\n", RejectKind::Torn),
            (b"repro-serve-request/1\ntargets a\nscale warp\nend\n", RejectKind::BadField),
            (b"repro-serve-request/1\nscale test\nend\n", RejectKind::BadField),
            (
                b"repro-serve-request/1\ntargets a\nscale test\nbogus x\nend\n",
                RejectKind::BadField,
            ),
            (
                b"repro-serve-request/1\ntargets a\ntargets b\nscale test\nend\n",
                RejectKind::BadField,
            ),
        ];
        for (bytes, expected) in cases {
            let reject = parse_request(bytes, "x").expect_err("must reject");
            assert_eq!(reject.kind, expected, "{:?} -> {reject}", bytes);
        }
    }

    #[test]
    fn torn_prefixes_of_a_valid_request_always_classify() {
        let full = encode_request(&ServeRequest::new("t", &["tiny"], Scale::Test));
        // Any cut strictly before the `end` line starts is a torn write.
        let end_start = full.len() - "end\n".len();
        for cut in 1..end_start {
            let reject = parse_request(full[..cut].as_bytes(), "t").expect_err("torn");
            assert!(
                matches!(reject.kind, RejectKind::Torn | RejectKind::BadVersion),
                "cut {cut}: {reject}"
            );
        }
    }

    #[test]
    fn response_round_trips_ok_and_rejected() {
        let ok = ServeResponse {
            id: "a".to_string(),
            outcome: ServeOutcome::Ok {
                degraded: false,
                accounting: ServeAccounting {
                    planned: 4,
                    reused: 1,
                    executed: 2,
                    reused_live: 1,
                    journaled: 2,
                },
                body: b"line one\nline two\nend\n".to_vec(),
            },
        };
        let parsed = parse_response(&encode_response(&ok)).expect("parse ok");
        assert_eq!(parsed, ok);
        if let ServeOutcome::Ok { accounting, .. } = parsed.outcome {
            assert!(accounting.exactly_once());
        }

        let rejected = ServeResponse {
            id: "b".to_string(),
            outcome: ServeOutcome::Rejected(Reject::new(RejectKind::Overloaded, "queue full")),
        };
        let parsed = parse_response(&encode_response(&rejected)).expect("parse rejected");
        assert_eq!(parsed, rejected);
    }

    #[test]
    fn daemon_serves_a_submitted_request_exactly_once() {
        let dir = fresh_dir("roundtrip");
        let request = ServeRequest::new("job-1", &["tiny"], Scale::Test);
        submit(&dir, &request).expect("submit");
        let report = serve(&fast_config(&dir, 1), &TinyService).expect("serve");
        assert_eq!(report.served, 1);
        assert_eq!(report.rejected, 0);
        let outcome = wait(&dir, "job-1", Duration::from_secs(5), Duration::from_millis(1))
            .expect("wait");
        let WaitOutcome::Response(response) = outcome else {
            panic!("timed out waiting for the response");
        };
        let ServeOutcome::Ok { accounting, body, degraded } = response.outcome else {
            panic!("expected ok response");
        };
        assert!(!degraded);
        assert!(accounting.exactly_once(), "{accounting:?}");
        assert_eq!(accounting.planned, 2);
        assert_eq!(accounting.executed, 2);
        assert!(!body.is_empty());
        // The pid lease is released on clean exit.
        assert!(!dir.join(DAEMON_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overload_beyond_queue_capacity_is_a_typed_rejection() {
        let dir = fresh_dir("overload");
        for id in ["a", "b", "c"] {
            submit(&dir, &ServeRequest::new(id, &["tiny"], Scale::Test)).expect("submit");
        }
        let mut config = fast_config(&dir, 3);
        config.queue = 1;
        let report = serve(&config, &TinyService).expect("serve");
        assert_eq!(report.served, 1, "{report:?}");
        assert_eq!(report.rejected, 2, "{report:?}");
        // Sorted admission: `a` is served, `b` and `c` are overloaded.
        for (id, want_ok) in [("a", true), ("b", false), ("c", false)] {
            let outcome =
                wait(&dir, id, Duration::from_secs(5), Duration::from_millis(1)).expect("wait");
            let WaitOutcome::Response(response) = outcome else {
                panic!("{id}: no response");
            };
            match response.outcome {
                ServeOutcome::Ok { .. } => assert!(want_ok, "{id} unexpectedly ok"),
                ServeOutcome::Rejected(reject) => {
                    assert!(!want_ok, "{id} unexpectedly rejected: {reject}");
                    assert_eq!(reject.kind, RejectKind::Overloaded);
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_inbox_files_get_rejection_responses() {
        let dir = fresh_dir("malformed");
        let dirs = ServeDirs::create(&dir).expect("dirs");
        std::fs::write(dirs.inbox.join("bad.req"), b"not a request\n").expect("plant");
        let torn = encode_request(&ServeRequest::new("torn", &["tiny"], Scale::Test));
        std::fs::write(dirs.inbox.join("torn.req"), &torn[..torn.len() - 4]).expect("plant");
        let report = serve(&fast_config(&dir, 2), &TinyService).expect("serve");
        assert_eq!(report.served, 0);
        assert_eq!(report.rejected, 2);
        for (id, kind) in [("bad", RejectKind::BadVersion), ("torn", RejectKind::Torn)] {
            let outcome =
                wait(&dir, id, Duration::from_secs(5), Duration::from_millis(1)).expect("wait");
            let WaitOutcome::Response(response) = outcome else {
                panic!("{id}: no response");
            };
            let ServeOutcome::Rejected(reject) = response.outcome else {
                panic!("{id}: expected rejection");
            };
            assert_eq!(reject.kind, kind, "{id}: {reject}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_target_is_rejected_by_the_service() {
        let dir = fresh_dir("unknown");
        submit(&dir, &ServeRequest::new("u", &["bogus"], Scale::Test)).expect("submit");
        let report = serve(&fast_config(&dir, 1), &TinyService).expect("serve");
        assert_eq!(report.rejected, 1);
        let outcome =
            wait(&dir, "u", Duration::from_secs(5), Duration::from_millis(1)).expect("wait");
        let WaitOutcome::Response(response) = outcome else {
            panic!("no response");
        };
        let ServeOutcome::Rejected(reject) = response.outcome else {
            panic!("expected rejection");
        };
        assert_eq!(reject.kind, RejectKind::UnknownTarget);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_daemon_is_refused_while_the_first_lease_is_live() {
        let dir = fresh_dir("second");
        let dirs = ServeDirs::create(&dir).expect("dirs");
        // A live daemon: the lease names our own (alive) pid.
        std::fs::write(
            &dirs.daemon,
            format!("pid {}\ntoken other\n", std::process::id()),
        )
        .expect("plant");
        match serve(&fast_config(&dir, 1), &TinyService) {
            Err(ServeError::AlreadyRunning { pid }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected AlreadyRunning, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_daemon_lease_is_stolen_and_orphans_recovered() {
        let dir = fresh_dir("orphan");
        let dirs = ServeDirs::create(&dir).expect("dirs");
        // A daemon died mid-request: dead lease, claimed request in
        // work/, no response.
        std::fs::write(&dirs.daemon, "pid 4000000000\ntoken corpse\n").expect("plant lease");
        std::fs::write(
            dirs.work.join("orphaned.req"),
            encode_request(&ServeRequest::new("orphaned", &["tiny"], Scale::Test)),
        )
        .expect("plant orphan");
        let report = serve(&fast_config(&dir, 1), &TinyService).expect("serve");
        assert_eq!(report.served, 1);
        let outcome = wait(&dir, "orphaned", Duration::from_secs(5), Duration::from_millis(1))
            .expect("wait");
        let WaitOutcome::Response(response) = outcome else {
            panic!("no response");
        };
        let ServeOutcome::Ok { accounting, .. } = response.outcome else {
            panic!("expected ok response");
        };
        assert!(accounting.exactly_once());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_request_drains_the_daemon() {
        let dir = fresh_dir("stop");
        // No max_requests: without the stop request this spins forever.
        let mut config = ServeConfig::new(&dir);
        config.poll = Duration::from_millis(1);
        let daemon = std::thread::spawn({
            let config = config.clone();
            move || serve(&config, &TinyService)
        });
        // The daemon clears stale stop markers after taking its lease;
        // the first heartbeat proves that startup step is behind us, so
        // a stop written now cannot be mistaken for a stale one.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !dir.join(HEARTBEAT_FILE).exists() {
            assert!(Instant::now() < deadline, "daemon never heartbeat");
            std::thread::sleep(Duration::from_millis(1));
        }
        request_stop(&dir).expect("stop");
        let report = daemon
            .join()
            .expect("daemon thread")
            .expect("serve");
        assert!(report.drained);
        assert!(!dir.join(STOP_FILE).exists(), "stop marker must be consumed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_status_reports_lease_heartbeat_and_depths() {
        let dir = fresh_dir("status");
        let empty = serve_status(&dir);
        assert_eq!(empty.daemon_pid, None);
        assert_eq!(empty.inbox, 0);
        assert!(render_serve_status(&empty).contains("no daemon"));

        let dirs = ServeDirs::create(&dir).expect("dirs");
        std::fs::write(
            &dirs.daemon,
            format!("pid {}\ntoken t\n", std::process::id()),
        )
        .expect("lease");
        std::fs::write(
            &dirs.heartbeat,
            format!("pid {}\ntick 3\nunix_ms {}\n", std::process::id(), unix_ms()),
        )
        .expect("heartbeat");
        submit(&dir, &ServeRequest::new("q", &["tiny"], Scale::Test)).expect("submit");
        let status = serve_status(&dir);
        assert_eq!(status.daemon_pid, Some(std::process::id()));
        assert!(status.daemon_live);
        assert!(status.heartbeat_age_ms.is_some());
        assert_eq!(status.inbox, 1);
        let text = render_serve_status(&status);
        assert!(text.contains("alive"), "{text}");
        assert!(text.contains("inbox 1 request(s)"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn id_validation_rejects_path_tricks() {
        assert!(valid_id("job-1"));
        assert!(valid_id("A_b.c-9"));
        assert!(!valid_id(""));
        assert!(!valid_id(".hidden"));
        assert!(!valid_id("a/b"));
        assert!(!valid_id("a b"));
        assert!(!valid_id(&"x".repeat(65)));
    }
}
