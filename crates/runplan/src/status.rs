//! Read-only cache inspection for `repro status`: what the journal
//! holds, which defects a load would heal, who (if anyone) holds the
//! lock, and which writer sessions and claims are on file. Nothing here
//! takes the lock or mutates the cache — `status` must be safe to run
//! against a campaign in full flight.

use crate::journal::{io_err, load_bytes, JournalDefect, JournalError, JOURNAL_FILE};
use crate::lock::{probe, Claims, LockStatus, SessionInfo, Sessions};
use crate::serve::{render_serve_status, serve_status, ServeStatus};
use std::collections::BTreeMap;
use std::path::Path;

/// A read-only snapshot of one cache directory.
#[derive(Debug, Clone)]
pub struct CacheStatus {
    /// Whether a journal file exists at all.
    pub present: bool,
    /// Journal file size in bytes.
    pub bytes: u64,
    /// Fingerprint → label of every valid current-epoch record.
    pub records: BTreeMap<u64, String>,
    /// Defects a load pass would detect (and an open would heal).
    pub defects: Vec<JournalDefect>,
    /// The epoch the snapshot was taken under.
    pub epoch: u64,
    /// Advisory lock state (free, or held by whom and whether alive).
    pub lock: LockStatus,
    /// Registered writer sessions, live and stale.
    pub sessions: Vec<SessionInfo>,
    /// In-flight execution claims on file.
    pub claims: usize,
    /// Serve-fleet state (per-member pid liveness, heartbeat ages,
    /// inbox/outbox depth) — all read-only probes.
    pub serve: ServeStatus,
}

/// Snapshot the cache in `dir` under `epoch` without locking or writing.
/// The journal bytes are read once; a concurrent republish can at worst
/// make the snapshot one append stale — never torn, thanks to the
/// writers' atomic renames.
pub fn cache_status(dir: &Path, epoch: u64) -> Result<CacheStatus, JournalError> {
    let path = dir.join(JOURNAL_FILE);
    let (present, bytes) = match std::fs::read(&path) {
        Ok(bytes) => (true, bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => (false, Vec::new()),
        Err(e) => return Err(io_err(&path, "read", e)),
    };
    let loaded = load_bytes(&bytes, epoch);
    Ok(CacheStatus {
        present,
        bytes: bytes.len() as u64,
        records: loaded
            .records
            .iter()
            .map(|(fp, rec)| (*fp, rec.label.clone()))
            .collect(),
        defects: loaded.defects,
        epoch,
        lock: probe(dir),
        sessions: Sessions::new(dir).all(),
        claims: Claims::new(dir).count(),
        serve: serve_status(dir),
    })
}

/// Render the status report. `coverage` is the caller's plan-coverage
/// oracle — `(records in the reference plan, plan size)` — from which
/// the reuse ratio a resumed run would see is derived; `None` when no
/// reference plan applies.
pub fn render_cache_status(
    status: &CacheStatus,
    dir: &Path,
    coverage: Option<(usize, usize)>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "cache {}", dir.display());
    if !status.present {
        let _ = writeln!(out, "  journal: absent (no runs cached)");
    } else {
        let _ = writeln!(
            out,
            "  journal: {} record(s), {} bytes, epoch {:016x}",
            status.records.len(),
            status.bytes,
            status.epoch
        );
    }
    let defect_total = status.defects.len();
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for defect in &status.defects {
        *counts.entry(defect.kind.label()).or_insert(0) += 1;
    }
    let breakdown = counts
        .iter()
        .map(|(label, n)| format!("{n} {label}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        out,
        "  defects: {defect_total}{}",
        if defect_total > 0 {
            format!(" ({breakdown}) — healed on next open or `repro compact`")
        } else {
            String::new()
        }
    );
    match &status.lock {
        LockStatus::Free => {
            let _ = writeln!(out, "  lock: free");
        }
        LockStatus::Held { pid, token, live } => {
            let _ = writeln!(
                out,
                "  lock: held by pid {pid} (token {token}, {})",
                if *live { "alive" } else { "dead — next writer takes over" }
            );
        }
    }
    let live = status.sessions.iter().filter(|s| s.live).count();
    let _ = writeln!(
        out,
        "  writers: {} registered ({live} live), {} claim(s) in flight",
        status.sessions.len(),
        status.claims
    );
    out.push_str(&render_serve_status(&status.serve));
    if let Some((covered, planned)) = coverage {
        let ratio = if planned > 0 {
            covered as f64 / planned as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  reuse: {covered} of {planned} planned run(s) cached ({:.0}% reuse on resume)",
            ratio * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{encode_record, JournalWriter, MAGIC};
    use crate::lock::{acquire, LockConfig};
    use interp_core::{ConsoleDigest, Language, RunArtifact, RunRequest, Scale, WorkloadId};
    use std::path::PathBuf;
    use std::time::Duration;

    const EPOCH: u64 = 7;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "interp-status-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn request() -> RunRequest {
        RunRequest::pipeline(WorkloadId::macro_bench(Language::Mipsi, "des", Scale::Test))
    }

    #[test]
    fn absent_cache_reports_cleanly() {
        let dir = fresh_dir("absent");
        let status = cache_status(&dir, EPOCH).expect("status");
        assert!(!status.present);
        assert!(status.records.is_empty());
        assert_eq!(status.lock, LockStatus::Free);
        let text = render_cache_status(&status, &dir, None);
        assert!(text.contains("journal: absent"), "{text}");
        assert!(text.contains("lock: free"), "{text}");
        assert!(text.contains("serve: no daemon"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_defects_lock_and_coverage_all_surface() {
        let dir = fresh_dir("full");
        // One valid record plus trailing garbage (a torn tail).
        let req = request();
        let mut art = RunArtifact::empty();
        art.program_bytes = 1;
        art.console = ConsoleDigest::of("OK\n");
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&encode_record(EPOCH, req.fingerprint(), &req.label(), &art));
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).expect("seed");
        let guard = acquire(
            &LockConfig::for_dir(&dir, "status-test", EPOCH)
                .with_timeout(Duration::from_secs(5)),
        )
        .expect("lock");

        let status = cache_status(&dir, EPOCH).expect("status");
        assert!(status.present);
        assert_eq!(status.records.len(), 1);
        assert_eq!(status.defects.len(), 1);
        match &status.lock {
            LockStatus::Held { token, live, .. } => {
                assert_eq!(token, "status-test");
                assert!(live);
            }
            other => panic!("expected held lock, got {other:?}"),
        }
        let text = render_cache_status(&status, &dir, Some((1, 4)));
        assert!(text.contains("1 record(s)"), "{text}");
        assert!(text.contains("defects: 1 (1 torn-tail)"), "{text}");
        assert!(text.contains("held by pid"), "{text}");
        assert!(text.contains("1 of 4 planned run(s) cached (25% reuse"), "{text}");
        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_members_surface_in_the_status_report() {
        let dir = fresh_dir("fleet");
        let member = crate::fleet::FleetMembership::register(&dir).expect("register");
        member.heartbeat(1, 2, 0);
        let status = cache_status(&dir, EPOCH).expect("status");
        assert_eq!(status.serve.members.len(), 1);
        assert!(status.serve.daemon_live);
        let text = render_cache_status(&status, &dir, None);
        assert!(text.contains("fleet of 1 member(s) (1 live)"), "{text}");
        assert!(text.contains("2 served"), "{text}");
        drop(member);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_is_read_only() {
        let dir = fresh_dir("readonly");
        let (mut writer, _) = JournalWriter::open(&dir, EPOCH, false).expect("open");
        let req = request();
        let mut art = RunArtifact::empty();
        art.console = ConsoleDigest::of("OK\n");
        writer
            .append(req.fingerprint(), &req.label(), &art)
            .expect("append");
        let before = std::fs::read(dir.join(JOURNAL_FILE)).expect("read");
        let status = cache_status(&dir, EPOCH).expect("status");
        assert_eq!(status.records.len(), 1);
        let after = std::fs::read(dir.join(JOURNAL_FILE)).expect("read");
        assert_eq!(before, after, "status must not touch the journal");
        assert_eq!(status.lock, LockStatus::Free, "status must not hold the lock");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
