//! The in-memory artifact store experiments read instead of invoking
//! interpreters.

use crate::supervise::RunFailure;
use interp_core::{RunArtifact, RunRequest};
use std::collections::BTreeMap;
use std::fmt;

/// How an artifact lookup can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The request was planned but its run failed even after retries;
    /// renderers degrade the cell with [`RunFailure::cell`].
    Degraded(RunFailure),
    /// The request was never planned — an experiment consuming a store
    /// must have contributed its requests to the plan that built it, so
    /// this is a harness bug, not a degradation.
    Unplanned(RunRequest),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Degraded(failure) => write!(f, "run degraded: {failure}"),
            ResolveError::Unplanned(request) => write!(
                f,
                "artifact for `{request}` was never planned — experiment requests and plan diverged"
            ),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Memoized run results keyed by the [`RunRequest`] that produced them.
/// Each slot is a `Result`: a successful run's [`RunArtifact`], or the
/// [`RunFailure`] the supervisor recorded after retries ran out.
///
/// Lookups understand the planner's subsumption rule: asking for a
/// counting artifact when only the pipeline artifact exists returns the
/// pipeline artifact (which carries the identical counters plus timing)
/// — and, symmetrically, inherits the pipeline run's failure.
#[derive(Debug, Clone, Default)]
pub struct ArtifactStore {
    map: BTreeMap<RunRequest, Result<RunArtifact, RunFailure>>,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// Record `artifact` as the successful result of `request`.
    pub fn insert(&mut self, request: RunRequest, artifact: RunArtifact) {
        self.map.insert(request, Ok(artifact));
    }

    /// Record `failure` as the degraded result of `request`.
    pub fn insert_failure(&mut self, request: RunRequest, failure: RunFailure) {
        self.map.insert(request, Err(failure));
    }

    /// The result slot for `request`, resolving subsumption: an exact
    /// hit wins; otherwise a counting lookup is satisfied by — and
    /// inherits the failure of — the pipeline slot for the same
    /// workload.
    pub fn resolve(&self, request: &RunRequest) -> Result<&RunArtifact, ResolveError> {
        self.slot(request)
            .ok_or(ResolveError::Unplanned(*request))?
            .as_ref()
            .map_err(|failure| ResolveError::Degraded(failure.clone()))
    }

    fn slot(&self, request: &RunRequest) -> Option<&Result<RunArtifact, RunFailure>> {
        self.map.get(request).or_else(|| {
            request
                .subsumed_by()
                .and_then(|stronger| self.map.get(&stronger))
        })
    }

    /// The artifact for `request` if its run succeeded, resolving
    /// subsumption. Degraded and unplanned slots both come back `None`;
    /// use [`ArtifactStore::resolve`] to tell them apart.
    pub fn get(&self, request: &RunRequest) -> Option<&RunArtifact> {
        self.slot(request).and_then(|slot| slot.as_ref().ok())
    }

    /// Iterate degraded `(request, failure)` slots in deterministic
    /// order — the rows of the plan-level failure report.
    pub fn failures(&self) -> impl Iterator<Item = (&RunRequest, &RunFailure)> {
        self.map
            .iter()
            .filter_map(|(request, slot)| slot.as_ref().err().map(|f| (request, f)))
    }

    /// Number of slots (successful and degraded).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate successful `(request, artifact)` pairs in deterministic
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&RunRequest, &RunArtifact)> {
        self.map
            .iter()
            .filter_map(|(request, slot)| slot.as_ref().ok().map(|a| (request, a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{Language, RunArtifact, Scale, SinkKind, WorkloadId};

    fn id() -> WorkloadId {
        WorkloadId::macro_bench(Language::Tclite, "des", Scale::Test)
    }

    #[test]
    fn exact_lookup_round_trips() {
        let mut store = ArtifactStore::new();
        store.insert(RunRequest::counting(id()), RunArtifact::empty());
        assert!(store.get(&RunRequest::counting(id())).is_some());
        assert!(store.get(&RunRequest::pipeline(id())).is_none());
        assert!(store.resolve(&RunRequest::counting(id())).is_ok());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn counting_lookup_resolves_to_pipeline_artifact() {
        let mut store = ArtifactStore::new();
        let mut art = RunArtifact::empty();
        art.program_bytes = 42;
        store.insert(RunRequest::pipeline(id()), art);
        let found = store.get(&RunRequest::counting(id())).expect("subsumed");
        assert_eq!(found.program_bytes, 42);
        // Sweep lookups do not fall back to pipeline artifacts.
        assert!(store
            .get(&RunRequest::new(id(), SinkKind::ICacheSweep))
            .is_none());
    }

    #[test]
    fn degraded_slots_resolve_to_their_failure() {
        let mut store = ArtifactStore::new();
        let failure = RunFailure::panicked(0, "boom");
        store.insert_failure(RunRequest::pipeline(id()), failure.clone());
        // Direct and subsumed lookups both see the degradation.
        for request in [RunRequest::pipeline(id()), RunRequest::counting(id())] {
            assert!(store.get(&request).is_none());
            match store.resolve(&request) {
                Err(ResolveError::Degraded(f)) => assert_eq!(f, failure),
                other => panic!("expected Degraded, got {other:?}"),
            }
        }
        let failures: Vec<_> = store.failures().collect();
        assert_eq!(failures.len(), 1);
        // Successful-pair iteration skips the degraded slot.
        assert_eq!(store.iter().count(), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn unplanned_lookup_is_a_typed_error() {
        let store = ArtifactStore::new();
        match store.resolve(&RunRequest::counting(id())) {
            Err(ResolveError::Unplanned(req)) => {
                assert_eq!(req, RunRequest::counting(id()));
            }
            other => panic!("expected Unplanned, got {other:?}"),
        }
    }
}
