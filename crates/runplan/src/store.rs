//! The in-memory artifact store experiments read instead of invoking
//! interpreters.

use interp_core::{RunArtifact, RunRequest};
use std::collections::BTreeMap;

/// Memoized run artifacts keyed by the [`RunRequest`] that produced them.
///
/// Lookups understand the planner's subsumption rule: asking for a
/// counting artifact when only the pipeline artifact exists returns the
/// pipeline artifact (which carries the identical counters plus timing).
#[derive(Debug, Clone, Default)]
pub struct ArtifactStore {
    map: BTreeMap<RunRequest, RunArtifact>,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// Record `artifact` as the result of `request`.
    pub fn insert(&mut self, request: RunRequest, artifact: RunArtifact) {
        self.map.insert(request, artifact);
    }

    /// The artifact for `request`, resolving subsumption (a counting
    /// lookup is satisfied by the pipeline artifact for the same
    /// workload).
    pub fn get(&self, request: &RunRequest) -> Option<&RunArtifact> {
        self.map.get(request).or_else(|| {
            request
                .subsumed_by()
                .and_then(|stronger| self.map.get(&stronger))
        })
    }

    /// The artifact for `request`.
    ///
    /// # Panics
    ///
    /// Panics if the request was never planned — an experiment consuming
    /// a store must have contributed its requests to the plan that built
    /// it; anything else is a harness bug.
    pub fn expect(&self, request: &RunRequest) -> &RunArtifact {
        self.get(request)
            .unwrap_or_else(|| unreachable_missing(request))
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate stored `(request, artifact)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&RunRequest, &RunArtifact)> {
        self.map.iter()
    }
}

// Out-of-line so the panic message machinery stays off `expect`'s happy
// path.
#[cold]
#[allow(clippy::panic)]
fn unreachable_missing(request: &RunRequest) -> ! {
    panic!("artifact for `{request}` was never planned — experiment requests and plan diverged")
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::{Language, RunArtifact, Scale, SinkKind, WorkloadId};

    fn id() -> WorkloadId {
        WorkloadId::macro_bench(Language::Tclite, "des", Scale::Test)
    }

    #[test]
    fn exact_lookup_round_trips() {
        let mut store = ArtifactStore::new();
        store.insert(RunRequest::counting(id()), RunArtifact::empty());
        assert!(store.get(&RunRequest::counting(id())).is_some());
        assert!(store.get(&RunRequest::pipeline(id())).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn counting_lookup_resolves_to_pipeline_artifact() {
        let mut store = ArtifactStore::new();
        let mut art = RunArtifact::empty();
        art.program_bytes = 42;
        store.insert(RunRequest::pipeline(id()), art);
        let found = store.get(&RunRequest::counting(id())).expect("subsumed");
        assert_eq!(found.program_bytes, 42);
        // Sweep lookups do not fall back to pipeline artifacts.
        assert!(store
            .get(&RunRequest::new(id(), SinkKind::ICacheSweep))
            .is_none());
    }
}
