//! Supervision vocabulary: typed per-run failures and the supervisor's
//! retry/deadline policy.
//!
//! A supervised plan never dies with one run. Each slot's execution is
//! isolated behind `catch_unwind`, bounded by a fuel and/or wall-clock
//! deadline, and classified on failure: *transient* failures (injected
//! faults, tripped limits, deadlines) earn deterministic bounded
//! retries, while panics quarantine the slot immediately. Whatever is
//! still failing when retries run out lands in the
//! [`crate::ArtifactStore`] as a [`RunFailure`], and every renderer
//! degrades that cell instead of crashing the report.

use std::fmt;
use std::time::Duration;

/// Why a supervised run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The worker panicked mid-run (or its result slot was poisoned).
    /// Interpreter state is suspect, so the slot quarantines at once —
    /// no retries.
    Panicked,
    /// The run crossed its fuel deadline (`--timeout-fuel` simulated
    /// host steps, enforced cooperatively at guard polls) or its
    /// wall-clock deadline (enforced by the watchdog thread).
    DeadlineExceeded,
    /// The run stopped with a typed guard fault: injected corruption, a
    /// tripped resource limit, a failed self-check, a dropped artifact.
    Faulted,
}

impl FailureKind {
    /// Short stable tag for cells and logs.
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Panicked => "panicked",
            FailureKind::DeadlineExceeded => "deadline",
            FailureKind::Faulted => "faulted",
        }
    }

    /// True if a clean re-run can plausibly clear the failure. Panics
    /// are permanent: retrying an interpreter whose invariants already
    /// broke once would launder a robustness bug into flakiness.
    pub fn is_transient(&self) -> bool {
        !matches!(self, FailureKind::Panicked)
    }
}

/// A typed, renderable failure for one planned request: what happened,
/// on which attempt the supervisor gave up, and the detail string for
/// the plan-level failure report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFailure {
    /// The failure taxonomy bucket.
    pub kind: FailureKind,
    /// Zero-based attempt index on which the run last failed (so a run
    /// that exhausted `retries = 2` reports `attempt == 2`).
    pub attempt: u32,
    /// Human-readable cause for the stderr failure report.
    pub detail: String,
}

impl RunFailure {
    /// A panic (or poisoned slot) on `attempt`.
    pub fn panicked(attempt: u32, detail: impl Into<String>) -> Self {
        RunFailure { kind: FailureKind::Panicked, attempt, detail: detail.into() }
    }

    /// A fuel or wall-clock deadline trip on `attempt`.
    pub fn deadline(attempt: u32, detail: impl Into<String>) -> Self {
        RunFailure { kind: FailureKind::DeadlineExceeded, attempt, detail: detail.into() }
    }

    /// A typed guard fault on `attempt`.
    pub fn faulted(attempt: u32, detail: impl Into<String>) -> Self {
        RunFailure { kind: FailureKind::Faulted, attempt, detail: detail.into() }
    }

    /// The marker renderers print in place of a numeric cell. Carries
    /// only the failure kind — details vary in length and belong in the
    /// stderr report, while cells must stay short and byte-stable.
    pub fn cell(&self) -> String {
        format!("DEGRADED({})", self.kind.label())
    }
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on attempt {}: {}",
            self.kind.label(),
            self.attempt,
            self.detail
        )
    }
}

/// The supervisor's policy: how often to retry transient failures and
/// which deadlines bound each attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// Maximum re-executions after the first attempt for failures
    /// classified transient. `Panicked` never retries.
    pub retries: u32,
    /// Fuel deadline: a cap on simulated host steps per attempt, mapped
    /// onto `Limits::max_host_steps` and enforced cooperatively at the
    /// interpreters' guard polls. Deterministic — the same run always
    /// trips at the same step — so this is the deadline `repro` exposes.
    pub timeout_fuel: Option<u64>,
    /// Wall-clock deadline per attempt, enforced by the watchdog
    /// thread. Inherently nondeterministic (a loaded machine can flag a
    /// healthy run), so it is off by default and meant for interactive
    /// use and supervision tests, not for reproducible reports.
    pub wall_deadline: Option<Duration>,
}

impl SuperviseConfig {
    /// Default policy: one retry for transient failures, no deadlines.
    pub const fn new() -> Self {
        SuperviseConfig { retries: 1, timeout_fuel: None, wall_deadline: None }
    }

    /// Builder-style override of `retries`.
    pub const fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Builder-style override of `timeout_fuel`.
    pub const fn with_timeout_fuel(mut self, fuel: u64) -> Self {
        self.timeout_fuel = Some(fuel);
        self
    }

    /// Builder-style override of `wall_deadline`.
    pub const fn with_wall_deadline(mut self, deadline: Duration) -> Self {
        self.wall_deadline = Some(deadline);
        self
    }
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig::new()
    }
}

/// Deterministic exponential backoff for bounded retries: `base`
/// doubled per attempt (attempt 1 → `base`, attempt 2 → `2·base`, …),
/// saturating at `cap`. Pure — callers that want jitter layer it on
/// top (see the serve module's wait backoff).
pub fn backoff_delay(base: Duration, attempt: u32, cap: Duration) -> Duration {
    let base = base.max(Duration::from_millis(1));
    let doublings = attempt.saturating_sub(1).min(16);
    base.saturating_mul(1u32 << doublings).min(cap.max(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_quarantine_transients_retry() {
        assert!(!FailureKind::Panicked.is_transient());
        assert!(FailureKind::DeadlineExceeded.is_transient());
        assert!(FailureKind::Faulted.is_transient());
    }

    #[test]
    fn cells_carry_kind_only() {
        let f = RunFailure::deadline(2, "ran 5000000 steps, cap 1000");
        assert_eq!(f.cell(), "DEGRADED(deadline)");
        let shown = f.to_string();
        assert!(shown.contains("attempt 2") && shown.contains("cap 1000"), "{shown}");
    }

    #[test]
    fn config_builders_compose() {
        let c = SuperviseConfig::new()
            .with_retries(3)
            .with_timeout_fuel(1_000_000)
            .with_wall_deadline(Duration::from_secs(5));
        assert_eq!(c.retries, 3);
        assert_eq!(c.timeout_fuel, Some(1_000_000));
        assert_eq!(c.wall_deadline, Some(Duration::from_secs(5)));
        assert_eq!(SuperviseConfig::default().retries, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(1);
        assert_eq!(backoff_delay(base, 1, cap), Duration::from_millis(10));
        assert_eq!(backoff_delay(base, 2, cap), Duration::from_millis(20));
        assert_eq!(backoff_delay(base, 5, cap), Duration::from_millis(160));
        assert_eq!(backoff_delay(base, 30, cap), cap, "saturates at the cap");
        // Attempt 0 behaves like attempt 1, and a zero base is bumped
        // to a real interval so retry loops cannot spin.
        assert_eq!(backoff_delay(base, 0, cap), Duration::from_millis(10));
        assert_eq!(backoff_delay(Duration::ZERO, 1, cap), Duration::from_millis(1));
        // A cap below base never undercuts base (callers pass sane
        // caps; this keeps the function total).
        assert_eq!(backoff_delay(base, 9, Duration::from_millis(5)), base);
    }
}
