//! Multi-writer cache coordination properties, in-process: two
//! concurrent journaled campaigns over one cache must execute each run
//! exactly once between them, a claim left by a dead writer must not
//! block anyone, and a live holder's lock must surface as a typed
//! timeout rather than a hang.

use interp_core::{ConsoleDigest, Language, RunArtifact, RunRequest, Scale, WorkloadId};
use interp_runplan::journal::{self, load_bytes, JournalConfig};
use interp_runplan::lock::{acquire, LockConfig};
use interp_runplan::{execute_journaled_with, JournalErrorKind, Plan, SuperviseConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

const EPOCH: u64 = 0xC0_0D11;

/// Same shape as the journal_resume suite: six non-subsuming requests.
fn requests() -> Vec<RunRequest> {
    [
        (Language::Mipsi, "des"),
        (Language::Mipsi, "compress"),
        (Language::Tclite, "des"),
        (Language::Javelin, "des"),
        (Language::Perlite, "des"),
        (Language::C, "des"),
    ]
    .into_iter()
    .map(|(lang, name)| RunRequest::pipeline(WorkloadId::macro_bench(lang, name, Scale::Test)))
    .collect()
}

fn probe_artifact(request: &RunRequest) -> RunArtifact {
    let mut art = RunArtifact::empty();
    art.program_bytes = request.fingerprint() as usize;
    art.console = ConsoleDigest::of(&format!("OK {}\n", request.label()));
    art
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "interp-coord-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A journaled campaign over `plan` that counts every execution in the
/// shared `counts` map and dawdles a little so concurrent campaigns
/// genuinely overlap.
fn campaign(
    plan: &Plan,
    dir: &Path,
    resume: bool,
    counts: &Mutex<BTreeMap<RunRequest, u32>>,
) -> interp_runplan::ResumeReport {
    let config = SuperviseConfig::new();
    let jconfig = JournalConfig::new(dir).with_epoch(EPOCH).with_resume(resume);
    let (_, report) = execute_journaled_with(plan, 2, &config, &jconfig, |request, _| {
        *counts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(*request)
            .or_insert(0) += 1;
        std::thread::sleep(Duration::from_millis(2));
        Ok(probe_artifact(request))
    })
    .expect("journaled execution");
    report
}

/// The tentpole invariant, in-process: two concurrent campaigns over one
/// empty cache split the plan between them — every run executes exactly
/// once across the pair, both campaigns end with the complete store, and
/// the journal holds every record cleanly.
#[test]
fn concurrent_campaigns_fill_one_cache_exactly_once() {
    let plan = Plan::build(requests());
    let dir = fresh_dir("pair");
    let counts: Mutex<BTreeMap<RunRequest, u32>> = Mutex::new(BTreeMap::new());

    // Align the starts so both campaigns are in flight together; each
    // run's deliberate dawdle keeps the overlap wide open while the
    // second campaign's non-resume open joins the first (live writers
    // present => no truncation).
    let start = std::sync::Barrier::new(2);
    let (first, second) = std::thread::scope(|scope| {
        let a = scope.spawn(|| {
            start.wait();
            campaign(&plan, &dir, false, &counts)
        });
        let b = scope.spawn(|| {
            start.wait();
            campaign(&plan, &dir, false, &counts)
        });
        (
            a.join().expect("first campaign"),
            b.join().expect("second campaign"),
        )
    });

    // Exactly-once across the pair: every request ran once, total
    // executed sums to the plan size, and each campaign accounts for
    // its full plan as reused + executed + reused-live.
    let counts = counts.into_inner().unwrap_or_else(|p| p.into_inner());
    for request in plan.requests() {
        assert_eq!(counts.get(request), Some(&1), "{request} execution count");
    }
    assert_eq!(first.executed + second.executed, plan.len());
    for (name, report) in [("first", &first), ("second", &second)] {
        assert_eq!(
            report.reused + report.executed + report.reused_live,
            plan.len(),
            "{name} campaign accounting: {report:?}"
        );
        assert!(report.defects.is_empty(), "{name}: {:?}", report.defects);
    }

    // The journal ends complete and clean.
    let bytes = std::fs::read(dir.join(journal::JOURNAL_FILE)).expect("journal");
    let loaded = load_bytes(&bytes, EPOCH);
    assert!(loaded.defects.is_empty(), "{:?}", loaded.defects);
    assert_eq!(loaded.records.len(), plan.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A claim and writer registration left behind by a dead process must
/// not block a new campaign: the stale state is swept on open and every
/// run still executes (exactly once, by this campaign).
#[test]
fn dead_writers_claims_are_swept_not_waited_on() {
    let plan = Plan::build(requests());
    let dir = fresh_dir("corpse");
    std::fs::create_dir_all(dir.join("writers")).expect("writers dir");
    std::fs::create_dir_all(dir.join("claims")).expect("claims dir");
    // A pid far above the kernel's pid_max: guaranteed dead.
    std::fs::write(dir.join("writers/corpse-token"), "pid 4000000000\n").expect("corpse session");
    let claimed = plan.requests()[0].fingerprint();
    std::fs::write(
        dir.join(format!("claims/{claimed:016x}")),
        "pid 4000000000\ntoken corpse-token\n",
    )
    .expect("corpse claim");

    let counts: Mutex<BTreeMap<RunRequest, u32>> = Mutex::new(BTreeMap::new());
    let report = campaign(&plan, &dir, false, &counts);
    assert_eq!(report.executed, plan.len(), "{report:?}");
    let counts = counts.into_inner().unwrap_or_else(|p| p.into_inner());
    assert!(counts.values().all(|&c| c == 1), "{counts:?}");
    assert!(
        !dir.join(format!("claims/{claimed:016x}")).exists(),
        "stale claim must be swept"
    );
    assert!(
        !dir.join("writers/corpse-token").exists(),
        "stale session must be swept"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A lock held by a *live* process past the configured patience is a
/// typed fatal error (the CLI maps it to exit 5), not a hang and not a
/// silent fallback to unlocked writes.
#[test]
fn live_lock_holder_times_out_as_typed_error() {
    let plan = Plan::build(requests());
    let dir = fresh_dir("timeout");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let guard = acquire(
        &LockConfig::for_dir(&dir, "squatter", EPOCH).with_timeout(Duration::from_secs(5)),
    )
    .expect("squat the lock");

    let config = SuperviseConfig::new();
    let jconfig = JournalConfig::new(&dir)
        .with_epoch(EPOCH)
        .with_lock_timeout(Duration::from_millis(200));
    let err = execute_journaled_with(&plan, 2, &config, &jconfig, |request, _| {
        Ok(probe_artifact(request))
    })
    .expect_err("must time out against a live holder");
    assert_eq!(err.kind, JournalErrorKind::LockTimeout, "{err}");

    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}
