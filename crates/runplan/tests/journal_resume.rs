//! Journal crash-safety properties: random-truncation recovery, exactly-
//! once resume accounting at several job counts, and the quarantine rule
//! (failures are never journaled).

use interp_core::{ConsoleDigest, Language, RunArtifact, RunRequest, Scale, WorkloadId};
use interp_guard::Rng64;
use interp_runplan::journal::{
    self, encode_record, load_bytes, record_spans, JournalConfig, JournalDefectKind,
};
use interp_runplan::{execute_journaled_with, Plan, RunFailure, SuperviseConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

const EPOCH: u64 = 0xA11C_E5ED;

/// Six non-subsuming requests, so `Plan::build` keeps all of them.
fn requests() -> Vec<RunRequest> {
    [
        (Language::Mipsi, "des"),
        (Language::Mipsi, "compress"),
        (Language::Tclite, "des"),
        (Language::Javelin, "des"),
        (Language::Perlite, "des"),
        (Language::C, "des"),
    ]
    .into_iter()
    .map(|(lang, name)| RunRequest::pipeline(WorkloadId::macro_bench(lang, name, Scale::Test)))
    .collect()
}

/// A unique, deterministic artifact per request — no real workload runs
/// in this file, so the mechanics tests stay instant.
fn probe_artifact(request: &RunRequest) -> RunArtifact {
    let mut art = RunArtifact::empty();
    art.program_bytes = request.fingerprint() as usize;
    art.console = ConsoleDigest::of(&format!("OK {}\n", request.label()));
    art
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "interp-journal-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A pristine journal image holding every request's probe artifact, in
/// request order.
fn pristine_journal() -> Vec<u8> {
    let mut bytes = journal::MAGIC.to_vec();
    for request in requests() {
        bytes.extend_from_slice(&encode_record(
            EPOCH,
            request.fingerprint(),
            &request.label(),
            &probe_artifact(&request),
        ));
    }
    bytes
}

/// The truncation property, ≥100 seeds: *every* prefix of a valid
/// journal either loads cleanly (cut on a record boundary) or reports
/// exactly one `TornTail` — and in both cases yields exactly the records
/// that lie wholly before the cut. No prefix can crash the loader, lose
/// an untouched record, or resurrect a torn one.
#[test]
fn every_truncation_prefix_recovers_cleanly() {
    let bytes = pristine_journal();
    let spans = record_spans(&bytes);
    assert_eq!(spans.len(), requests().len());
    let fingerprints: Vec<u64> = requests().iter().map(|r| r.fingerprint()).collect();

    let mut rng = Rng64::new(0x7A11_F00D);
    let mut boundary_cuts = 0usize;
    let mut torn_cuts = 0usize;
    for _seed in 0..128 {
        let cut = rng.index(0, bytes.len() + 1);
        let loaded = load_bytes(&bytes[..cut], EPOCH);

        let expected: Vec<u64> = spans
            .iter()
            .zip(&fingerprints)
            .filter(|(span, _)| span.end <= cut)
            .map(|(_, fp)| *fp)
            .collect();
        let got: Vec<u64> = loaded.records.keys().copied().collect();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort_unstable();
        assert_eq!(
            got, expected_sorted,
            "cut {cut}: wrong surviving record set"
        );

        let on_boundary =
            cut == 0 || cut == journal::MAGIC.len() || spans.iter().any(|s| s.end == cut);
        if on_boundary {
            boundary_cuts += 1;
            assert!(
                loaded.defects.is_empty(),
                "cut {cut} on a record boundary must load cleanly: {:?}",
                loaded.defects
            );
        } else {
            torn_cuts += 1;
            assert_eq!(loaded.defects.len(), 1, "cut {cut}: exactly one defect");
            assert_eq!(
                loaded.defects[0].kind,
                JournalDefectKind::TornTail,
                "cut {cut}: mid-record truncation is a torn tail"
            );
        }
    }
    // The sweep must actually exercise both arms.
    assert!(torn_cuts > 0, "no mid-record cut rolled in 128 seeds");
    assert!(boundary_cuts + torn_cuts == 128);
}

/// Exhaustive version of the same property over every single-byte
/// prefix, not just sampled cuts — cheap at this journal size and leaves
/// no untested offset.
#[test]
fn exhaustive_prefix_sweep_never_misclassifies() {
    let bytes = pristine_journal();
    let spans = record_spans(&bytes);
    for cut in 0..=bytes.len() {
        let loaded = load_bytes(&bytes[..cut], EPOCH);
        let expected = spans.iter().filter(|s| s.end <= cut).count();
        assert_eq!(loaded.records.len(), expected, "cut {cut}");
        let on_boundary =
            cut == 0 || cut == journal::MAGIC.len() || spans.iter().any(|s| s.end == cut);
        assert_eq!(loaded.defects.is_empty(), on_boundary, "cut {cut}");
        if !on_boundary {
            assert!(loaded
                .defects
                .iter()
                .all(|d| d.kind == JournalDefectKind::TornTail));
        }
    }
}

/// Run `plan` journaled into `dir` with the probe runner, returning the
/// per-request execution counts alongside the engine's results.
fn journaled_probe_run(
    plan: &Plan,
    jobs: usize,
    dir: &std::path::Path,
    resume: bool,
) -> (
    interp_runplan::ExecutedPlan,
    interp_runplan::ResumeReport,
    BTreeMap<RunRequest, u32>,
) {
    let counts: Mutex<BTreeMap<RunRequest, u32>> = Mutex::new(BTreeMap::new());
    let config = SuperviseConfig::new();
    let jconfig = JournalConfig::new(dir).with_epoch(EPOCH).with_resume(resume);
    let (executed, report) = execute_journaled_with(plan, jobs, &config, &jconfig, |request, _| {
        *counts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(*request)
            .or_insert(0) += 1;
        Ok(probe_artifact(request))
    })
    .expect("journaled execution");
    let counts = counts.into_inner().unwrap_or_else(|p| p.into_inner());
    (executed, report, counts)
}

/// Kill-and-resume mechanics: journal a partial plan (what a crashed
/// process would leave behind), then resume the full plan — serial and
/// parallel. The resumed run must execute each missing request exactly
/// once, execute reused requests zero times, and produce a store whose
/// content is identical to a cold run's.
#[test]
fn resume_executes_each_missing_run_exactly_once() {
    let all = requests();
    let full_plan = Plan::build(all.clone());
    let partial_plan = Plan::build(all[..3].to_vec());

    for jobs in [1usize, 8] {
        let cold_dir = fresh_dir(&format!("cold-{jobs}"));
        let (cold, cold_report, cold_counts) = journaled_probe_run(&full_plan, jobs, &cold_dir, false);
        assert_eq!(cold_report.reused, 0);
        assert_eq!(cold_report.journaled, all.len());
        assert!(cold_counts.values().all(|&c| c == 1), "{cold_counts:?}");

        // "Crash" after three runs: only the partial plan's artifacts
        // are in the journal.
        let crash_dir = fresh_dir(&format!("crash-{jobs}"));
        let (_, partial_report, _) = journaled_probe_run(&partial_plan, jobs, &crash_dir, false);
        assert_eq!(partial_report.journaled, 3);

        // Resume the full plan from the crashed journal.
        let (resumed, report, counts) = journaled_probe_run(&full_plan, jobs, &crash_dir, true);
        assert_eq!(report.planned, all.len());
        assert_eq!(report.reused, 3, "jobs {jobs}");
        assert_eq!(report.executed, all.len() - 3, "jobs {jobs}");
        assert!(report.defects.is_empty(), "jobs {jobs}: {:?}", report.defects);
        for request in &all[..3] {
            assert!(
                !counts.contains_key(request),
                "jobs {jobs}: reused {request} was re-executed"
            );
        }
        for request in &all[3..] {
            assert_eq!(counts.get(request), Some(&1), "jobs {jobs}: {request}");
        }

        // Identical store content, cold vs resumed.
        for request in full_plan.requests() {
            let a = cold.store.resolve(request).expect("cold artifact");
            let b = resumed.store.resolve(request).expect("resumed artifact");
            assert_eq!(
                a.content_hash(),
                b.content_hash(),
                "jobs {jobs}: {request} diverged after resume"
            );
        }
        // Reused slots carry zero attempts, executed ones at least one.
        for timing in &resumed.timings {
            let reused = all[..3].contains(&timing.request);
            assert_eq!(timing.attempts == 0, reused, "jobs {jobs}: {}", timing.request);
        }

        let _ = std::fs::remove_dir_all(&cold_dir);
        let _ = std::fs::remove_dir_all(&crash_dir);
    }
}

/// The quarantine rule: a run that fails is never written to the
/// journal, so a later resume re-attempts it instead of resurrecting the
/// failure from cache.
#[test]
fn failures_are_never_journaled() {
    let all = requests();
    let plan = Plan::build(all.clone());
    let poison = all[1];
    let dir = fresh_dir("quarantine");

    let config = SuperviseConfig::new().with_retries(0);
    let jconfig = JournalConfig::new(&dir).with_epoch(EPOCH);
    let (executed, report) = execute_journaled_with(&plan, 2, &config, &jconfig, |request, a| {
        if *request == poison {
            Err(RunFailure::faulted(a, "injected persistent fault"))
        } else {
            Ok(probe_artifact(request))
        }
    })
    .expect("journaled execution");
    assert!(executed.store.resolve(&poison).is_err());
    assert_eq!(report.journaled, all.len() - 1);

    // The journal holds everything except the poisoned run...
    let on_disk = std::fs::read(dir.join(journal::JOURNAL_FILE)).expect("journal");
    let loaded = load_bytes(&on_disk, EPOCH);
    assert!(loaded.defects.is_empty());
    assert!(!loaded.records.contains_key(&poison.fingerprint()));
    assert_eq!(loaded.records.len(), all.len() - 1);

    // ...so a healthy resume re-attempts exactly the poisoned run.
    let (resumed, report, counts) = journaled_probe_run(&plan, 2, &dir, true);
    assert_eq!(report.reused, all.len() - 1);
    assert_eq!(report.executed, 1);
    assert_eq!(counts.get(&poison), Some(&1));
    assert_eq!(counts.len(), 1);
    assert!(resumed.store.resolve(&poison).is_ok());

    let _ = std::fs::remove_dir_all(&dir);
}
