//! Supervision properties of the run-plan pool: panic quarantine,
//! deadline enforcement, deterministic bounded retries, and
//! job-count-invariant degraded reporting.

use interp_core::{Language, RunArtifact, RunRequest, Scale, WorkloadId};
use interp_runplan::{
    render_failures, supervise_with, FailureKind, Plan, ResolveError, RunFailure,
    SuperviseConfig,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A plan over distinct pipeline requests named after the macro registry.
fn plan(n: usize) -> Plan {
    let names = ["des", "compress", "eqntott", "espresso", "li"];
    Plan::build((0..n).map(|i| {
        RunRequest::pipeline(WorkloadId::macro_bench(
            Language::Mipsi,
            names[i % names.len()],
            if i / names.len() == 0 { Scale::Test } else { Scale::Paper },
        ))
    }))
}

fn artifact_for(request: &RunRequest) -> RunArtifact {
    let mut art = RunArtifact::empty();
    art.program_bytes = request.workload.name.len();
    art
}

#[test]
fn panicking_workload_quarantines_without_killing_the_plan() {
    let plan = plan(5);
    let poison = plan.requests()[2];
    let executions = AtomicUsize::new(0);
    // Plenty of retry budget — the point is that panics must not use it.
    let config = SuperviseConfig::new().with_retries(3);
    let executed = supervise_with(&plan, 4, &config, |request, _attempt| {
        if *request == poison {
            executions.fetch_add(1, Ordering::Relaxed);
            panic!("deliberate test panic in {request}");
        }
        Ok(artifact_for(request))
    });

    // The panicking slot is degraded with the panic message; every other
    // slot completed normally.
    match executed.store.resolve(&poison) {
        Err(ResolveError::Degraded(failure)) => {
            assert_eq!(failure.kind, FailureKind::Panicked);
            assert_eq!(failure.attempt, 0, "panics must quarantine on attempt 0");
            assert!(failure.detail.contains("deliberate test panic"), "{failure}");
        }
        other => panic!("expected Degraded(Panicked), got {other:?}"),
    }
    assert_eq!(executions.load(Ordering::Relaxed), 1, "quarantine means no retries");
    for request in plan.requests() {
        if *request != poison {
            assert!(executed.store.resolve(request).is_ok(), "{request} degraded");
        }
    }
    assert_eq!(executed.failure_count(), 1);
    let report = render_failures(&executed);
    assert!(report.contains("1 of 5 run(s) failed"), "{report}");
    assert!(report.contains("panicked on attempt 0"), "{report}");
}

#[test]
fn wall_deadline_watchdog_flags_wedged_runs_until_retries_exhaust() {
    let plan = plan(3);
    let wedged = plan.requests()[1];
    let executions = AtomicUsize::new(0);
    let config = SuperviseConfig::new()
        .with_retries(2)
        .with_wall_deadline(Duration::from_millis(15));
    let executed = supervise_with(&plan, 2, &config, |request, _attempt| {
        if *request == wedged {
            executions.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(60));
        }
        Ok(artifact_for(request))
    });

    match executed.store.resolve(&wedged) {
        Err(ResolveError::Degraded(failure)) => {
            assert_eq!(failure.kind, FailureKind::DeadlineExceeded);
            // Deadlines are transient: the supervisor spent the whole
            // retry budget before giving up.
            assert_eq!(failure.attempt, 2);
        }
        other => panic!("expected Degraded(DeadlineExceeded), got {other:?}"),
    }
    assert_eq!(
        executions.load(Ordering::Relaxed),
        3,
        "retries + 1 attempts for a persistent deadline"
    );
    let timing = executed
        .timings
        .iter()
        .find(|t| t.request == wedged)
        .expect("timing row");
    assert_eq!(timing.attempts, 3);
    // The healthy slots were untouched by the wedged one.
    assert_eq!(executed.failure_count(), 1);
}

#[test]
fn transient_failure_recovers_on_retry_two_with_exact_accounting() {
    let plan = plan(6);
    let flaky = plan.requests()[4];
    let per_attempt = Mutex::new(BTreeMap::<u32, usize>::new());
    let config = SuperviseConfig::new().with_retries(2);
    let executed = supervise_with(&plan, 3, &config, |request, attempt| {
        if *request == flaky {
            *per_attempt
                .lock()
                .expect("probe lock")
                .entry(attempt)
                .or_insert(0) += 1;
            if attempt < 2 {
                return Err(RunFailure::faulted(attempt, "injected transient fault"));
            }
        }
        Ok(artifact_for(request))
    });

    // The run recovered: the final slot is a normal artifact.
    let art = executed.store.resolve(&flaky).expect("recovered on retry 2");
    assert_eq!(art.program_bytes, flaky.workload.name.len());
    assert!(!executed.is_degraded());
    assert_eq!(render_failures(&executed), "");

    // Exactly-once per round: attempts 0, 1, 2 each executed once.
    let counts = per_attempt.lock().expect("probe lock").clone();
    assert_eq!(counts, BTreeMap::from([(0, 1), (1, 1), (2, 1)]));
    let timing = executed
        .timings
        .iter()
        .find(|t| t.request == flaky)
        .expect("timing row");
    assert_eq!(timing.attempts, 3);
    // Healthy rows spent exactly one attempt.
    assert!(executed
        .timings
        .iter()
        .filter(|t| t.request != flaky)
        .all(|t| t.attempts == 1));
}

#[test]
fn degraded_output_is_byte_identical_across_job_counts() {
    let plan = plan(10);
    // Deterministic mixed failure pattern, a pure function of the
    // request and attempt: every third request panics, every fourth
    // faults persistently, one request recovers on its retry.
    let run = |request: &RunRequest, attempt: u32| {
        let ix = plan
            .requests()
            .iter()
            .position(|r| r == request)
            .expect("planned");
        match ix % 4 {
            1 if ix % 3 == 1 => Err(RunFailure::faulted(attempt, "persistent fault")),
            _ if ix % 3 == 0 && ix > 0 => {
                panic!("deliberate test panic at slot {ix}")
            }
            2 if attempt == 0 => Err(RunFailure::faulted(attempt, "flaky fault")),
            _ => Ok(artifact_for(request)),
        }
    };
    let config = SuperviseConfig::new().with_retries(1);
    let render = |jobs: usize| {
        let executed = supervise_with(&plan, jobs, &config, run);
        let mut cells = String::new();
        for request in plan.requests() {
            let cell = match executed.store.resolve(request) {
                Ok(art) => format!("{}", art.program_bytes),
                Err(ResolveError::Degraded(f)) => f.cell(),
                Err(ResolveError::Unplanned(_)) => panic!("{request} went missing"),
            };
            cells.push_str(&format!("{request} = {cell}\n"));
        }
        cells.push_str(&render_failures(&executed));
        let attempts: Vec<u32> = executed.timings.iter().map(|t| t.attempts).collect();
        (cells, attempts)
    };

    let (serial_cells, serial_attempts) = render(1);
    let (parallel_cells, parallel_attempts) = render(8);
    assert_eq!(serial_cells, parallel_cells, "degraded tables diverged across job counts");
    assert_eq!(serial_attempts, parallel_attempts, "retry accounting diverged");
    // Sanity: the pattern actually produced each degradation kind.
    assert!(serial_cells.contains("DEGRADED(panicked)"), "{serial_cells}");
    assert!(serial_cells.contains("DEGRADED(faulted)"), "{serial_cells}");
    assert!(serial_cells.contains("plan degraded:"), "{serial_cells}");
}

#[test]
fn fuel_deadline_stops_a_real_wedged_run_deterministically() {
    // A real workload under starvation fuel: the cooperative deadline
    // trips inside the interpreter at the same poll every time.
    let wedged = RunRequest::counting(WorkloadId::macro_bench(
        Language::Mipsi,
        "des",
        Scale::Test,
    ));
    let plan = Plan::build([wedged]);
    let config = SuperviseConfig::new().with_retries(1).with_timeout_fuel(1_000);
    let first = interp_runplan::execute_supervised(&plan, 1, &config);
    let second = interp_runplan::execute_supervised(&plan, 2, &config);
    for executed in [&first, &second] {
        match executed.store.resolve(&wedged) {
            Err(ResolveError::Degraded(failure)) => {
                assert_eq!(failure.kind, FailureKind::DeadlineExceeded);
                assert_eq!(failure.attempt, 1, "deadline is transient: retried once");
                assert!(failure.detail.contains("host step budget"), "{failure}");
            }
            other => panic!("expected Degraded(DeadlineExceeded), got {other:?}"),
        }
    }
    // Deterministic: both runs record the identical failure.
    let fail = |e: &interp_runplan::ExecutedPlan| {
        e.store.failures().map(|(_, f)| f.clone()).collect::<Vec<_>>()
    };
    assert_eq!(fail(&first), fail(&second));
}
