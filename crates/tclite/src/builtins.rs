//! Built-in command implementations.

use interp_core::TraceSink;
use interp_host::SimStr;

use crate::error::{Flow, TclError};
use crate::interp::{FrameState, ProcDef, Tclite};

impl<'a, S: TraceSink> Tclite<'a, S> {
    /// Execute a dispatched command (`words[0]` is the command name).
    pub(crate) fn run_command(
        &mut self,
        name: &str,
        words: &[(SimStr, String)],
    ) -> Result<Flow, TclError> {
        match name {
            "set" => self.cmd_set(words),
            "incr" => self.cmd_incr(words),
            "expr" => self.cmd_expr(words),
            "if" => self.cmd_if(words),
            "while" => self.cmd_while(words),
            "for" => self.cmd_for(words),
            "foreach" => self.cmd_foreach(words),
            "proc" => self.cmd_proc(words),
            "return" => {
                let value = match words.get(1) {
                    Some((w, _)) => *w,
                    None => self.m.str_alloc(b""),
                };
                self.set_result(value);
                Ok(Flow::Return)
            }
            "break" => Ok(Flow::Break),
            "continue" => Ok(Flow::Continue),
            "puts" => self.cmd_puts(words),
            "append" => self.cmd_append(words),
            "string" => self.cmd_string(words),
            "list" => self.cmd_list(words),
            "lindex" => self.cmd_lindex(words),
            "llength" => self.cmd_llength(words),
            "lappend" => self.cmd_lappend(words),
            "split" => self.cmd_split(words),
            "join" => self.cmd_join(words),
            "format" => self.cmd_format(words),
            "open" => self.cmd_open(words),
            "gets" => self.cmd_gets(words),
            "read" => self.cmd_read(words),
            "close" => self.cmd_close(words),
            "unset" => self.cmd_unset(words),
            "global" => self.cmd_global(words),
            "eval" => self.cmd_eval(words),
            _ if name.starts_with("tk_") => self.run_tk_command(name, words),
            _ => self.call_proc(name, words),
        }
    }

    fn need(
        &self,
        words: &[(SimStr, String)],
        n: usize,
        usage: &str,
    ) -> Result<(), TclError> {
        if words.len() < n {
            Err(TclError::new(format!(
                "wrong # args: should be \"{usage}\""
            )))
        } else {
            Ok(())
        }
    }

    /// Parse a word as an integer (charged), or error.
    pub(crate) fn word_int(&mut self, w: SimStr) -> Result<i64, TclError> {
        self.m.str_to_int(w).ok_or_else(|| {
            TclError::new(format!(
                "expected integer but got \"{}\"",
                self.m.peek_string(w)
            ))
        })
    }

    // ---- variables & arithmetic ----

    fn cmd_set(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "set varName ?newValue?")?;
        let (name, name_rs) = (words[1].0, words[1].1.clone());
        if let Some((value, _)) = words.get(2) {
            self.var_set(name, &name_rs, *value);
            self.set_result(*value);
        } else {
            let value = self.var_get(name, &name_rs)?;
            self.set_result(value);
        }
        Ok(Flow::Normal)
    }

    fn cmd_incr(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "incr varName ?increment?")?;
        let (name, name_rs) = (words[1].0, words[1].1.clone());
        let delta = match words.get(2) {
            Some((w, _)) => self.word_int(*w)?,
            None => 1,
        };
        let current = self.var_get(name, &name_rs)?;
        let v = self.word_int(current)?;
        self.m.alu();
        let formatted = self.m.str_from_int(v + delta);
        self.var_set(name, &name_rs, formatted);
        self.set_result(formatted);
        Ok(Flow::Normal)
    }

    fn cmd_expr(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "expr arg ?arg ...?")?;
        let src = if words.len() == 2 {
            words[1].0
        } else {
            // Concatenate arguments with spaces (charged).
            let mut b = self.m.builder_new(32);
            for (i, (w, _)) in words[1..].iter().enumerate() {
                if i > 0 {
                    self.m.builder_push(&mut b, b' ');
                }
                self.m.builder_push_str(&mut b, *w);
            }
            self.m.builder_finish(b)
        };
        let v = self.expr_eval(src)?;
        self.set_result_int(v);
        Ok(Flow::Normal)
    }

    // ---- control flow ----

    fn cmd_if(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        let ctrl = self.rt.control;
        self.m.routine(ctrl, |m| m.alu_n(8)); // loop/branch bookkeeping

        self.need(words, 3, "if expr body ?elseif expr body? ?else body?")?;
        let mut i = 1;
        loop {
            let cond = words[i].0;
            let taken = self.expr_eval(cond)? != 0;
            if taken {
                return self.eval(words[i + 1].0);
            }
            match words.get(i + 2).map(|(_, s)| s.as_str()) {
                Some("elseif") => {
                    i += 3;
                    if i + 1 >= words.len() {
                        return Err(TclError::new("wrong # args after elseif"));
                    }
                }
                Some("else") => {
                    let body = words.get(i + 3).ok_or_else(|| {
                        TclError::new("wrong # args: no script after else")
                    })?;
                    return self.eval(body.0);
                }
                None => {
                    self.set_result_bytes(b"");
                    return Ok(Flow::Normal);
                }
                Some(other) => {
                    return Err(TclError::new(format!(
                        "invalid if clause \"{other}\""
                    )))
                }
            }
        }
    }

    fn cmd_while(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        let ctrl = self.rt.control;
        self.m.routine(ctrl, |m| m.alu_n(8)); // loop/branch bookkeeping

        self.need(words, 3, "while test command")?;
        let cond = words[1].0;
        let body = words[2].0;
        loop {
            // The condition is re-parsed on every trip (Tcl 7 semantics).
            if self.expr_eval(cond)? == 0 {
                break;
            }
            match self.eval(body)? {
                Flow::Break => break,
                Flow::Return => return Ok(Flow::Return),
                Flow::Continue | Flow::Normal => {}
            }
        }
        self.set_result_bytes(b"");
        Ok(Flow::Normal)
    }

    fn cmd_for(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        let ctrl = self.rt.control;
        self.m.routine(ctrl, |m| m.alu_n(8)); // loop/branch bookkeeping

        self.need(words, 5, "for start test next command")?;
        let (init, cond, step, body) = (words[1].0, words[2].0, words[3].0, words[4].0);
        self.eval(init)?;
        loop {
            if self.expr_eval(cond)? == 0 {
                break;
            }
            match self.eval(body)? {
                Flow::Break => break,
                Flow::Return => return Ok(Flow::Return),
                Flow::Continue | Flow::Normal => {}
            }
            self.eval(step)?;
        }
        self.set_result_bytes(b"");
        Ok(Flow::Normal)
    }

    fn cmd_foreach(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        let ctrl = self.rt.control;
        self.m.routine(ctrl, |m| m.alu_n(8)); // loop/branch bookkeeping

        self.need(words, 4, "foreach varName list command")?;
        let var_rs = words[1].1.clone();
        let var = words[1].0;
        let elements = self.list_elements(words[2].0);
        let body = words[3].0;
        for element in elements {
            self.var_set(var, &var_rs, element);
            match self.eval(body)? {
                Flow::Break => break,
                Flow::Return => return Ok(Flow::Return),
                Flow::Continue | Flow::Normal => {}
            }
        }
        self.set_result_bytes(b"");
        Ok(Flow::Normal)
    }

    fn cmd_proc(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 4, "proc name args body")?;
        let name = words[1].1.clone();
        let params: Vec<String> = {
            let elems = self.list_elements(words[2].0);
            elems
                .into_iter()
                .map(|e| self.m.peek_string(e))
                .collect()
        };
        let body = words[3].0;
        self.procs.insert(name, ProcDef { params, body });
        // A (re)defined proc can shadow a cached command resolution.
        self.cmd_ic.clear();
        self.set_result_bytes(b"");
        Ok(Flow::Normal)
    }

    pub(crate) fn call_proc(
        &mut self,
        name: &str,
        words: &[(SimStr, String)],
    ) -> Result<Flow, TclError> {
        let Some(def) = self.procs.get(name) else {
            return Err(TclError::new(format!("invalid command name \"{name}\"")));
        };
        let params = def.params.clone();
        let body = def.body;
        if words.len() - 1 != params.len() {
            return Err(TclError::new(format!(
                "wrong # args for \"{name}\": expected {}, got {}",
                params.len(),
                words.len() - 1
            )));
        }
        // Frame setup: allocate the local symbol table, bind parameters.
        let proc_routine = self.rt.proc_call;
        self.m.enter(proc_routine);
        let vars = self.m.hash_new(16);
        self.frames.push(FrameState {
            vars,
            global_links: Default::default(),
        });
        // Variable resolutions cached in the caller's scope must not
        // leak into (or survive) the callee's frame.
        self.var_ic.clear();
        for (param, (value, _)) in params.iter().zip(&words[1..]) {
            let name_sim = self.m.str_alloc(param.as_bytes());
            let copy = self.m.str_copy(*value);
            self.var_set(name_sim, param, copy);
        }
        self.m.leave();
        let flow = self.eval(body);
        self.frames.pop();
        self.var_ic.clear();
        match flow? {
            Flow::Return | Flow::Normal => Ok(Flow::Normal),
            other => Ok(other), // break/continue escape the proc (error-ish, tolerated)
        }
    }

    // ---- strings & output ----

    fn cmd_puts(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "puts ?-nonewline? ?fileId? string")?;
        let mut rest: Vec<&(SimStr, String)> = words[1..].iter().collect();
        let mut newline = true;
        if rest.first().map(|(_, s)| s.as_str()) == Some("-nonewline") {
            newline = false;
            rest.remove(0);
        }
        let (fd, text) = match rest.len() {
            1 => (interp_host::FD_CONSOLE, rest[0].0),
            2 => {
                let handle = &rest[0].1;
                let fd = *self.files.get(handle).ok_or_else(|| {
                    TclError::new(format!("can not find channel named \"{handle}\""))
                })?;
                (fd, rest[1].0)
            }
            _ => return Err(TclError::new("wrong # args to puts")),
        };
        let io = self.rt.io;
        let len = self.m.lw(text.0);
        self.m.routine(io, |m| {
            m.alu_n(4);
            m.sys_write(fd, text.data(), len);
            if newline {
                let nl = m.str_alloc(b"\n");
                m.sys_write(fd, nl.data(), 1);
            }
        });
        self.set_result_bytes(b"");
        Ok(Flow::Normal)
    }

    fn cmd_append(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 3, "append varName value ?value ...?")?;
        let (name, name_rs) = (words[1].0, words[1].1.clone());
        let base = self.var_get(name, &name_rs).unwrap_or_else(|_| {
            // append creates missing variables.
            self.m.str_alloc(b"")
        });
        let mut b = self.m.builder_new(32);
        self.m.builder_push_str(&mut b, base);
        for (w, _) in &words[2..] {
            self.m.builder_push_str(&mut b, *w);
        }
        let value = self.m.builder_finish(b);
        self.var_set(name, &name_rs, value);
        self.set_result(value);
        Ok(Flow::Normal)
    }

    fn cmd_string(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 3, "string option arg ?arg?")?;
        let string_routine = self.rt.string;
        match words[1].1.as_str() {
            "length" => {
                let n = self.m.routine(string_routine, |m| m.lw(words[2].0 .0));
                self.set_result_int(i64::from(n));
            }
            "index" => {
                self.need(words, 4, "string index string charIndex")?;
                let i = self.word_int(words[3].0)?;
                let s = words[2].0;
                let len = self.m.str_len(s);
                if i >= 0 && (i as u32) < len {
                    let c = self.m.str_byte(s, i as u32);
                    self.set_result_bytes(&[c]);
                } else {
                    self.set_result_bytes(b"");
                }
            }
            "range" => {
                self.need(words, 5, "string range string first last")?;
                let first = self.word_int(words[3].0)?.max(0) as u32;
                let last = self.word_int(words[4].0)?;
                let s = words[2].0;
                let len = self.m.str_len(s);
                let last = if last < 0 { 0 } else { (last as u32 + 1).min(len) };
                let piece = if first < last {
                    self.m.str_substr(s, first, last - first)
                } else {
                    self.m.str_alloc(b"")
                };
                self.set_result(piece);
            }
            "ord" => {
                // Character code of the first byte (convenience subcommand;
                // Tcl 7 scripts used `scan %c` for this).
                let s = words[2].0;
                let len = self.m.str_len(s);
                let v = if len > 0 {
                    i64::from(self.m.str_byte(s, 0))
                } else {
                    -1
                };
                self.set_result_int(v);
            }
            "compare" => {
                self.need(words, 4, "string compare string1 string2")?;
                let ord = self.m.str_cmp(words[2].0, words[3].0);
                self.set_result_int(match ord {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                });
            }
            "first" => {
                self.need(words, 4, "string first needle haystack")?;
                // Naive charged substring search.
                let needle = self.m.peek_str(words[2].0);
                let hay = words[3].0;
                let hay_len = self.m.str_len(hay);
                let mut found: i64 = -1;
                let string_routine = self.rt.string;
                self.m.enter(string_routine);
                'outer: for start in 0..hay_len.saturating_sub(needle.len() as u32 - 1) {
                    for (k, &nc) in needle.iter().enumerate() {
                        let c = self.m.str_byte(hay, start + k as u32);
                        if c != nc {
                            continue 'outer;
                        }
                    }
                    found = i64::from(start);
                    break;
                }
                self.m.leave();
                self.set_result_int(found);
            }
            other => {
                return Err(TclError::new(format!(
                    "bad string option \"{other}\""
                )))
            }
        }
        Ok(Flow::Normal)
    }

    // ---- lists ----

    /// Parse a list string into elements (charged scan, brace-aware).
    pub(crate) fn list_elements(&mut self, list: SimStr) -> Vec<SimStr> {
        let bytes = self.m.peek_str(list);
        let len = bytes.len() as u32;
        let list_routine = self.rt.list;
        self.m.enter(list_routine);
        let mut out = Vec::new();
        let mut i: u32 = 0;
        while i < len {
            while i < len && bytes[i as usize].is_ascii_whitespace() {
                self.charge_scan(list, i);
                i += 1;
            }
            if i >= len {
                break;
            }
            if bytes[i as usize] == b'{' {
                let mut depth = 1;
                let mut j = i + 1;
                while j < len && depth > 0 {
                    self.charge_scan(list, j);
                    match bytes[j as usize] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let end = if depth == 0 { j - 1 } else { j };
                out.push(self.m.str_substr(list, i + 1, end - (i + 1)));
                i = j;
            } else {
                let start = i;
                while i < len && !bytes[i as usize].is_ascii_whitespace() {
                    self.charge_scan(list, i);
                    i += 1;
                }
                out.push(self.m.str_substr(list, start, i - start));
            }
        }
        self.m.leave();
        out
    }

    /// Build a list string from elements (brace-quotes elements containing
    /// whitespace; charged).
    pub(crate) fn build_list(&mut self, elements: &[SimStr]) -> SimStr {
        let list_routine = self.rt.list;
        self.m.enter(list_routine);
        let mut b = self.m.builder_new(32);
        for (i, &e) in elements.iter().enumerate() {
            if i > 0 {
                self.m.builder_push(&mut b, b' ');
            }
            let bytes = self.m.peek_str(e);
            let needs_braces =
                bytes.is_empty() || bytes.iter().any(|c| c.is_ascii_whitespace());
            if needs_braces {
                self.m.builder_push(&mut b, b'{');
                self.m.builder_push_str(&mut b, e);
                self.m.builder_push(&mut b, b'}');
            } else {
                self.m.builder_push_str(&mut b, e);
            }
        }
        let s = self.m.builder_finish(b);
        self.m.leave();
        s
    }

    fn cmd_list(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        let elements: Vec<SimStr> = words[1..].iter().map(|(w, _)| *w).collect();
        let s = self.build_list(&elements);
        self.set_result(s);
        Ok(Flow::Normal)
    }

    fn cmd_lindex(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 3, "lindex list index")?;
        let idx = self.word_int(words[2].0)?;
        let elements = self.list_elements(words[1].0);
        match usize::try_from(idx).ok().and_then(|i| elements.get(i)) {
            Some(&e) => self.set_result(e),
            None => self.set_result_bytes(b""),
        }
        Ok(Flow::Normal)
    }

    fn cmd_llength(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "llength list")?;
        let n = self.list_elements(words[1].0).len();
        self.set_result_int(n as i64);
        Ok(Flow::Normal)
    }

    fn cmd_lappend(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 3, "lappend varName value ?value ...?")?;
        let (name, name_rs) = (words[1].0, words[1].1.clone());
        let base = self
            .var_get(name, &name_rs)
            .unwrap_or_else(|_| self.m.str_alloc(b""));
        let mut elements = self.list_elements(base);
        elements.extend(words[2..].iter().map(|(w, _)| *w));
        let s = self.build_list(&elements);
        self.var_set(name, &name_rs, s);
        self.set_result(s);
        Ok(Flow::Normal)
    }

    fn cmd_split(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "split string ?splitChars?")?;
        let seps = match words.get(2) {
            Some((w, _)) => self.m.peek_str(*w),
            None => b" \t\n".to_vec(),
        };
        let s = words[1].0;
        let bytes = self.m.peek_str(s);
        let list_routine = self.rt.list;
        self.m.enter(list_routine);
        let mut elements = Vec::new();
        let mut start: u32 = 0;
        for (i, &c) in bytes.iter().enumerate() {
            self.charge_scan(s, i as u32);
            if seps.contains(&c) {
                elements.push(self.m.str_substr(s, start, i as u32 - start));
                start = i as u32 + 1;
            }
        }
        elements.push(self.m.str_substr(s, start, bytes.len() as u32 - start));
        self.m.leave();
        let out = self.build_list(&elements);
        self.set_result(out);
        Ok(Flow::Normal)
    }

    fn cmd_join(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "join list ?joinString?")?;
        let sep = match words.get(2) {
            Some((w, _)) => self.m.peek_str(*w),
            None => b" ".to_vec(),
        };
        let elements = self.list_elements(words[1].0);
        let mut b = self.m.builder_new(32);
        for (i, &e) in elements.iter().enumerate() {
            if i > 0 {
                self.m.builder_push_bytes(&mut b, &sep);
            }
            self.m.builder_push_str(&mut b, e);
        }
        let s = self.m.builder_finish(b);
        self.set_result(s);
        Ok(Flow::Normal)
    }

    fn cmd_format(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "format formatString ?arg ...?")?;
        let fmt = self.m.peek_str(words[1].0);
        let fmt_sim = words[1].0;
        let string_routine = self.rt.string;
        self.m.enter(string_routine);
        let mut b = self.m.builder_new(32);
        let mut arg_i = 2;
        let mut i = 0usize;
        while i < fmt.len() {
            self.charge_scan(fmt_sim, i as u32);
            if fmt[i] == b'%' && i + 1 < fmt.len() {
                // Parse optional zero-pad width.
                let mut j = i + 1;
                let mut width = 0usize;
                let mut zero = false;
                if fmt[j] == b'0' {
                    zero = true;
                    j += 1;
                }
                while j < fmt.len() && fmt[j].is_ascii_digit() {
                    width = width * 10 + (fmt[j] - b'0') as usize;
                    j += 1;
                }
                let spec = fmt.get(j).copied().unwrap_or(b'%');
                match spec {
                    b'%' => self.m.builder_push(&mut b, b'%'),
                    b'd' | b's' | b'c' => {
                        let Some((w, _)) = words.get(arg_i) else {
                            self.m.leave();
                            return Err(TclError::new("not enough arguments for format"));
                        };
                        arg_i += 1;
                        match spec {
                            b'd' => {
                                let v = self.word_int(*w)?;
                                let text = v.to_string();
                                let pad = width.saturating_sub(text.len());
                                for _ in 0..pad {
                                    self.m
                                        .builder_push(&mut b, if zero { b'0' } else { b' ' });
                                }
                                self.m.builder_push_bytes(&mut b, text.as_bytes());
                            }
                            b's' => {
                                let text = self.m.peek_str(*w);
                                let pad = width.saturating_sub(text.len());
                                for _ in 0..pad {
                                    self.m.builder_push(&mut b, b' ');
                                }
                                self.m.builder_push_str(&mut b, *w);
                            }
                            _ => {
                                let v = self.word_int(*w)? as u8;
                                self.m.builder_push(&mut b, v);
                            }
                        }
                    }
                    other => {
                        self.m.leave();
                        return Err(TclError::new(format!(
                            "bad format specifier %{}",
                            other as char
                        )));
                    }
                }
                i = j + 1;
            } else {
                self.m.builder_push(&mut b, fmt[i]);
                i += 1;
            }
        }
        let s = self.m.builder_finish(b);
        self.m.leave();
        self.set_result(s);
        Ok(Flow::Normal)
    }

    // ---- I/O ----

    fn cmd_open(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "open fileName")?;
        let name = words[1].1.clone();
        let fd = self.m.sys_open(&name);
        if fd < 0 {
            return Err(TclError::new(format!(
                "couldn't open \"{name}\": no such file"
            )));
        }
        self.file_counter += 1;
        let handle = format!("file{}", self.file_counter);
        self.files.insert(handle.clone(), fd);
        self.set_result_bytes(handle.as_bytes());
        Ok(Flow::Normal)
    }

    fn channel_fd(&self, handle: &str) -> Result<i32, TclError> {
        self.files.get(handle).copied().ok_or_else(|| {
            TclError::new(format!("can not find channel named \"{handle}\""))
        })
    }

    fn cmd_gets(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 3, "gets fileId varName")?;
        let fd = self.channel_fd(&words[1].1)?;
        let io = self.rt.io;
        // Read a line byte-at-a-time through the charged syscall path.
        let buf = self.m.malloc(4);
        let mut line = Vec::new();
        let mut eof = false;
        loop {
            let n = self.m.routine(io, |m| m.sys_read(fd, buf, 1));
            if n <= 0 {
                eof = true;
                break;
            }
            let c = self.m.lb(buf);
            if c == b'\n' {
                break;
            }
            line.push(c);
        }
        self.m.mfree(buf);
        let (name, name_rs) = (words[2].0, words[2].1.clone());
        let value = self.m.str_alloc(&line);
        self.var_set(name, &name_rs, value);
        if eof && line.is_empty() {
            self.set_result_int(-1);
        } else {
            self.set_result_int(line.len() as i64);
        }
        Ok(Flow::Normal)
    }

    fn cmd_read(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "read fileId ?numBytes?")?;
        let fd = self.channel_fd(&words[1].1)?;
        let limit = match words.get(2) {
            Some((w, _)) => self.word_int(*w)? as u32,
            None => 1 << 20,
        };
        let io = self.rt.io;
        let buf = self.m.malloc(limit.max(4));
        let n = self.m.routine(io, |m| m.sys_read(fd, buf, limit));
        let bytes = self.m.mem().read_bytes(buf, n.max(0) as usize);
        self.m.mfree(buf);
        let s = self.m.str_alloc(&bytes);
        self.set_result(s);
        Ok(Flow::Normal)
    }

    fn cmd_close(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "close fileId")?;
        let fd = self.channel_fd(&words[1].1)?;
        self.m.sys_close(fd);
        self.files.remove(&words[1].1);
        self.set_result_bytes(b"");
        Ok(Flow::Normal)
    }

    // ---- misc ----

    fn cmd_unset(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "unset varName")?;
        for (w, rs) in &words[1..] {
            self.var_unset(*w, rs)?;
        }
        self.set_result_bytes(b"");
        Ok(Flow::Normal)
    }

    fn cmd_global(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "global varName ?varName ...?")?;
        if let Some(frame) = self.frames.last_mut() {
            for (_, name) in &words[1..] {
                frame.global_links.insert(name.clone());
            }
        }
        self.m.alu_n(6);
        self.set_result_bytes(b"");
        Ok(Flow::Normal)
    }

    fn cmd_eval(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        self.need(words, 2, "eval arg ?arg ...?")?;
        let script = if words.len() == 2 {
            words[1].0
        } else {
            let mut b = self.m.builder_new(32);
            for (i, (w, _)) in words[1..].iter().enumerate() {
                if i > 0 {
                    self.m.builder_push(&mut b, b' ');
                }
                self.m.builder_push_str(&mut b, *w);
            }
            self.m.builder_finish(b)
        };
        self.eval(script)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::NullSink;
    use interp_host::Machine;

    fn run(src: &str) -> (String, String) {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        let result = tcl.run(src).expect("script ok");
        let console = String::from_utf8_lossy(m.console()).into_owned();
        (result, console)
    }

    #[test]
    fn while_loop_sums() {
        let (result, _) = run(
            "set s 0\nset i 1\nwhile {$i <= 10} {\n  set s [expr $s + $i]\n  incr i\n}\nset s",
        );
        assert_eq!(result, "55");
    }

    #[test]
    fn for_loop_with_break_continue() {
        let (result, _) = run(
            r#"set s 0
for {set i 0} {$i < 100} {incr i} {
    if {$i % 2 == 1} { continue }
    if {$i > 10} { break }
    set s [expr $s + $i]
}
set s"#,
        );
        assert_eq!(result, "30"); // 0+2+4+6+8+10
    }

    #[test]
    fn if_elseif_else() {
        let (result, _) = run("set x 5\nif {$x > 10} {set r big} elseif {$x > 3} {set r mid} else {set r small}\nset r");
        assert_eq!(result, "mid");
    }

    #[test]
    fn procs_with_locals_and_globals() {
        let (result, _) = run(
            r#"set counter 0
proc bump {by} {
    global counter
    set counter [expr $counter + $by]
}
proc double {x} { return [expr $x * 2] }
bump 3
bump 4
set r [double $counter]"#,
        );
        assert_eq!(result, "14");
    }

    #[test]
    fn recursion_factorial() {
        let (result, _) = run(
            r#"proc fact {n} {
    if {$n <= 1} { return 1 }
    return [expr $n * [fact [expr $n - 1]]]
}
fact 10"#,
        );
        assert_eq!(result, "3628800");
    }

    #[test]
    fn puts_writes_console() {
        let (_, console) = run("puts hello\nputs -nonewline wor\nputs ld");
        assert_eq!(console, "hello\nworld\n");
    }

    #[test]
    fn string_operations() {
        let (result, _) = run("string length abcdef");
        assert_eq!(result, "6");
        let (result, _) = run("string index abcdef 2");
        assert_eq!(result, "c");
        let (result, _) = run("string range abcdef 1 3");
        assert_eq!(result, "bcd");
        let (result, _) = run("string compare abc abd");
        assert_eq!(result, "-1");
        let (result, _) = run("string first cd abcdef");
        assert_eq!(result, "2");
        let (result, _) = run("string first zz abcdef");
        assert_eq!(result, "-1");
    }

    #[test]
    fn list_operations() {
        let (result, _) = run("llength {a b {c d} e}");
        assert_eq!(result, "4");
        let (result, _) = run("lindex {a b {c d} e} 2");
        assert_eq!(result, "c d");
        let (result, _) = run("set l {}\nlappend l x\nlappend l y z\nset l");
        assert_eq!(result, "x y z");
        let (result, _) = run("join [split a,b,c ,] -");
        assert_eq!(result, "a-b-c");
        let (result, _) = run("list a {b c} d");
        assert_eq!(result, "a {b c} d");
    }

    #[test]
    fn foreach_iterates() {
        let (result, _) = run("set s 0\nforeach x {1 2 3 4} {set s [expr $s + $x]}\nset s");
        assert_eq!(result, "10");
    }

    #[test]
    fn format_basic() {
        let (result, _) = run("format \"%s=%d (%03d) %c%%\" width 42 7 65");
        assert_eq!(result, "width=42 (007) A%");
    }

    #[test]
    fn append_and_incr_create() {
        let (result, _) = run("append out abc\nappend out def ghi\nset out");
        assert_eq!(result, "abcdefghi");
    }

    #[test]
    fn file_io() {
        let mut m = Machine::new(NullSink);
        m.fs_add_file("data.txt", b"line one\nline two\nrest".to_vec());
        let mut tcl = Tclite::new(&mut m);
        let result = tcl
            .run(
                r#"set f [open data.txt]
gets $f first
gets $f second
set rest [read $f]
close $f
list $first $second $rest"#,
            )
            .unwrap();
        assert_eq!(result, "{line one} {line two} rest");
    }

    #[test]
    fn eval_command() {
        let (result, _) = run("set cmd {expr 6 * 7}\neval $cmd");
        assert_eq!(result, "42");
    }

    #[test]
    fn unknown_command_errors() {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        let err = tcl.run("frobnicate 1 2").unwrap_err();
        assert!(err.message.contains("invalid command name"));
    }

    #[test]
    fn unset_removes() {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        tcl.run("set a 1\nunset a").unwrap();
        assert!(tcl.run("set b $a").is_err());
    }
}
