//! Tclite errors.

use interp_guard::GuardError;

/// A script-level error (unknown command, bad arity, malformed
/// expression…). Carries the message a real Tcl interpreter would put in
/// `errorInfo`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TclError {
    /// Human-readable message.
    pub message: String,
    /// The typed guard fault behind this error, when it came from the
    /// host's resource guard (budget trip, heap cap, call-depth cap…).
    pub guard: Option<GuardError>,
}

impl TclError {
    /// Construct an error.
    pub fn new(message: impl Into<String>) -> Self {
        TclError {
            message: message.into(),
            guard: None,
        }
    }
}

impl From<GuardError> for TclError {
    fn from(g: GuardError) -> Self {
        TclError {
            message: format!("guard: {g}"),
            guard: Some(g),
        }
    }
}

impl From<TclError> for GuardError {
    fn from(e: TclError) -> Self {
        match e.guard {
            Some(g) => g,
            None => GuardError::Runtime {
                lang: "tcl",
                detail: e.message,
            },
        }
    }
}

impl std::fmt::Display for TclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TclError {}

/// Non-error control flow escaping a script (`break`, `continue`,
/// `return`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Normal completion.
    Normal,
    /// `break` propagating to the nearest loop.
    Break,
    /// `continue` propagating to the nearest loop.
    Continue,
    /// `return` propagating to the nearest proc boundary.
    Return,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(TclError::new("bad").to_string(), "bad");
    }

    #[test]
    fn guard_round_trip_preserves_fault() {
        let g = GuardError::CommandBudget { executed: 10, cap: 10 };
        let e = TclError::from(g.clone());
        assert!(e.message.starts_with("guard: "));
        assert_eq!(GuardError::from(e), g);
    }

    #[test]
    fn plain_error_maps_to_runtime() {
        assert!(matches!(
            GuardError::from(TclError::new("unknown command")),
            GuardError::Runtime { lang: "tcl", .. }
        ));
    }
}
