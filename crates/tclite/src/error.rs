//! Tclite errors.

/// A script-level error (unknown command, bad arity, malformed
/// expression…). Carries the message a real Tcl interpreter would put in
/// `errorInfo`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TclError {
    /// Human-readable message.
    pub message: String,
}

impl TclError {
    /// Construct an error.
    pub fn new(message: impl Into<String>) -> Self {
        TclError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TclError {}

/// Non-error control flow escaping a script (`break`, `continue`,
/// `return`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Normal completion.
    Normal,
    /// `break` propagating to the nearest loop.
    Break,
    /// `continue` propagating to the nearest loop.
    Continue,
    /// `return` propagating to the nearest proc boundary.
    Return,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(TclError::new("bad").to_string(), "bad");
    }
}
