//! The `expr` evaluator: a recursive-descent parser over raw expression
//! text, run afresh on every evaluation (so `while {$i < $n}` pays the
//! full parse on each iteration, as Tcl 7 did).
//!
//! Operands are strings until proven numeric — the parse of every operand
//! is charged, which is the "shimmering" cost that makes Tcl arithmetic
//! thousands of times slower than C in Table 1.

use interp_core::TraceSink;
use interp_host::SimStr;

use crate::error::TclError;
use crate::interp::Tclite;

struct ExprParser {
    bytes: Vec<u8>,
    pos: u32,
    src: SimStr,
    /// Recursion depth of the descent, capped so hostile input (a long
    /// run of `(` or `-`) errors out instead of exhausting the Rust stack.
    nest: u32,
}

/// Deepest operator/paren nesting `expr` will follow.
const MAX_EXPR_NEST: u32 = 100;

impl<'a, S: TraceSink> Tclite<'a, S> {
    /// Evaluate an expression string to an integer (charged).
    pub(crate) fn expr_eval(&mut self, src: SimStr) -> Result<i64, TclError> {
        let bytes = self.m.peek_str(src);
        let mut p = ExprParser {
            bytes,
            pos: 0,
            src,
            nest: 0,
        };
        let expr_routine = self.rt.expr;
        self.m.enter(expr_routine);
        let out = self.expr_or(&mut p);
        if out.is_ok() {
            self.skip_ws(&mut p);
            if (p.pos as usize) < p.bytes.len() {
                self.m.leave();
                return Err(TclError::new(format!(
                    "extra tokens at end of expression: {:?}",
                    String::from_utf8_lossy(&p.bytes[p.pos as usize..])
                )));
            }
        }
        self.m.leave();
        out
    }

    fn skip_ws(&mut self, p: &mut ExprParser) {
        while (p.pos as usize) < p.bytes.len()
            && p.bytes[p.pos as usize].is_ascii_whitespace()
        {
            self.charge_scan(p.src, p.pos);
            p.pos += 1;
        }
    }

    fn peek2(&mut self, p: &ExprParser) -> (u8, u8) {
        let a = p.bytes.get(p.pos as usize).copied().unwrap_or(0);
        let b = p.bytes.get(p.pos as usize + 1).copied().unwrap_or(0);
        (a, b)
    }

    fn expr_or(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        let mut lhs = self.expr_and(p)?;
        loop {
            self.skip_ws(p);
            if self.peek2(p) == (b'|', b'|') {
                self.charge_scan(p.src, p.pos);
                self.charge_scan(p.src, p.pos + 1);
                p.pos += 2;
                let rhs = self.expr_and(p)?;
                self.m.alu();
                lhs = i64::from(lhs != 0 || rhs != 0);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_and(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        let mut lhs = self.expr_bitor(p)?;
        loop {
            self.skip_ws(p);
            if self.peek2(p) == (b'&', b'&') {
                self.charge_scan(p.src, p.pos);
                self.charge_scan(p.src, p.pos + 1);
                p.pos += 2;
                let rhs = self.expr_bitor(p)?;
                self.m.alu();
                lhs = i64::from(lhs != 0 && rhs != 0);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_bitor(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        let mut lhs = self.expr_bitxor(p)?;
        loop {
            self.skip_ws(p);
            if self.peek2(p).0 == b'|' && self.peek2(p).1 != b'|' {
                self.charge_scan(p.src, p.pos);
                p.pos += 1;
                let rhs = self.expr_bitxor(p)?;
                self.m.alu();
                lhs |= rhs;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_bitxor(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        let mut lhs = self.expr_bitand(p)?;
        loop {
            self.skip_ws(p);
            if self.peek2(p).0 == b'^' {
                self.charge_scan(p.src, p.pos);
                p.pos += 1;
                let rhs = self.expr_bitand(p)?;
                self.m.alu();
                lhs ^= rhs;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_bitand(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        let mut lhs = self.expr_eqne(p)?;
        loop {
            self.skip_ws(p);
            if self.peek2(p).0 == b'&' && self.peek2(p).1 != b'&' {
                self.charge_scan(p.src, p.pos);
                p.pos += 1;
                let rhs = self.expr_eqne(p)?;
                self.m.alu();
                lhs &= rhs;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_eqne(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        let mut lhs = self.expr_rel(p)?;
        loop {
            self.skip_ws(p);
            match self.peek2(p) {
                (b'=', b'=') => {
                    p.pos += 2;
                    self.m.alu_n(2);
                    let rhs = self.expr_rel(p)?;
                    lhs = i64::from(lhs == rhs);
                }
                (b'!', b'=') => {
                    p.pos += 2;
                    self.m.alu_n(2);
                    let rhs = self.expr_rel(p)?;
                    lhs = i64::from(lhs != rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn expr_rel(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        let mut lhs = self.expr_add(p)?;
        loop {
            self.skip_ws(p);
            let (a, b) = self.peek2(p);
            match (a, b) {
                (b'<', b'=') => {
                    p.pos += 2;
                    self.m.alu_n(2);
                    let rhs = self.expr_add(p)?;
                    lhs = i64::from(lhs <= rhs);
                }
                (b'>', b'=') => {
                    p.pos += 2;
                    self.m.alu_n(2);
                    let rhs = self.expr_add(p)?;
                    lhs = i64::from(lhs >= rhs);
                }
                (b'<', b'<') | (b'>', b'>') => {
                    p.pos += 2;
                    self.m.alu_n(2);
                    let rhs = self.expr_add(p)?;
                    lhs = if a == b'<' {
                        lhs << (rhs & 63)
                    } else {
                        lhs >> (rhs & 63)
                    };
                }
                (b'<', _) => {
                    p.pos += 1;
                    self.m.alu_n(2);
                    let rhs = self.expr_add(p)?;
                    lhs = i64::from(lhs < rhs);
                }
                (b'>', _) => {
                    p.pos += 1;
                    self.m.alu_n(2);
                    let rhs = self.expr_add(p)?;
                    lhs = i64::from(lhs > rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn expr_add(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        let mut lhs = self.expr_mul(p)?;
        loop {
            self.skip_ws(p);
            let (a, _) = self.peek2(p);
            match a {
                b'+' => {
                    self.charge_scan(p.src, p.pos);
                    p.pos += 1;
                    let rhs = self.expr_mul(p)?;
                    self.m.alu();
                    lhs = lhs.wrapping_add(rhs);
                }
                b'-' => {
                    self.charge_scan(p.src, p.pos);
                    p.pos += 1;
                    let rhs = self.expr_mul(p)?;
                    self.m.alu();
                    lhs = lhs.wrapping_sub(rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn expr_mul(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        let mut lhs = self.expr_unary(p)?;
        loop {
            self.skip_ws(p);
            let (a, _) = self.peek2(p);
            match a {
                b'*' => {
                    self.charge_scan(p.src, p.pos);
                    p.pos += 1;
                    let rhs = self.expr_unary(p)?;
                    self.m.mul();
                    lhs = lhs.wrapping_mul(rhs);
                }
                b'/' => {
                    self.charge_scan(p.src, p.pos);
                    p.pos += 1;
                    let rhs = self.expr_unary(p)?;
                    self.m.mul();
                    if rhs == 0 {
                        return Err(TclError::new("divide by zero"));
                    }
                    lhs = lhs.wrapping_div(rhs);
                }
                b'%' => {
                    self.charge_scan(p.src, p.pos);
                    p.pos += 1;
                    let rhs = self.expr_unary(p)?;
                    self.m.mul();
                    if rhs == 0 {
                        return Err(TclError::new("divide by zero"));
                    }
                    lhs = lhs.wrapping_rem(rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn expr_unary(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        // Every recursive path through the descent (parenthesized
        // subexpressions and unary chains alike) passes through here, so
        // this is the one place the nesting cap must be enforced.
        p.nest += 1;
        if p.nest > MAX_EXPR_NEST {
            p.nest -= 1;
            return Err(TclError::new("expression nesting too deep"));
        }
        let out = self.expr_unary_nested(p);
        p.nest -= 1;
        out
    }

    fn expr_unary_nested(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        self.skip_ws(p);
        let (a, _) = self.peek2(p);
        match a {
            b'-' => {
                self.charge_scan(p.src, p.pos);
                p.pos += 1;
                let v = self.expr_unary(p)?;
                self.m.alu();
                Ok(v.wrapping_neg())
            }
            b'!' => {
                self.charge_scan(p.src, p.pos);
                p.pos += 1;
                let v = self.expr_unary(p)?;
                self.m.alu();
                Ok(i64::from(v == 0))
            }
            _ => self.expr_primary(p),
        }
    }

    fn expr_primary(&mut self, p: &mut ExprParser) -> Result<i64, TclError> {
        self.skip_ws(p);
        let len = p.bytes.len() as u32;
        if p.pos >= len {
            return Err(TclError::new("unexpected end of expression"));
        }
        let c = p.bytes[p.pos as usize];
        match c {
            b'(' => {
                self.charge_scan(p.src, p.pos);
                p.pos += 1;
                let v = self.expr_or(p)?;
                self.skip_ws(p);
                if p.pos >= len || p.bytes[p.pos as usize] != b')' {
                    return Err(TclError::new("missing `)` in expression"));
                }
                self.charge_scan(p.src, p.pos);
                p.pos += 1;
                Ok(v)
            }
            b'$' => {
                // Variable substitution inside expr: parse name, look it up,
                // parse its value as a number — all charged.
                let bytes = p.bytes.clone();
                let (name, name_rs, next) = self.parse_varname(p.src, &bytes, p.pos + 1)?;
                p.pos = next;
                let value = self.var_get(name, &name_rs)?;
                let n = self.m.str_to_int(value).ok_or_else(|| {
                    TclError::new(format!(
                        "expected integer but got \"{}\"",
                        self.m.peek_string(value)
                    ))
                })?;
                Ok(n)
            }
            b'[' => {
                // Command substitution inside expr.
                let mut depth = 1;
                let mut j = p.pos + 1;
                while j < len {
                    self.charge_scan(p.src, j);
                    match p.bytes[j as usize] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if depth != 0 {
                    return Err(TclError::new("missing close-bracket in expression"));
                }
                let inner = self.m.str_substr(p.src, p.pos + 1, j - (p.pos + 1));
                self.eval(inner)?;
                p.pos = j + 1;
                let result = self.result;
                self.m.str_to_int(result).ok_or_else(|| {
                    TclError::new("command result is not an integer")
                })
            }
            b'0'..=b'9' => {
                let start = p.pos;
                while (p.pos as usize) < p.bytes.len()
                    && p.bytes[p.pos as usize].is_ascii_digit()
                {
                    self.charge_scan(p.src, p.pos);
                    p.pos += 1;
                }
                let Ok(text) =
                    std::str::from_utf8(&p.bytes[start as usize..p.pos as usize])
                else {
                    return Err(TclError::new("malformed integer literal"));
                };
                self.m.alu_n(2); // accumulate
                text.parse::<i64>()
                    .map_err(|_| TclError::new("integer literal out of range"))
            }
            other => Err(TclError::new(format!(
                "syntax error in expression at {:?}",
                other as char
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::NullSink;
    use interp_host::Machine;

    fn eval_expr(src: &str) -> Result<i64, TclError> {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        let s = tcl.load_script(src);
        tcl.expr_eval(s)
    }

    #[test]
    fn precedence() {
        assert_eq!(eval_expr("1 + 2 * 3").unwrap(), 7);
        assert_eq!(eval_expr("(1 + 2) * 3").unwrap(), 9);
        assert_eq!(eval_expr("10 - 2 - 3").unwrap(), 5);
        assert_eq!(eval_expr("17 % 5 + 17 / 5").unwrap(), 5);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval_expr("3 < 5").unwrap(), 1);
        assert_eq!(eval_expr("3 >= 5").unwrap(), 0);
        assert_eq!(eval_expr("1 && 0 || 1").unwrap(), 1);
        assert_eq!(eval_expr("!5").unwrap(), 0);
        assert_eq!(eval_expr("2 == 2 && 3 != 4").unwrap(), 1);
    }

    #[test]
    fn shifts_and_unary_minus() {
        assert_eq!(eval_expr("1 << 10").unwrap(), 1024);
        assert_eq!(eval_expr("-7 + 2").unwrap(), -5);
        assert_eq!(eval_expr("256 >> 4").unwrap(), 16);
    }

    #[test]
    fn bitwise_operators() {
        assert_eq!(eval_expr("12 & 10").unwrap(), 8);
        assert_eq!(eval_expr("12 | 10").unwrap(), 14);
        assert_eq!(eval_expr("12 ^ 10").unwrap(), 6);
        // & binds tighter than ^, which binds tighter than |.
        assert_eq!(eval_expr("1 | 2 ^ 3 & 2").unwrap(), 1 | (2 ^ (3 & 2)));
        assert_eq!(eval_expr("(5 ^ 3) & 65535").unwrap(), 6);
        // && still works alongside &.
        assert_eq!(eval_expr("3 & 1 && 2").unwrap(), 1);
    }

    #[test]
    fn variables_in_expressions() {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        tcl.run("set n 21").unwrap();
        let s = tcl.load_script("$n * 2");
        assert_eq!(tcl.expr_eval(s).unwrap(), 42);
    }

    #[test]
    fn errors() {
        assert!(eval_expr("1 +").is_err());
        assert!(eval_expr("1 / 0").is_err());
        assert!(eval_expr("(1").is_err());
        assert!(eval_expr("1 2").is_err());
    }

    #[test]
    fn evaluation_is_charged_per_character() {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        let short = tcl.load_script("1+2");
        let long = tcl.load_script("1+2+3+4+5+6+7+8+9+10+11+12+13+14");
        let before = tcl.m.stats().instructions;
        tcl.expr_eval(short).unwrap();
        let short_cost = tcl.m.stats().instructions - before;
        let before = tcl.m.stats().instructions;
        tcl.expr_eval(long).unwrap();
        let long_cost = tcl.m.stats().instructions - before;
        assert!(long_cost > short_cost * 3);
    }
}
