//! The core interpreter: direct string evaluation with substitution.
//!
//! Tclite, like Tcl 7, has no intermediate representation: every command
//! evaluation re-scans ASCII source held in simulated memory, performs
//! `$variable`, `[command]` and backslash substitution into freshly built
//! word strings, resolves the command name through a hash table, and only
//! then executes. Loops re-parse their body text on every iteration. This
//! is the mechanism behind the paper's Tcl numbers: fetch/decode costs an
//! order of magnitude above every other interpreter, and every variable
//! reference is a symbol-table lookup (§3.3).

use interp_core::{
    CommandSet, Dispatch, DispatchStrategy, Language, Phase, RunStats, TraceSink,
};
use interp_host::{Machine, RoutineId, SimHash, SimStr};
use std::collections::{HashMap, HashSet};

use crate::error::{Flow, TclError};

/// Text-segment routines (sized so one trip through the command loop
/// touches a 16–32 KB working set, the Figure 4 Tcl knee).
pub(crate) struct Routines {
    pub parse: RoutineId,
    pub subst: RoutineId,
    pub var: RoutineId,
    pub expr: RoutineId,
    pub string: RoutineId,
    pub list: RoutineId,
    pub control: RoutineId,
    pub io: RoutineId,
    pub proc_call: RoutineId,
    pub tk: RoutineId,
}

pub(crate) struct FrameState {
    pub vars: SimHash,
    pub global_links: HashSet<String>,
}

pub(crate) struct ProcDef {
    pub params: Vec<String>,
    pub body: SimStr,
}

/// The Tclite interpreter, borrowed onto a simulated host machine.
pub struct Tclite<'a, S: TraceSink> {
    pub(crate) m: &'a mut Machine<S>,
    pub(crate) rt: Routines,
    pub(crate) commands: CommandSet,
    pub(crate) cmd_table: SimHash,
    pub(crate) globals: SimHash,
    pub(crate) frames: Vec<FrameState>,
    pub(crate) procs: HashMap<String, ProcDef>,
    pub(crate) result: SimStr,
    pub(crate) files: HashMap<String, i32>,
    pub(crate) file_counter: u32,
    pub(crate) depth: u32,
    /// How name resolution dispatches (the `InlineCache` tier caches the
    /// symbol-table and command-table translations Tcl 7 redoes per use).
    pub(crate) strategy: DispatchStrategy,
    /// Inline cache of variable resolutions: per symbol table (by its
    /// simulated address — tables are never freed, so addresses are
    /// unique), variable name → value-string address. Maintained by
    /// `var_set`/`var_unset`, flushed on frame push/pop.
    pub(crate) var_ic: HashMap<u32, HashMap<String, u32>>,
    /// Command names already resolved through the command table (Tcl's
    /// cached-cmdPtr trick). Purely a charging cache: the naive lookup's
    /// result is discarded anyway. Flushed when a proc is (re)defined.
    pub(crate) cmd_ic: HashSet<String>,
}

/// Built-in command names (also used to pre-populate the charged command
/// hash table).
pub(crate) const BUILTINS: &[&str] = &[
    "set", "incr", "expr", "if", "while", "for", "foreach", "proc", "return", "break",
    "continue", "puts", "append", "string", "list", "lindex", "llength", "lappend", "split",
    "join", "format", "open", "gets", "read", "close", "unset", "global", "eval", "tk_clear",
    "tk_rect", "tk_line", "tk_oval", "tk_text", "tk_update", "tk_nextevent", "tk_widget",
];

impl<'a, S: TraceSink> Tclite<'a, S> {
    /// Create an interpreter on `machine`.
    pub fn new(machine: &'a mut Machine<S>) -> Self {
        machine.set_phase(Phase::Startup);
        let rt = Routines {
            parse: machine.routine_decl("tcl_parse", 6144),
            subst: machine.routine_decl("tcl_subst", 4096),
            var: machine.routine_decl("tcl_var", 3072),
            expr: machine.routine_decl("tcl_expr", 6144),
            string: machine.routine_decl("tcl_string", 3072),
            list: machine.routine_decl("tcl_list", 3072),
            control: machine.routine_decl("tcl_control", 2048),
            io: machine.routine_decl("tcl_io", 2048),
            proc_call: machine.routine_decl("tcl_proc", 2048),
            tk: machine.routine_decl("tcl_tk", 8192),
        };
        let globals = machine.hash_new(64);
        let cmd_table = machine.hash_new(64);
        // Register the builtin command names in the charged lookup table.
        for (i, name) in BUILTINS.iter().enumerate() {
            let key = machine.str_alloc(name.as_bytes());
            machine.hash_insert(cmd_table, key, i as u32 + 1);
        }
        let result = machine.str_alloc(b"");
        Tclite {
            m: machine,
            rt,
            commands: CommandSet::new("tclite"),
            cmd_table,
            globals,
            frames: Vec::new(),
            procs: HashMap::new(),
            result,
            files: HashMap::new(),
            file_counter: 0,
            depth: 0,
            strategy: DispatchStrategy::Naive,
            var_ic: HashMap::new(),
            cmd_ic: HashSet::new(),
        }
    }

    /// The interpreter's virtual-command set (Tcl command names).
    pub fn commands(&self) -> &CommandSet {
        &self.commands
    }

    /// The last command's result as a Rust string (uncharged peek).
    pub fn result_string(&self) -> String {
        self.m.peek_string(self.result)
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &RunStats {
        self.m.stats()
    }

    /// Allocate a script string in simulated memory (startup work).
    pub fn load_script(&mut self, source: &str) -> SimStr {
        self.m.phase(Phase::Startup, |m| m.str_alloc(source.as_bytes()))
    }

    /// Evaluate a whole script; convenience over [`Self::eval`].
    ///
    /// # Errors
    ///
    /// Returns [`TclError`] on any script error.
    pub fn run(&mut self, source: &str) -> Result<String, TclError> {
        let script = self.load_script(source);
        self.m.set_phase(Phase::FetchDecode);
        let flow = self.eval(script)?;
        let _ = flow;
        self.m.end_command();
        Ok(self.result_string())
    }

    // ------------------------------------------------------------------
    // Scanning (charged)
    // ------------------------------------------------------------------

    /// Charge one source-character scan. Tcl 7 examines each character
    /// more than once per evaluation (a boundary-finding pass, then the
    /// substitution pass), so a scan costs two byte loads plus
    /// classification work.
    #[inline]
    pub(crate) fn charge_scan(&mut self, script: SimStr, i: u32) {
        self.m.lb(script.data() + i);
        self.m.alu();
        self.m.lb(script.data() + i);
        self.m.alu_n(2);
    }

    // ------------------------------------------------------------------
    // Script evaluation
    // ------------------------------------------------------------------

    /// Evaluate `script`: parse and dispatch commands one at a time.
    pub fn eval(&mut self, script: SimStr) -> Result<Flow, TclError> {
        self.depth += 1;
        let cap = self.m.limits().max_call_depth.min(200);
        if self.depth > cap {
            self.depth -= 1;
            if cap < 200 {
                return Err(TclError::from(interp_guard::GuardError::CallDepth {
                    depth: self.depth + 1,
                    cap,
                }));
            }
            return Err(TclError::new("recursion limit exceeded"));
        }
        let out = self.eval_inner(script);
        self.depth -= 1;
        out
    }

    fn eval_inner(&mut self, script: SimStr) -> Result<Flow, TclError> {
        let bytes = self.m.peek_str(script);
        let len = bytes.len() as u32;
        let mut pos: u32 = 0;
        loop {
            // fetch/decode of the next command starts here.
            self.m.end_command();
            self.m.set_phase(Phase::FetchDecode);
            let parse = self.rt.parse;
            self.m.enter(parse);
            // Skip separators and comments.
            loop {
                while pos < len
                    && matches!(bytes[pos as usize], b' ' | b'\t' | b'\n' | b'\r' | b';')
                {
                    self.charge_scan(script, pos);
                    pos += 1;
                }
                if pos < len && bytes[pos as usize] == b'#' {
                    while pos < len && bytes[pos as usize] != b'\n' {
                        self.charge_scan(script, pos);
                        pos += 1;
                    }
                } else {
                    break;
                }
            }
            if pos >= len {
                self.m.leave();
                return Ok(Flow::Normal);
            }
            // Parse the words of one command.
            let mut words: Vec<(SimStr, String)> = Vec::new();
            while pos < len && !matches!(bytes[pos as usize], b'\n' | b';') {
                if matches!(bytes[pos as usize], b' ' | b'\t') {
                    self.charge_scan(script, pos);
                    pos += 1;
                    continue;
                }
                let (word, next) = self.parse_word(script, &bytes, pos)?;
                let word_rs = self.m.peek_string(word);
                words.push((word, word_rs));
                pos = next;
            }
            self.m.leave();
            if words.is_empty() {
                continue;
            }
            let flow = self.dispatch(&words)?;
            if flow != Flow::Normal {
                return Ok(flow);
            }
        }
    }

    /// Parse one word starting at `pos` (on a non-space character).
    /// Returns the substituted word and the next scan position.
    pub(crate) fn parse_word(
        &mut self,
        script: SimStr,
        bytes: &[u8],
        pos: u32,
    ) -> Result<(SimStr, u32), TclError> {
        let len = bytes.len() as u32;
        match bytes[pos as usize] {
            b'{' => {
                // Braced word: verbatim, no substitution.
                self.charge_scan(script, pos);
                let mut depth = 1;
                let mut i = pos + 1;
                while i < len {
                    self.charge_scan(script, i);
                    match bytes[i as usize] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                if depth != 0 {
                    return Err(TclError::new("missing close-brace"));
                }
                let word = self.m.str_substr(script, pos + 1, i - (pos + 1));
                Ok((word, i + 1))
            }
            b'"' => {
                self.charge_scan(script, pos);
                let subst = self.rt.subst;
                self.m.enter(subst);
                let mut b = self.m.builder_new(32);
                let mut i = pos + 1;
                while i < len && bytes[i as usize] != b'"' {
                    i = self.subst_one(script, bytes, i, &mut b)?;
                }
                if i >= len {
                    self.m.leave();
                    return Err(TclError::new("missing close-quote"));
                }
                self.charge_scan(script, i);
                let word = self.m.builder_finish(b);
                self.m.leave();
                Ok((word, i + 1))
            }
            _ => {
                // Bare word with substitution.
                let subst = self.rt.subst;
                self.m.enter(subst);
                let mut b = self.m.builder_new(16);
                let mut i = pos;
                while i < len
                    && !matches!(bytes[i as usize], b' ' | b'\t' | b'\n' | b'\r' | b';')
                {
                    i = self.subst_one(script, bytes, i, &mut b)?;
                }
                let word = self.m.builder_finish(b);
                self.m.leave();
                Ok((word, i))
            }
        }
    }

    /// Substitute one element at `i` into builder `b`; returns the next
    /// position. Handles `$var`, `$var(index)`, `[script]`, and `\x`.
    fn subst_one(
        &mut self,
        script: SimStr,
        bytes: &[u8],
        i: u32,
        b: &mut interp_host::StrBuilder,
    ) -> Result<u32, TclError> {
        let len = bytes.len() as u32;
        self.charge_scan(script, i);
        match bytes[i as usize] {
            b'$' => {
                let (name, name_rs, next) = self.parse_varname(script, bytes, i + 1)?;
                let value = self.var_get(name, &name_rs)?;
                self.m.builder_push_str(b, value);
                Ok(next)
            }
            b'[' => {
                // Find the matching bracket.
                let mut depth = 1;
                let mut j = i + 1;
                while j < len {
                    self.charge_scan(script, j);
                    match bytes[j as usize] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if depth != 0 {
                    return Err(TclError::new("missing close-bracket"));
                }
                let inner = self.m.str_substr(script, i + 1, j - (i + 1));
                // Nested evaluation; restore the fetch/decode phase after.
                self.eval(inner)?;
                self.m.end_command();
                self.m.set_phase(Phase::FetchDecode);
                let result = self.result;
                self.m.builder_push_str(b, result);
                Ok(j + 1)
            }
            b'\\' if i + 1 < len => {
                self.charge_scan(script, i + 1);
                let c = match bytes[(i + 1) as usize] {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'r' => b'\r',
                    b'\n' => b' ',
                    other => other,
                };
                self.m.builder_push(b, c);
                Ok(i + 2)
            }
            c => {
                self.m.builder_push(b, c);
                Ok(i + 1)
            }
        }
    }

    /// Parse a variable name after `$` (with optional `(index)`, whose
    /// contents are themselves substituted). Returns the full name as a
    /// simulated string, its Rust copy, and the next position.
    pub(crate) fn parse_varname(
        &mut self,
        script: SimStr,
        bytes: &[u8],
        start: u32,
    ) -> Result<(SimStr, String, u32), TclError> {
        let len = bytes.len() as u32;
        let mut nb = self.m.builder_new(16);
        let mut i = start;
        if i < len && bytes[i as usize] == b'{' {
            // ${name}
            i += 1;
            while i < len && bytes[i as usize] != b'}' {
                self.charge_scan(script, i);
                let c = bytes[i as usize];
                self.m.builder_push(&mut nb, c);
                i += 1;
            }
            if i >= len {
                return Err(TclError::new("missing close-brace for variable"));
            }
            i += 1;
        } else {
            while i < len
                && (bytes[i as usize].is_ascii_alphanumeric() || bytes[i as usize] == b'_')
            {
                self.charge_scan(script, i);
                let c = bytes[i as usize];
                self.m.builder_push(&mut nb, c);
                i += 1;
            }
            if i < len && bytes[i as usize] == b'(' {
                self.charge_scan(script, i);
                self.m.builder_push(&mut nb, b'(');
                i += 1;
                while i < len && bytes[i as usize] != b')' {
                    i = self.subst_one(script, bytes, i, &mut nb)?;
                }
                if i >= len {
                    return Err(TclError::new("missing close-paren in array reference"));
                }
                self.charge_scan(script, i);
                self.m.builder_push(&mut nb, b')');
                i += 1;
            }
        }
        if nb.is_empty() {
            return Err(TclError::new("empty variable name after `$`"));
        }
        let name_rs = String::from_utf8_lossy(&self.m.builder_peek(&nb)).into_owned();
        let name = self.m.builder_finish(nb);
        Ok((name, name_rs, i))
    }

    // ------------------------------------------------------------------
    // Variables: every access is a symbol-table lookup (§3.3)
    // ------------------------------------------------------------------

    fn scope_table(&self, name_rs: &str) -> SimHash {
        // Array elements (`h(key)`) scope by the array name.
        let base = name_rs.split('(').next().unwrap_or(name_rs);
        match self.frames.last() {
            Some(frame) if !frame.global_links.contains(base) => frame.vars,
            _ => self.globals,
        }
    }

    /// Read a variable (charged, memory-model-tagged).
    pub(crate) fn var_get(&mut self, name: SimStr, name_rs: &str) -> Result<SimStr, TclError> {
        let table = self.scope_table(name_rs);
        let var_routine = self.rt.var;
        if self.strategy == DispatchStrategy::InlineCache {
            let hit = self
                .var_ic
                .get(&table.0)
                .and_then(|t| t.get(name_rs))
                .copied();
            if let Some(addr) = hit {
                // Inline-cache hit: the cached Var pointer replaces the
                // frame resolution, array re-scan and bucket-chain walk.
                self.m.mem_model(|m| {
                    m.routine(var_routine, |m| {
                        m.lw(table.0); // cache-tag load
                        m.alu_n(6); // tag compare + Var deref + flag test
                    })
                });
                return Ok(SimStr(addr));
            }
        }
        let value = self.m.mem_model(|m| {
            m.routine(var_routine, |m| {
                // Tcl 7's variable path: interp deref, frame resolution,
                // array-syntax re-scan, then the hash lookup, then Var
                // struct flag loads and read-trace checks on every access
                // (the paper's 206-514 instructions per reference).
                m.alu_n(18);
                m.lw(table.0); // varFramePtr / table header
                let v = m.hash_lookup(table, name);
                m.lw(table.0 + 4); // Var flags
                m.branch_fwd(false); // trace check
                m.lw(table.0 + 8); // trace list head
                m.alu_n(10);
                v
            })
        });
        match value {
            Some(addr) => {
                if self.strategy == DispatchStrategy::InlineCache {
                    self.var_ic
                        .entry(table.0)
                        .or_default()
                        .insert(name_rs.to_string(), addr);
                }
                Ok(SimStr(addr))
            }
            None => Err(TclError::new(format!(
                "can't read \"{name_rs}\": no such variable"
            ))),
        }
    }

    /// Write a variable (charged, memory-model-tagged). Takes ownership of
    /// `value`'s storage.
    pub(crate) fn var_set(&mut self, name: SimStr, name_rs: &str, value: SimStr) {
        let table = self.scope_table(name_rs);
        let var_routine = self.rt.var;
        self.m.mem_model(|m| {
            m.routine(var_routine, |m| {
                m.alu_n(18);
                m.lw(table.0);
                let existing = m.hash_lookup(table, name);
                m.lw(table.0 + 4);
                m.branch_fwd(false); // write-trace check
                m.alu_n(8);
                match existing {
                    Some(_) => {
                        m.hash_insert(table, name, value.0);
                    }
                    None => {
                        // New entry: the table keeps its own key copy.
                        let key = m.str_copy(name);
                        m.hash_insert(table, key, value.0);
                    }
                }
            })
        });
        if self.strategy == DispatchStrategy::InlineCache {
            // Writes keep the cache exact (never stale): the name now
            // resolves to `value`'s storage.
            self.var_ic
                .entry(table.0)
                .or_default()
                .insert(name_rs.to_string(), value.0);
        }
    }

    /// Remove a variable.
    pub(crate) fn var_unset(&mut self, name: SimStr, name_rs: &str) -> Result<(), TclError> {
        let table = self.scope_table(name_rs);
        let var_routine = self.rt.var;
        let removed = self.m.mem_model(|m| {
            m.routine(var_routine, |m| {
                m.alu_n(9);
                m.hash_remove(table, name)
            })
        });
        if let Some(t) = self.var_ic.get_mut(&table.0) {
            t.remove(name_rs);
        }
        removed.map(|_| ()).ok_or_else(|| {
            TclError::new(format!("can't unset \"{name_rs}\": no such variable"))
        })
    }

    /// Set the interpreter result.
    pub(crate) fn set_result(&mut self, value: SimStr) {
        self.result = value;
    }

    pub(crate) fn set_result_bytes(&mut self, bytes: &[u8]) {
        let s = self.m.str_alloc(bytes);
        self.result = s;
    }

    pub(crate) fn set_result_int(&mut self, v: i64) {
        let s = self.m.str_from_int(v);
        self.result = s;
    }

    /// Dispatch one parsed command: charged command-table lookup, virtual
    /// command attribution, then the builtin/proc body.
    fn dispatch(&mut self, words: &[(SimStr, String)]) -> Result<Flow, TclError> {
        // Poll the host guard once per command: resource-limit trips and
        // sticky heap faults surface here as typed errors.
        if let Err(g) = self.m.guard_check() {
            return Err(TclError::from(g));
        }
        let name = words[0].1.clone();
        // Charged command lookup plus the per-command frame Tcl 7 builds
        // before any command runs: the argv/argc array, the interp result
        // reset (freeing the previous result string), command-trace and
        // async-handler checks, and nesting-depth bookkeeping.
        let parse = self.rt.parse;
        let name_sim = words[0].0;
        let cmd_table = self.cmd_table;
        let old_result = self.result;
        let cmd_cached =
            self.strategy == DispatchStrategy::InlineCache && self.cmd_ic.contains(&name);
        self.m.routine(parse, |m| {
            if cmd_cached {
                // Cached-cmdPtr hit: revalidate the cached pointer
                // instead of rehashing the command name.
                m.alu_n(2);
            } else {
                m.alu_n(6);
                m.hash_lookup(cmd_table, name_sim);
            }
            // argv assembly: store each word pointer + NULL terminator.
            let argv = m.malloc(4 * (words.len() as u32 + 1));
            for (i, (w, _)) in words.iter().enumerate() {
                m.sw(argv + (i as u32) * 4, w.0);
            }
            m.sw(argv + (words.len() as u32) * 4, 0);
            // Tcl_ResetResult: free/clear the previous result.
            m.lw(old_result.0);
            m.alu_n(8);
            // Command traces, async checks, interp->numLevels.
            m.branch_fwd(false);
            m.branch_fwd(false);
            m.alu_n(22);
        });
        if self.strategy == DispatchStrategy::InlineCache && !cmd_cached {
            self.cmd_ic.insert(name.clone());
        }
        let cmd = self.commands.intern(&name);
        self.m.begin_command(cmd);
        self.m.set_phase(Phase::Execute);
        let out = self.run_command(&name, words);
        // Epilogue: result handling + frame teardown.
        self.m.alu_n(12);
        out
    }
}

impl<S: TraceSink> Dispatch for Tclite<'_, S> {
    fn supported(&self) -> &'static [DispatchStrategy] {
        DispatchStrategy::supported_by(Language::Tclite)
    }

    fn strategy(&self) -> DispatchStrategy {
        self.strategy
    }

    fn set_strategy(&mut self, strategy: DispatchStrategy) {
        self.strategy = strategy.effective_for(Language::Tclite);
        self.var_ic.clear();
        self.cmd_ic.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::NullSink;

    fn run(src: &str) -> (String, String) {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        let result = tcl.run(src).expect("script ok");
        let console = String::from_utf8_lossy(m.console()).into_owned();
        (result, console)
    }

    #[test]
    fn set_and_substitute() {
        let (result, _) = run("set a 5\nset b $a");
        assert_eq!(result, "5");
    }

    #[test]
    fn braces_suppress_substitution() {
        let (result, _) = run("set a 5\nset b {$a}");
        assert_eq!(result, "$a");
    }

    #[test]
    fn quotes_substitute() {
        let (result, _) = run("set a 5\nset b \"a is $a!\"");
        assert_eq!(result, "a is 5!");
    }

    #[test]
    fn bracket_substitution() {
        let (result, _) = run("set a [expr 2 + 3]\nset b [expr $a * 10]");
        assert_eq!(result, "50");
    }

    #[test]
    fn comments_and_semicolons() {
        let (result, _) = run("# leading comment\nset a 1; set b 2; # trailing\nset c $b");
        assert_eq!(result, "2");
    }

    #[test]
    fn array_variables_use_full_name_keys() {
        let (result, _) = run("set i 2\nset a(x2) hello\nset b $a(x$i)");
        assert_eq!(result, "hello");
    }

    #[test]
    fn missing_variable_is_an_error() {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        let err = tcl.run("set b $nope").unwrap_err();
        assert!(err.message.contains("no such variable"));
    }

    #[test]
    fn unbalanced_braces_error() {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        assert!(tcl.run("set a {unclosed").is_err());
        assert!(tcl.run("set a \"unclosed").is_err());
        assert!(tcl.run("set a [unclosed").is_err());
    }

    #[test]
    fn backslash_escapes() {
        let (result, _) = run("set a \"x\\ty\\n\"");
        assert_eq!(result, "x\ty\n");
    }

    #[test]
    fn every_variable_access_is_memory_model_tagged() {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        tcl.run("set a 1\nset b $a\nset c $b\nset d $c").unwrap();
        // 4 writes + 3 reads + 3 existence probes in set = >= 7 accesses.
        assert!(m.stats().mem_model_accesses >= 7);
        assert!(m.stats().avg_mem_model_cost() > 30.0);
    }

    #[test]
    fn fetch_decode_dominates_simple_commands() {
        // Table 2: Tcl fetch/decode is an order of magnitude above other
        // interpreters — hundreds-to-thousands of instructions.
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        tcl.run("set abc 1\nset abc 2\nset abc 3\nset abc 4").unwrap();
        let fd = m.stats().avg_fetch_decode();
        assert!(fd > 100.0, "Tcl F/D too cheap: {fd}");
    }
}
