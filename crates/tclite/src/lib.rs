//! Tclite: a Tcl-7-style *direct string interpreter*, instrumented.
//!
//! This is the paper's highest-level virtual machine. There is no bytecode
//! and no op-tree: the interpreter re-scans ASCII source for every command
//! it executes, performs `$var`/`[cmd]`/backslash substitution into fresh
//! word strings, resolves the command through a hash table, and then runs
//! it. Loop bodies and conditions are re-parsed on every iteration, and
//! every variable reference is a symbol-table lookup whose cost scales
//! with the table (§3.3's 206–514 instruction range).
//!
//! Consequences measured by the paper, all reproduced here structurally:
//!
//! * fetch/decode cost per virtual command an order of magnitude above the
//!   other interpreters (Table 2);
//! * arithmetic microbenchmarks thousands of times slower than C, while
//!   string operations — provided by native runtime code — are only tens
//!   of times slower (Table 1);
//! * a large instruction working set per command, giving the 16–32 KB
//!   I-cache knee of Figure 4;
//! * Tk-style graphics commands whose work lands in the shared native
//!   graphics library ([`interp_core::Phase::Native`]).
//!
//! # Example
//!
//! ```
//! use interp_core::NullSink;
//! use interp_host::Machine;
//! use interp_tclite::Tclite;
//!
//! let mut machine = Machine::new(NullSink);
//! let mut tcl = Tclite::new(&mut machine);
//! let result = tcl.run("set a 6\nset b [expr $a * 7]")?;
//! assert_eq!(result, "42");
//! # Ok::<(), interp_tclite::TclError>(())
//! ```

mod builtins;
mod error;
mod expr;
mod interp;
mod tk;

pub use error::{Flow, TclError};
pub use interp::Tclite;
