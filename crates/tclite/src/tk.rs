//! Tk-like native graphics commands.
//!
//! The paper's interactive Tcl benchmarks (demos, hanoi, ical, tkdiff, xf)
//! run on Tk; here the `tk_*` commands bridge into the shared graphics
//! native runtime library, with the instructions executed there attributed
//! to [`interp_core::Phase::Native`] — the same structure that makes the
//! graphics-heavy Java programs look like the native library rather than
//! the interpreter.

use interp_core::{Phase, TraceSink};
use interp_host::{SimStr, UiEvent};

use crate::error::{Flow, TclError};
use crate::interp::Tclite;

impl<'a, S: TraceSink> Tclite<'a, S> {
    /// Execute one `tk_*` command.
    pub(crate) fn run_tk_command(
        &mut self,
        name: &str,
        words: &[(SimStr, String)],
    ) -> Result<Flow, TclError> {
        let mut int_args = Vec::new();
        for (w, _) in &words[1..] {
            if let Some(v) = self.m.str_to_int(*w) {
                int_args.push(v as i32);
            }
        }
        let arg = |i: usize| -> i32 { int_args.get(i).copied().unwrap_or(0) };
        let tk_routine = self.rt.tk;
        match name {
            "tk_clear" => {
                self.need_tk(words, 2, "tk_clear color")?;
                let color = arg(0) as u8;
                self.m.phase(Phase::Native, |m| {
                    m.routine(tk_routine, |m| {
                        m.alu_n(12); // widget tree traversal, damage setup
                        m.gfx_clear(color);
                    })
                });
            }
            "tk_rect" => {
                self.need_tk(words, 6, "tk_rect x y w h color")?;
                self.m.phase(Phase::Native, |m| {
                    m.routine(tk_routine, |m| {
                        m.alu_n(14);
                        m.gfx_fill_rect(arg(0), arg(1), arg(2) as u32, arg(3) as u32, arg(4) as u8);
                    })
                });
            }
            "tk_line" => {
                self.need_tk(words, 6, "tk_line x0 y0 x1 y1 color")?;
                self.m.phase(Phase::Native, |m| {
                    m.routine(tk_routine, |m| {
                        m.alu_n(14);
                        m.gfx_draw_line(arg(0), arg(1), arg(2), arg(3), arg(4) as u8);
                    })
                });
            }
            "tk_oval" => {
                self.need_tk(words, 5, "tk_oval cx cy r color")?;
                self.m.phase(Phase::Native, |m| {
                    m.routine(tk_routine, |m| {
                        m.alu_n(14);
                        m.gfx_draw_circle(arg(0), arg(1), arg(2), arg(3) as u8);
                    })
                });
            }
            "tk_text" => {
                self.need_tk(words, 5, "tk_text x y string color")?;
                let text = self.m.peek_str(words[3].0);
                let color = self
                    .m
                    .str_to_int(words[4].0)
                    .map(|v| v as u8)
                    .unwrap_or(1);
                let (x, y) = (arg(0), arg(1));
                self.m.phase(Phase::Native, |m| {
                    m.routine(tk_routine, |m| {
                        m.alu_n(16); // font metrics, layout
                        m.gfx_draw_text(x, y, &text, color);
                    })
                });
            }
            "tk_widget" => {
                // Create a widget: border + background + label, a composite
                // of native drawing (models Tk widget redisplay).
                self.need_tk(words, 6, "tk_widget x y w h label")?;
                let label = self.m.peek_str(words[5].0);
                let (x, y, w, h) = (arg(0), arg(1), arg(2) as u32, arg(3) as u32);
                self.m.phase(Phase::Native, |m| {
                    m.routine(tk_routine, |m| {
                        m.alu_n(40); // widget allocation, geometry management
                        m.gfx_fill_rect(x, y, w, h, 7);
                        m.gfx_fill_rect(x + 1, y + 1, w.saturating_sub(2), h.saturating_sub(2), 3);
                        m.gfx_draw_text(x + 4, y + 4, &label, 0);
                    })
                });
            }
            "tk_update" => {
                self.m.phase(Phase::Native, |m| {
                    m.routine(tk_routine, |m| {
                        m.alu_n(10);
                        m.gfx_flush();
                    })
                });
            }
            "tk_nextevent" => {
                let event = self.m.phase(Phase::Native, |m| {
                    m.routine(tk_routine, |m| {
                        m.alu_n(18); // select() + event queue scan
                        m.next_event()
                    })
                });
                let text = match event {
                    Some(UiEvent::Tick) => "tick".to_string(),
                    Some(UiEvent::Key(k)) => format!("key {}", k as char),
                    Some(UiEvent::Click { x, y }) => format!("click {x} {y}"),
                    Some(UiEvent::Expose) => "expose".to_string(),
                    Some(UiEvent::Quit) => "quit".to_string(),
                    None => "none".to_string(),
                };
                self.set_result_bytes(text.as_bytes());
                return Ok(Flow::Normal);
            }
            other => {
                return Err(TclError::new(format!(
                    "invalid command name \"{other}\""
                )))
            }
        }
        self.set_result_bytes(b"");
        Ok(Flow::Normal)
    }

    fn need_tk(
        &self,
        words: &[(SimStr, String)],
        n: usize,
        usage: &str,
    ) -> Result<(), TclError> {
        if words.len() < n {
            Err(TclError::new(format!(
                "wrong # args: should be \"{usage}\""
            )))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Tclite;
    use interp_core::{NullSink, Phase};
    use interp_host::{Machine, UiEvent};

    #[test]
    fn drawing_charges_native_phase() {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        tcl.run("tk_clear 0\ntk_rect 10 10 50 40 5\ntk_line 0 0 100 100 2")
            .unwrap();
        let native = m.stats().phase_instructions(Phase::Native);
        assert!(native > 5000, "native instructions = {native}");
        // Inside the rect, off the diagonal line.
        assert_eq!(m.gfx_pixel(20, 15), 5);
        // On the diagonal.
        assert_eq!(m.gfx_pixel(50, 50), 2);
    }

    #[test]
    fn event_loop_drains_queue() {
        let mut m = Machine::new(NullSink);
        m.post_event(UiEvent::Tick);
        m.post_event(UiEvent::Click { x: 3, y: 9 });
        m.post_event(UiEvent::Quit);
        let mut tcl = Tclite::new(&mut m);
        let result = tcl
            .run(
                r#"set log {}
while {1} {
    set e [tk_nextevent]
    if {[string compare $e quit] == 0} { break }
    if {[string compare $e none] == 0} { break }
    lappend log $e
}
set log"#,
            )
            .unwrap();
        assert_eq!(result, "tick {click 3 9}");
    }

    #[test]
    fn widget_draws_and_is_attributed_native() {
        let mut m = Machine::new(NullSink);
        let mut tcl = Tclite::new(&mut m);
        tcl.run("tk_widget 5 5 80 24 OK\ntk_update").unwrap();
        assert!(m.gfx_state().flushes >= 1);
        // Widget background (away from the label glyphs), and border.
        assert_eq!(m.gfx_pixel(50, 8), 3);
        assert_eq!(m.gfx_pixel(50, 5), 7);
    }
}
