//! The guarded runner: the same workloads as [`crate::runner`], but with
//! explicit resource [`Limits`], deterministic fault injection, and a
//! panic barrier — every ending, good or bad, comes back as a structured
//! [`RunOutcome`] instead of a crash.
//!
//! This is the entry point the fault-injection harness (`repro guard`)
//! sweeps: corrupt a guest according to a seeded [`FaultPlan`], run it
//! under a bounded machine, and report exactly how it ended. A
//! [`GuardedRun`] carries the same [`RunArtifact`] shape as an unguarded
//! run — counters, interned commands, console digest — captured as far as
//! the run got, wrapped in the [`RunOutcome`] that says how it ended.

use interp_core::{
    CommandSet, ConsoleDigest, Language, NullSink, RunArtifact, WorkloadId, WorkloadKind,
};
use interp_guard::{FaultPlan, GuardError, Limits, RunOutcome};
use interp_host::Machine;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::runner::{
    joule_workload, macro_names, minic_workload, perl_workload, tcl_workload, Scale,
};

/// Everything a guarded run reports: the structured ending plus the same
/// memoizable artifact shape normal runs produce.
#[derive(Debug, Clone)]
pub struct GuardedRun {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Counters, commands, and console digest as far as the run got;
    /// [`RunArtifact::empty`] if the run died in a panic before the
    /// machine could be inspected.
    pub artifact: RunArtifact,
}

/// How a supervisor should react to a [`RunOutcome`]: retry, quarantine,
/// or accept. This is the single classification point the run-plan pool
/// and the chaos harness share, so their retry policies cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// The run completed; nothing to do.
    Success,
    /// A fault that a clean re-run can plausibly clear: an injected
    /// corruption, a tripped limit, a lost artifact. Worth bounded,
    /// deterministic retries.
    Transient,
    /// A fault retrying cannot fix: the program itself is bad, or the
    /// interpreter panicked (its state is suspect). Quarantine at once.
    Permanent,
}

/// Classify `outcome` for the supervisor's retry policy.
pub fn classify(outcome: &RunOutcome) -> FailureClass {
    match outcome {
        RunOutcome::Completed { .. } => FailureClass::Success,
        RunOutcome::Faulted(GuardError::BadProgram { .. }) => FailureClass::Permanent,
        RunOutcome::Faulted(_) => FailureClass::Transient,
        RunOutcome::Panicked(_) => FailureClass::Permanent,
    }
}

/// Every workload the guarded runner accepts for `language`, as typed
/// [`WorkloadId`]s — the same registry the experiments run, so guard
/// sweeps and experiments cannot drift apart.
pub fn guarded_suite(language: Language, scale: Scale) -> Vec<WorkloadId> {
    macro_names(language)
        .iter()
        .map(|&name| WorkloadId::macro_bench(language, name, scale))
        .collect()
}

/// Instruction/bytecode budget handed to the interpreters that take one.
/// Deliberately far above `Limits::guarded()`'s host-step budget so the
/// unified guard — not each interpreter's legacy budget — is what trips.
const LEGACY_BUDGET: u64 = u64::MAX / 2;

/// Run one macro workload under `limits` with `plan`'s corruption
/// applied, converting every possible ending into a [`RunOutcome`].
///
/// Never panics: interpreter panics are caught at the boundary and
/// reported as [`RunOutcome::Panicked`] (a robustness bug to fix, but a
/// reportable one).
pub fn run_guarded(workload: WorkloadId, limits: Limits, plan: &FaultPlan) -> GuardedRun {
    if workload.kind != WorkloadKind::Macro
        || !macro_names(workload.language).contains(&workload.name)
    {
        return GuardedRun {
            outcome: RunOutcome::Faulted(GuardError::BadProgram {
                lang: workload.language.tag(),
                detail: format!(
                    "unknown guarded workload `{}` ({})",
                    workload.name,
                    workload.kind.label()
                ),
            }),
            artifact: RunArtifact::empty(),
        };
    }
    let plan = *plan;
    let result = catch_unwind(AssertUnwindSafe(move || {
        run_inner(workload.language, workload.name, workload.scale, limits, &plan)
    }));
    match result {
        Ok(run) => run,
        Err(payload) => GuardedRun {
            outcome: RunOutcome::Panicked(panic_message(payload.as_ref())),
            artifact: RunArtifact::empty(),
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Build the machine for a guarded run: limits, guest files, events, and
/// any planned allocation failure.
fn guarded_machine(
    limits: Limits,
    plan: &FaultPlan,
    files: Vec<(String, Vec<u8>)>,
    events: Vec<interp_host::UiEvent>,
) -> Machine<NullSink> {
    let mut m = Machine::with_limits(NullSink, limits);
    if let Some(nth) = plan.alloc_fail_at() {
        m.inject_alloc_failure(nth);
    }
    for (fname, contents) in files {
        m.fs_add_file(&fname, contents);
    }
    for e in events {
        m.post_event(e);
    }
    m
}

fn report<E: Into<GuardError>>(
    m: &mut Machine<NullSink>,
    commands: CommandSet,
    program_bytes: usize,
    res: Result<i32, E>,
) -> GuardedRun {
    let console = String::from_utf8_lossy(&m.take_console()).into_owned();
    GuardedRun {
        outcome: match res {
            Ok(exit) => RunOutcome::Completed { exit },
            Err(e) => RunOutcome::Faulted(e.into()),
        },
        artifact: RunArtifact {
            stats: m.stats().clone(),
            commands,
            console: ConsoleDigest::of(&console),
            program_bytes,
            cycles: None,
            sweep: None,
        },
    }
}

fn run_inner(
    language: Language,
    name: &str,
    scale: Scale,
    limits: Limits,
    plan: &FaultPlan,
) -> GuardedRun {
    match language {
        Language::C => {
            let (src, files) = minic_workload(name, scale);
            let mut image = match interp_minic::compile(&src) {
                Ok(image) => image,
                Err(e) => return compile_fault("c", e.to_string()),
            };
            plan.corrupt_words(&mut image.text);
            let program_bytes = image.size_bytes() as usize;
            let mut m = guarded_machine(limits, plan, files, vec![]);
            let mut exec = interp_nativeref::DirectExecutor::new(&image, &mut m);
            let res = exec.run(LEGACY_BUDGET);
            let commands = exec.commands().clone();
            drop(exec);
            report(&mut m, commands, program_bytes, res)
        }
        Language::Mipsi => {
            let (src, files) = minic_workload(name, scale);
            let mut image = match interp_minic::compile(&src) {
                Ok(image) => image,
                Err(e) => return compile_fault("mipsi", e.to_string()),
            };
            plan.corrupt_words(&mut image.text);
            let program_bytes = image.size_bytes() as usize;
            let mut m = guarded_machine(limits, plan, files, vec![]);
            let mut emu = interp_mipsi::Mipsi::new(&image, &mut m);
            let res = emu.run(LEGACY_BUDGET);
            let commands = emu.commands().clone();
            drop(emu);
            report(&mut m, commands, program_bytes, res)
        }
        Language::Javelin => {
            let (src, files, events) = joule_workload(name, scale);
            let mut prog = match interp_javelin::compile(&src) {
                Ok(prog) => prog,
                Err(e) => return compile_fault("javelin", e.to_string()),
            };
            for f in &mut prog.functions {
                plan.corrupt_bytes(&mut f.code);
            }
            let program_bytes = prog.code_bytes();
            let mut m = guarded_machine(limits, plan, files, events);
            let mut vm = interp_javelin::Jvm::new(&mut m, prog);
            let res = vm.run(LEGACY_BUDGET);
            let commands = vm.commands().clone();
            drop(vm);
            report(&mut m, commands, program_bytes, res)
        }
        Language::Perlite => {
            let (mut src, files) = perl_workload(name, scale);
            plan.corrupt_text(&mut src);
            let program_bytes = src.len();
            let mut m = guarded_machine(limits, plan, files, vec![]);
            let (commands, res) = match interp_perlite::Perlite::new(&mut m, &src) {
                Ok(mut p) => {
                    let r = p.run().map(|()| 0);
                    let commands = p.commands().clone();
                    drop(p);
                    (commands, r)
                }
                Err(e) => (CommandSet::new("perlite"), Err(e)),
            };
            report(&mut m, commands, program_bytes, res)
        }
        Language::Tclite => {
            let (mut src, files, events) = tcl_workload(name, scale);
            plan.corrupt_text(&mut src);
            let program_bytes = src.len();
            let mut m = guarded_machine(limits, plan, files, events);
            let (commands, res) = {
                let mut tcl = interp_tclite::Tclite::new(&mut m);
                let res = tcl.run(&src).map(|_| 0);
                (tcl.commands().clone(), res)
            };
            report(&mut m, commands, program_bytes, res)
        }
    }
}

fn compile_fault(lang: &'static str, detail: String) -> GuardedRun {
    GuardedRun {
        outcome: RunOutcome::Faulted(GuardError::BadProgram { lang, detail }),
        artifact: RunArtifact::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_guard::FaultKind;

    fn des(language: Language) -> WorkloadId {
        WorkloadId::macro_bench(language, "des", Scale::Test)
    }

    #[test]
    fn clean_runs_complete_for_every_interpreter() {
        for lang in Language::ALL {
            let run = run_guarded(des(lang), Limits::guarded(), &FaultPlan::none());
            assert!(
                matches!(run.outcome, RunOutcome::Completed { .. }),
                "{lang} des under no-fault plan: {}",
                run.outcome
            );
            assert!(
                run.artifact.stats.instructions > 1000,
                "{lang}: {} insns",
                run.artifact.stats.instructions
            );
            assert!(run.artifact.console.ok, "{lang}: self-check digest not ok");
            assert!(run.artifact.program_bytes > 0, "{lang}: no program bytes");
        }
    }

    #[test]
    fn guarded_artifact_matches_unguarded_run() {
        // A clean guarded run must report the same counters and console
        // digest as the normal runner: one workload API, one shape.
        let id = des(Language::Mipsi);
        let guarded = run_guarded(id, Limits::guarded(), &FaultPlan::none());
        let normal = crate::runner::Runner::run(id, NullSink).base_artifact();
        assert_eq!(
            guarded.artifact.stats.instructions,
            normal.stats.instructions
        );
        assert_eq!(guarded.artifact.stats.commands, normal.stats.commands);
        assert_eq!(guarded.artifact.console, normal.console);
        assert_eq!(guarded.artifact.program_bytes, normal.program_bytes);
    }

    #[test]
    fn unknown_workload_is_a_typed_fault() {
        let run = run_guarded(
            WorkloadId::macro_bench(Language::Tclite, "no-such-workload", Scale::Test),
            Limits::guarded(),
            &FaultPlan::none(),
        );
        assert!(
            matches!(run.outcome, RunOutcome::Faulted(GuardError::BadProgram { .. })),
            "{}",
            run.outcome
        );
        // Micro workloads are not guardable either.
        let run = run_guarded(
            WorkloadId::micro(Language::Tclite, "a=b+c", Scale::Test),
            Limits::guarded(),
            &FaultPlan::none(),
        );
        assert!(
            matches!(run.outcome, RunOutcome::Faulted(GuardError::BadProgram { .. })),
            "{}",
            run.outcome
        );
    }

    #[test]
    fn command_budget_is_honored_within_one() {
        for lang in Language::ALL {
            let cap = 50u64;
            let run = run_guarded(
                des(lang),
                Limits::guarded().with_max_commands(cap),
                &FaultPlan::none(),
            );
            match run.outcome {
                RunOutcome::Faulted(GuardError::CommandBudget { executed, .. }) => {
                    assert!(
                        executed >= cap && executed <= cap + 1,
                        "{lang}: tripped at {executed}, cap {cap}"
                    );
                    assert!(
                        run.artifact.stats.commands <= cap + 1,
                        "{lang}: dispatched {} commands past cap {cap}",
                        run.artifact.stats.commands
                    );
                }
                ref other => panic!("{lang}: expected CommandBudget, got {other}"),
            }
        }
    }

    #[test]
    fn injected_alloc_failure_faults_not_panics() {
        let plan = FaultPlan { seed: 1, kind: FaultKind::AllocFail { nth: 5 } };
        for lang in Language::ALL {
            let run = run_guarded(des(lang), Limits::guarded(), &plan);
            assert!(
                run.outcome.is_structured(),
                "{lang} alloc-fail: {}",
                run.outcome
            );
        }
    }

    #[test]
    fn truncated_tcl_source_faults_or_completes() {
        let plan = FaultPlan { seed: 9, kind: FaultKind::Truncate };
        let run = run_guarded(des(Language::Tclite), Limits::guarded(), &plan);
        assert!(run.outcome.is_structured(), "{}", run.outcome);
    }

    #[test]
    fn guarded_suite_enumerates_the_macro_registry() {
        for lang in Language::ALL {
            let suite = guarded_suite(lang, Scale::Test);
            assert_eq!(suite.len(), macro_names(lang).len());
            for id in suite {
                assert_eq!(id.language, lang);
                assert_eq!(id.kind, WorkloadKind::Macro);
                // Every enumerated id must be accepted by the runner's
                // validation (clean plan, tiny budget to stay fast).
                let run = run_guarded(
                    id,
                    Limits::guarded().with_max_commands(5),
                    &FaultPlan::none(),
                );
                assert!(
                    !matches!(
                        run.outcome,
                        RunOutcome::Faulted(GuardError::BadProgram { .. })
                    ),
                    "{id}: registry id rejected: {}",
                    run.outcome
                );
            }
        }
    }
}
