//! The guarded runner: the same workloads as [`crate::runner`], but with
//! explicit resource [`Limits`], deterministic fault injection, and a
//! panic barrier — every ending, good or bad, comes back as a structured
//! [`RunOutcome`] instead of a crash.
//!
//! This is the entry point the fault-injection harness (`repro guard`)
//! sweeps: corrupt a guest according to a seeded [`FaultPlan`], run it
//! under a bounded machine, and report exactly how it ended.

use interp_core::{Language, NullSink};
use interp_guard::{FaultPlan, GuardError, Limits, RunOutcome};
use interp_host::Machine;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::runner::{
    joule_workload, minic_workload, perl_workload, tcl_workload, Scale,
};

/// Everything a guarded run reports.
#[derive(Debug, Clone)]
pub struct GuardedRun {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Native (host) instructions retired before the run ended; zero if
    /// the run died in a panic before the machine could be inspected.
    pub instructions: u64,
    /// Virtual commands dispatched before the run ended.
    pub commands: u64,
}

/// Valid macro-workload names per language (the guarded runner refuses
/// unknown names with a typed error instead of panicking).
pub fn workload_names(language: Language) -> &'static [&'static str] {
    match language {
        Language::C => &["des", "compress", "eqntott", "espresso", "li", "cc_lite"],
        Language::Mipsi => &["des", "compress", "eqntott", "espresso", "li"],
        Language::Javelin => &["des", "asteroids", "hanoi", "javac", "mand"],
        Language::Perlite => &["des", "a2ps", "plexus", "txt2html", "weblint"],
        Language::Tclite => &[
            "des", "tcllex", "tcltags", "hanoi", "demos", "ical", "tkdiff", "xf",
        ],
    }
}

/// Instruction/bytecode budget handed to the interpreters that take one.
/// Deliberately far above `Limits::guarded()`'s host-step budget so the
/// unified guard — not each interpreter's legacy budget — is what trips.
const LEGACY_BUDGET: u64 = u64::MAX / 2;

/// Run one macro workload under `limits` with `plan`'s corruption
/// applied, converting every possible ending into a [`RunOutcome`].
///
/// Never panics: interpreter panics are caught at the boundary and
/// reported as [`RunOutcome::Panicked`] (a robustness bug to fix, but a
/// reportable one).
pub fn run_guarded(
    language: Language,
    name: &str,
    scale: Scale,
    limits: Limits,
    plan: &FaultPlan,
) -> GuardedRun {
    if !workload_names(language).contains(&name) {
        return GuardedRun {
            outcome: RunOutcome::Faulted(GuardError::BadProgram {
                lang: lang_tag(language),
                detail: format!("unknown workload `{name}`"),
            }),
            instructions: 0,
            commands: 0,
        };
    }
    let plan = *plan;
    let result = catch_unwind(AssertUnwindSafe(move || {
        run_inner(language, name, scale, limits, &plan)
    }));
    match result {
        Ok(run) => run,
        Err(payload) => GuardedRun {
            outcome: RunOutcome::Panicked(panic_message(payload.as_ref())),
            instructions: 0,
            commands: 0,
        },
    }
}

fn lang_tag(language: Language) -> &'static str {
    match language {
        Language::C => "c",
        Language::Mipsi => "mipsi",
        Language::Javelin => "javelin",
        Language::Perlite => "perl",
        Language::Tclite => "tcl",
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Build the machine for a guarded run: limits, guest files, events, and
/// any planned allocation failure.
fn guarded_machine(
    limits: Limits,
    plan: &FaultPlan,
    files: Vec<(String, Vec<u8>)>,
    events: Vec<interp_host::UiEvent>,
) -> Machine<NullSink> {
    let mut m = Machine::with_limits(NullSink, limits);
    if let Some(nth) = plan.alloc_fail_at() {
        m.inject_alloc_failure(nth);
    }
    for (fname, contents) in files {
        m.fs_add_file(&fname, contents);
    }
    for e in events {
        m.post_event(e);
    }
    m
}

fn report<E: Into<GuardError>>(
    m: &Machine<NullSink>,
    res: Result<i32, E>,
) -> GuardedRun {
    let stats = m.stats();
    GuardedRun {
        outcome: match res {
            Ok(exit) => RunOutcome::Completed { exit },
            Err(e) => RunOutcome::Faulted(e.into()),
        },
        instructions: stats.instructions,
        commands: stats.commands,
    }
}

fn run_inner(
    language: Language,
    name: &str,
    scale: Scale,
    limits: Limits,
    plan: &FaultPlan,
) -> GuardedRun {
    match language {
        Language::C => {
            let (src, files) = minic_workload(name, scale);
            let mut image = match interp_minic::compile(&src) {
                Ok(image) => image,
                Err(e) => return compile_fault("c", e.to_string()),
            };
            plan.corrupt_words(&mut image.text);
            let mut m = guarded_machine(limits, plan, files, vec![]);
            let mut exec = interp_nativeref::DirectExecutor::new(&image, &mut m);
            let res = exec.run(LEGACY_BUDGET);
            drop(exec);
            report(&m, res)
        }
        Language::Mipsi => {
            let (src, files) = minic_workload(name, scale);
            let mut image = match interp_minic::compile(&src) {
                Ok(image) => image,
                Err(e) => return compile_fault("mipsi", e.to_string()),
            };
            plan.corrupt_words(&mut image.text);
            let mut m = guarded_machine(limits, plan, files, vec![]);
            let mut emu = interp_mipsi::Mipsi::new(&image, &mut m);
            let res = emu.run(LEGACY_BUDGET);
            drop(emu);
            report(&m, res)
        }
        Language::Javelin => {
            let (src, files, events) = joule_workload(name, scale);
            let mut prog = match interp_javelin::compile(&src) {
                Ok(prog) => prog,
                Err(e) => return compile_fault("javelin", e.to_string()),
            };
            for f in &mut prog.functions {
                plan.corrupt_bytes(&mut f.code);
            }
            let mut m = guarded_machine(limits, plan, files, events);
            let mut vm = interp_javelin::Jvm::new(&mut m, prog);
            let res = vm.run(LEGACY_BUDGET);
            drop(vm);
            report(&m, res)
        }
        Language::Perlite => {
            let (mut src, files) = perl_workload(name, scale);
            plan.corrupt_text(&mut src);
            let mut m = guarded_machine(limits, plan, files, vec![]);
            let res = match interp_perlite::Perlite::new(&mut m, &src) {
                Ok(mut p) => {
                    let r = p.run().map(|()| 0);
                    drop(p);
                    r
                }
                Err(e) => Err(e),
            };
            report(&m, res)
        }
        Language::Tclite => {
            let (mut src, files, events) = tcl_workload(name, scale);
            plan.corrupt_text(&mut src);
            let mut m = guarded_machine(limits, plan, files, events);
            let res = {
                let mut tcl = interp_tclite::Tclite::new(&mut m);
                tcl.run(&src).map(|_| 0)
            };
            report(&m, res)
        }
    }
}

fn compile_fault(lang: &'static str, detail: String) -> GuardedRun {
    GuardedRun {
        outcome: RunOutcome::Faulted(GuardError::BadProgram { lang, detail }),
        instructions: 0,
        commands: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_guard::FaultKind;

    #[test]
    fn clean_runs_complete_for_every_interpreter() {
        for lang in Language::ALL {
            let run = run_guarded(
                lang,
                "des",
                Scale::Test,
                Limits::guarded(),
                &FaultPlan::none(),
            );
            assert!(
                matches!(run.outcome, RunOutcome::Completed { .. }),
                "{lang} des under no-fault plan: {}",
                run.outcome
            );
            assert!(run.instructions > 1000, "{lang}: {} insns", run.instructions);
        }
    }

    #[test]
    fn unknown_workload_is_a_typed_fault() {
        let run = run_guarded(
            Language::Tclite,
            "no-such-workload",
            Scale::Test,
            Limits::guarded(),
            &FaultPlan::none(),
        );
        assert!(
            matches!(run.outcome, RunOutcome::Faulted(GuardError::BadProgram { .. })),
            "{}",
            run.outcome
        );
    }

    #[test]
    fn command_budget_is_honored_within_one() {
        for lang in Language::ALL {
            let cap = 50u64;
            let run = run_guarded(
                lang,
                "des",
                Scale::Test,
                Limits::guarded().with_max_commands(cap),
                &FaultPlan::none(),
            );
            match run.outcome {
                RunOutcome::Faulted(GuardError::CommandBudget { executed, .. }) => {
                    assert!(
                        executed >= cap && executed <= cap + 1,
                        "{lang}: tripped at {executed}, cap {cap}"
                    );
                    assert!(
                        run.commands <= cap + 1,
                        "{lang}: dispatched {} commands past cap {cap}",
                        run.commands
                    );
                }
                ref other => panic!("{lang}: expected CommandBudget, got {other}"),
            }
        }
    }

    #[test]
    fn injected_alloc_failure_faults_not_panics() {
        let plan = FaultPlan { seed: 1, kind: FaultKind::AllocFail { nth: 5 } };
        for lang in Language::ALL {
            let run = run_guarded(lang, "des", Scale::Test, Limits::guarded(), &plan);
            assert!(
                run.outcome.is_structured(),
                "{lang} alloc-fail: {}",
                run.outcome
            );
        }
    }

    #[test]
    fn truncated_tcl_source_faults_or_completes() {
        let plan = FaultPlan { seed: 9, kind: FaultKind::Truncate };
        let run = run_guarded(
            Language::Tclite,
            "des",
            Scale::Test,
            Limits::guarded(),
            &plan,
        );
        assert!(run.outcome.is_structured(), "{}", run.outcome);
    }
}
