//! Deterministic synthetic inputs.
//!
//! The paper ran its benchmarks on real files (C sources, HTML pages, HTTP
//! traffic). Those inputs are not archived, so we generate statistically
//! similar stand-ins with a fixed-seed PRNG: word-shaped text with
//! repetition (so LZW finds structure), tag-soup HTML, HTTP/1.0 requests,
//! and C-like token streams.

use interp_guard::Rng64;

/// Fixed seed: every run of every experiment sees identical inputs.
pub const SEED: u64 = 0x1996_0a5f;

const WORDS: &[&str] = &[
    "the", "interpreter", "virtual", "machine", "command", "fetch", "decode", "execute",
    "cache", "memory", "stack", "table", "string", "program", "native", "instruction", "loop",
    "branch", "index", "value", "performance", "structure", "alpha", "system", "time",
];

/// Word-shaped prose with natural repetition (`n_words` words, ~6 bytes
/// each).
pub fn text_corpus(n_words: usize) -> Vec<u8> {
    let mut rng = Rng64::new(SEED);
    let mut out = Vec::with_capacity(n_words * 7);
    let mut col = 0usize;
    for i in 0..n_words {
        let w = WORDS[rng.index(0, WORDS.len())];
        out.extend_from_slice(w.as_bytes());
        col += w.len() + 1;
        if i % 11 == 10 {
            out.extend_from_slice(b".");
        }
        if col > 60 {
            out.push(b'\n');
            col = 0;
        } else {
            out.push(b' ');
        }
    }
    out.push(b'\n');
    out
}

/// Prose with light markup (URLs, `*bold*`, `heading:` lines, blank-line
/// paragraph breaks) for the txt2html workload.
pub fn markup_text(n_words: usize) -> Vec<u8> {
    let mut rng = Rng64::new(SEED ^ 0x66);
    let mut out = Vec::new();
    let mut col = 0usize;
    for i in 0..n_words {
        if i % 37 == 36 {
            out.extend_from_slice(b"\n\n");
            col = 0;
        }
        if i % 53 == 20 {
            out.extend_from_slice(b"\nnext section:\n");
            col = 0;
        }
        let w = WORDS[rng.index(0, WORDS.len())];
        match i % 17 {
            4 => {
                out.push(b'*');
                out.extend_from_slice(w.as_bytes());
                out.push(b'*');
            }
            9 => out.extend_from_slice(format!("http://host/{w}").as_bytes()),
            _ => out.extend_from_slice(w.as_bytes()),
        }
        col += w.len() + 1;
        if col > 60 {
            out.push(b'\n');
            col = 0;
        } else {
            out.push(b' ');
        }
    }
    out.push(b'\n');
    out
}

/// Tag-soup HTML with headers, links, and a deterministic sprinkle of
/// mistakes (unclosed tags) for the weblint workload.
pub fn html_page(n_paragraphs: usize) -> Vec<u8> {
    let mut rng = Rng64::new(SEED ^ 0x11);
    let mut out = Vec::new();
    out.extend_from_slice(b"<html>\n<head><title>synthetic page</title></head>\n<body>\n");
    for p in 0..n_paragraphs {
        out.extend_from_slice(format!("<h2>section {p}</h2>\n").as_bytes());
        out.extend_from_slice(b"<p>");
        for _ in 0..rng.range(8, 20) {
            let w = WORDS[rng.index(0, WORDS.len())];
            out.extend_from_slice(w.as_bytes());
            out.push(b' ');
        }
        if rng.range(0, 4) == 0 {
            out.extend_from_slice(b"<b>bold");
            if rng.range(0, 2) == 0 {
                out.extend_from_slice(b"</b>");
            } // else: unclosed <b> for weblint to find
        }
        out.extend_from_slice(
            format!("<a href=\"page{p}.html\">link {p}</a>").as_bytes(),
        );
        // Deterministic mistakes: some paragraphs never close.
        if p % 5 != 4 {
            out.extend_from_slice(b"</p>\n");
        } else {
            out.push(b'\n');
        }
    }
    out.extend_from_slice(b"</body>\n</html>\n");
    out
}

/// A batch of HTTP/1.0 requests, one per line group, for the plexus
/// (HTTP server) workload.
pub fn http_requests(n: usize) -> Vec<u8> {
    let mut rng = Rng64::new(SEED ^ 0x22);
    let paths = [
        "/index.html",
        "/research/interpreters.html",
        "/cgi-bin/query",
        "/images/logo.gif",
        "/missing/page.html",
        "/docs/paper.ps",
    ];
    let mut out = Vec::new();
    for _ in 0..n {
        let method = if rng.range(0, 5) == 0 { "HEAD" } else { "GET" };
        let path = paths[rng.index(0, paths.len())];
        out.extend_from_slice(format!("{method} {path} HTTP/1.0\n").as_bytes());
        out.extend_from_slice(b"User-Agent: Mosaic/2.6\n");
        if rng.range(0, 3) == 0 {
            out.extend_from_slice(b"Accept: text/html\n");
        }
        out.push(b'\n');
    }
    out
}

/// A C-like token stream for tcltags / cc-lite / javac-analog inputs:
/// function definitions with bodies.
pub fn source_like(n_functions: usize) -> Vec<u8> {
    let mut rng = Rng64::new(SEED ^ 0x33);
    let mut out = Vec::new();
    out.extend_from_slice(b"/* synthetic translation unit */\n");
    for f in 0..n_functions {
        out.extend_from_slice(format!("int func_{f}(int a, int b) {{\n").as_bytes());
        let stmts = rng.range(2, 6);
        for s in 0..stmts {
            let v = rng.range(1, 100);
            out.extend_from_slice(
                format!("    int v{s} = a * {v} + b - {};\n", rng.range(0, 9)).as_bytes(),
            );
        }
        out.extend_from_slice(b"    return a + b;\n}\n\n");
    }
    out
}

/// Tcl-like source for tcltags: proc definitions.
pub fn tcl_source_like(n_procs: usize) -> Vec<u8> {
    let mut rng = Rng64::new(SEED ^ 0x44);
    let mut out = Vec::new();
    for p in 0..n_procs {
        out.extend_from_slice(format!("proc handler_{p} {{x y}} {{\n").as_bytes());
        for _ in 0..rng.range(1, 4) {
            out.extend_from_slice(
                format!("    set t{} [expr $x + {}]\n", rng.range(0, 5), p).as_bytes(),
            );
        }
        out.extend_from_slice(b"}\n");
    }
    out
}

/// A widget-layout specification for the xf (interface-builder) workload:
/// `kind index x y w h` lines.
pub fn xf_layout(n_widgets: usize) -> Vec<u8> {
    let mut rng = Rng64::new(SEED ^ 0x77);
    let kinds = ["button", "label", "frame"];
    let mut out = Vec::new();
    out.extend_from_slice(b"# generated layout\n");
    for i in 0..n_widgets {
        let kind = kinds[rng.index(0, kinds.len())];
        let x = rng.range(0, 220);
        let y = rng.range(0, 160);
        let (w, h) = (rng.range(20, 60), rng.range(12, 30));
        out.extend_from_slice(format!("{kind} {i} {x} {y} {w} {h}\n").as_bytes());
    }
    out
}

/// Two related line files for tkdiff: the second has deterministic edits.
pub fn diff_pair(n_lines: usize) -> (Vec<u8>, Vec<u8>) {
    let mut rng = Rng64::new(SEED ^ 0x55);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..n_lines {
        let line = format!(
            "line {i}: {} {}\n",
            WORDS[rng.index(0, WORDS.len())],
            WORDS[rng.index(0, WORDS.len())]
        );
        a.extend_from_slice(line.as_bytes());
        match i % 7 {
            3 => b.extend_from_slice(format!("line {i}: edited\n").as_bytes()),
            5 => {} // deleted in b
            _ => b.extend_from_slice(line.as_bytes()),
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(text_corpus(100), text_corpus(100));
        assert_eq!(html_page(5), html_page(5));
        assert_eq!(http_requests(5), http_requests(5));
        assert_eq!(source_like(3), source_like(3));
        assert_eq!(tcl_source_like(3), tcl_source_like(3));
        assert_eq!(diff_pair(10), diff_pair(10));
    }

    #[test]
    fn corpus_has_repetition_for_lzw() {
        let text = text_corpus(500);
        // "interpreter" should appear several times.
        let hits = text
            .windows(11)
            .filter(|w| *w == b"interpreter")
            .count();
        assert!(hits > 3, "only {hits} repeats");
    }

    #[test]
    fn html_contains_expected_mistakes() {
        let page = html_page(10);
        let text = String::from_utf8_lossy(&page);
        let opens = text.matches("<p>").count();
        let closes = text.matches("</p>").count();
        assert!(opens > closes, "weblint needs unclosed tags");
    }

    #[test]
    fn requests_are_parseable() {
        let reqs = http_requests(10);
        let text = String::from_utf8_lossy(&reqs);
        assert!(text.lines().filter(|l| l.starts_with("GET") || l.starts_with("HEAD")).count() == 10);
    }

    #[test]
    fn sizes_scale() {
        assert!(text_corpus(1000).len() > text_corpus(100).len() * 5);
        assert!(source_like(20).len() > source_like(2).len() * 5);
    }
}
