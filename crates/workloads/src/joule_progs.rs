//! The Javelin (Java-analog) workloads, written in Joule.
//!
//! Mirrors the paper's Java suite: des (same algorithm and output as the
//! compiled version), asteroids (event-driven game on the native graphics
//! library), hanoi (graphics-heavy recursion), javac (a compiler
//! front-end pass), and mand (a Mandelbrot explorer in fixed point).

/// DES-like Feistel cipher: identical algorithm (and `OK <sum>` output) to
/// [`crate::minic_progs::DES_C`]. `{BLOCKS}` blocks.
pub const DES_JL: &str = r#"
static int k0;
static int k1; static int k2; static int k3;
static int k4; static int k5; static int k6; static int k7;
static int k8; static int k9; static int k10; static int k11;
static int k12; static int k13; static int k14; static int k15;

int key(int i) {
    if (i == 0) return k0; if (i == 1) return k1;
    if (i == 2) return k2; if (i == 3) return k3;
    if (i == 4) return k4; if (i == 5) return k5;
    if (i == 6) return k6; if (i == 7) return k7;
    if (i == 8) return k8; if (i == 9) return k9;
    if (i == 10) return k10; if (i == 11) return k11;
    if (i == 12) return k12; if (i == 13) return k13;
    if (i == 14) return k14;
    return k15;
}

int fround(int r, int k) {
    return ((r * 31 + k) ^ (r >> 3) ^ (k * 4)) & 0xffff;
}

int encrypt(int l, int r) {
    int t;
    for (int i = 0; i < 16; i++) {
        t = r;
        r = l ^ fround(r, key(i));
        l = t;
    }
    return l * 65536 + r;
}

int decrypt(int l, int r) {
    int t;
    for (int i = 15; i >= 0; i--) {
        t = l;
        l = r ^ fround(l, key(i));
        r = t;
    }
    return l * 65536 + r;
}

int main() {
    int[] keys = new int[16];
    int k = 12345;
    for (int i = 0; i < 16; i++) {
        k = (k * 1103 + 12849) & 0xffff;
        keys[i] = k;
    }
    k0 = keys[0]; k1 = keys[1]; k2 = keys[2]; k3 = keys[3];
    k4 = keys[4]; k5 = keys[5]; k6 = keys[6]; k7 = keys[7];
    k8 = keys[8]; k9 = keys[9]; k10 = keys[10]; k11 = keys[11];
    k12 = keys[12]; k13 = keys[13]; k14 = keys[14]; k15 = keys[15];
    int sum = 0;
    int bad = 0;
    int block = 9029;
    for (int i = 0; i < {BLOCKS}; i++) {
        block = (block * 1103 + 12849) & 0x7fffffff;
        int l = (block >> 16) & 0xffff;
        int r = block & 0xffff;
        int c = encrypt(l, r);
        int cl = (c >> 16) & 0xffff;
        int cr = c & 0xffff;
        sum = (sum + cl + cr) & 0xffffff;
        int p = decrypt(cl, cr);
        if (((p >> 16) & 0xffff) != l) bad++;
        if ((p & 0xffff) != r) bad++;
    }
    if (bad != 0) { Native.printStr("BAD "); Native.printInt(bad); }
    else { Native.printStr("OK "); Native.printInt(sum); }
    Native.printChar('\n');
    return bad;
}
"#;

/// Asteroids: an event-loop game; most execute-side work lands in the
/// native graphics library, like the paper's asteroids.
pub const ASTEROIDS_JL: &str = r#"
class Ship { int x; int y; int angle; int alive; }
class Rock { int rx; int ry; int vx; int vy; int radius; }

static int score;

void draw_ship(Ship s) {
    Native.drawLine(s.x - 5, s.y + 5, s.x, s.y - 6, 7);
    Native.drawLine(s.x + 5, s.y + 5, s.x, s.y - 6, 7);
    Native.drawLine(s.x - 5, s.y + 5, s.x + 5, s.y + 5, 7);
}

void main() {
    Ship ship = new Ship();
    ship.x = 128; ship.y = 96; ship.alive = 1;
    int nrocks = {ROCKS};
    int[] rock_refs = new int[0];
    Rock r0 = new Rock();
    // Rocks kept in parallel arrays of fields via objects in an array of
    // references is not expressible; use parallel int arrays instead.
    int[] rx = new int[nrocks];
    int[] ry = new int[nrocks];
    int[] vx = new int[nrocks];
    int[] vy = new int[nrocks];
    int[] rad = new int[nrocks];
    for (int i = 0; i < nrocks; i++) {
        rx[i] = Native.rand() % 256;
        ry[i] = Native.rand() % 192;
        vx[i] = Native.rand() % 5 - 2;
        vy[i] = Native.rand() % 5 - 2;
        rad[i] = 4 + Native.rand() % 8;
    }
    int frames = 0;
    int running = 1;
    while (running == 1) {
        int e = Native.nextEvent();
        if ((e >> 16) == 5) { running = 0; }
        if ((e >> 16) == 2) {
            ship.angle = (ship.angle + 30) % 360;
            score = score + 1;
        }
        if ((e >> 16) == 1) {
            frames++;
            Native.clear(0);
            for (int i = 0; i < nrocks; i++) {
                rx[i] = (rx[i] + vx[i] + 256) % 256;
                ry[i] = (ry[i] + vy[i] + 192) % 192;
                Native.drawCircle(rx[i], ry[i], rad[i], 3);
                int dx = rx[i] - ship.x;
                int dy = ry[i] - ship.y;
                if (dx * dx + dy * dy < rad[i] * rad[i]) { score = score - 5; }
            }
            draw_ship(ship);
            Native.drawText("SCORE", 4, 4, 6);
            Native.flush();
        }
        if ((e >> 16) == 0) { running = 0; }
    }
    Native.printStr("OK ");
    Native.printInt(frames);
    Native.printChar(' ');
    Native.printInt(score);
    Native.printChar('\n');
}
"#;

/// Towers of Hanoi with graphics on every move, like the paper's Java
/// hanoi (native-library dominated).
pub const HANOI_JL: &str = r#"
static int moves;

void draw_move(int from, int to, int disk, int[] heights) {
    // Erase + redraw the two pegs' areas and the moved disk.
    Native.fillRect(from * 80 + 10, 40, 60, 120, 0);
    Native.fillRect(to * 80 + 10, 40, 60, 120, 0);
    Native.fillRect(from * 80 + 38, 40, 4, 120, 7);
    Native.fillRect(to * 80 + 38, 40, 4, 120, 7);
    Native.fillRect(to * 80 + 40 - disk * 5, 150 - heights[to] * 10, disk * 10, 8, disk + 1);
    Native.flush();
}

void hanoi(int n, int from, int to, int via, int[] heights) {
    if (n == 0) return;
    hanoi(n - 1, from, via, to, heights);
    moves++;
    heights[from] = heights[from] - 1;
    heights[to] = heights[to] + 1;
    draw_move(from, to, n, heights);
    hanoi(n - 1, via, to, from, heights);
}

void main() {
    int[] heights = new int[3];
    heights[0] = {DISKS};
    Native.clear(0);
    hanoi({DISKS}, 0, 2, 1, heights);
    Native.printStr("OK ");
    Native.printInt(moves);
    Native.printChar('\n');
}
"#;

/// The javac analog: a front-end pass (lexer + symbol statistics) over a
/// generated source file, all in interpreted bytecode.
pub const JAVAC_JL: &str = r#"
static int ntokens;
static int nidents;
static int nnums;
static int folded;

int is_alpha(int c) {
    if (c >= 'a' && c <= 'z') return 1;
    if (c >= 'A' && c <= 'Z') return 1;
    if (c == '_') return 1;
    return 0;
}

int is_digit(int c) {
    if (c >= '0' && c <= '9') return 1;
    return 0;
}

void main() {
    int[] src = Native.loadFile("unit.c");
    int n = src.length;
    // A tiny hashed symbol table: 256 buckets of rolling-hash values.
    int[] table = new int[256];
    int[] counts = new int[256];
    int nsyms = 0;
    int i = 0;
    int depth = 0;
    while (i < n) {
        int c = src[i];
        if (c == ' ' || c == 10 || c == 9) { i++; continue; }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) i++;
            i += 2;
            continue;
        }
        ntokens++;
        if (is_alpha(c)) {
            int h = 0;
            while (i < n && (is_alpha(src[i]) || is_digit(src[i]))) {
                h = (h * 31 + src[i]) & 0x7fffff;
                i++;
            }
            nidents++;
            int b = h % 256;
            if (table[b] == 0) { table[b] = h; nsyms++; }
            counts[b]++;
            continue;
        }
        if (is_digit(c)) {
            int v = 0;
            while (i < n && is_digit(src[i])) { v = v * 10 + (src[i] - '0'); i++; }
            nnums++;
            folded = (folded + v) & 0xffffff;
            continue;
        }
        if (c == '{' || c == '(') depth++;
        if (c == '}' || c == ')') depth--;
        i++;
    }
    if (depth != 0) { Native.printStr("BAD\n"); return; }
    int sum = 0;
    for (int b = 0; b < 256; b++) { sum = (sum + counts[b] * (b + 1)) & 0xffffff; }
    Native.printStr("OK ");
    Native.printInt(ntokens);
    Native.printChar(' ');
    Native.printInt(nsyms);
    Native.printChar(' ');
    Native.printInt((sum + folded) & 0xffffff);
    Native.printChar('\n');
}
"#;

/// Interactive Mandelbrot explorer: fixed-point (8.8) iteration written
/// in bytecode with per-pixel native stores — interpreter-bound, unlike
/// asteroids/hanoi (the paper's mand has the *lowest* execute cost).
pub const MAND_JL: &str = r#"
void render(int cx, int cy, int zoom, int w, int h) {
    for (int py = 0; py < h; py++) {
        for (int px = 0; px < w; px++) {
            int x0 = cx + ((px - w / 2) * zoom) / w;
            int y0 = cy + ((py - h / 2) * zoom) / h;
            int x = 0;
            int y = 0;
            int it = 0;
            while (it < 15) {
                int x2 = (x * x) >> 8;
                int y2 = (y * y) >> 8;
                if (x2 + y2 > 1024) break;
                int xt = x2 - y2 + x0;
                y = ((2 * x * y) >> 8) + y0;
                x = xt;
                it++;
            }
            Native.fillRect(px * 2, py * 2, 2, 2, it);
        }
    }
    Native.flush();
}

void main() {
    int cx = 0 - 128;
    int cy = 0;
    int zoom = 640;
    int frames = 0;
    int running = 1;
    while (running == 1) {
        int e = Native.nextEvent();
        int kind = e >> 16;
        if (kind == 5 || kind == 0) { running = 0; }
        if (kind == 3) {
            cx = cx + ((e >> 8) & 0xff) - 128;
            cy = cy + (e & 0xff) - 96;
            zoom = (zoom * 3) / 4;
        }
        if (kind == 1 || kind == 3) {
            render(cx, cy, zoom, {W}, {H});
            frames++;
        }
    }
    Native.printStr("OK ");
    Native.printInt(frames);
    Native.printChar('\n');
}
"#;

#[cfg(test)]
mod tests {
    use crate::minic_progs::instantiate;
    use interp_core::NullSink;
    use interp_host::{Machine, UiEvent};

    fn run_joule(
        src: &str,
        files: &[(&str, Vec<u8>)],
        events: Vec<UiEvent>,
    ) -> (i32, String) {
        let prog = interp_javelin::compile(src).expect("compile");
        let mut m = Machine::new(NullSink);
        for (name, contents) in files {
            m.fs_add_file(name, contents.clone());
        }
        for e in events {
            m.post_event(e);
        }
        let mut vm = interp_javelin::Jvm::new(&mut m, prog);
        let code = vm.run(200_000_000).expect("run");
        drop(vm);
        (code, String::from_utf8_lossy(m.console()).into_owned())
    }

    #[test]
    fn des_output_matches_compiled_version() {
        let jl = instantiate(super::DES_JL, &[("BLOCKS", "10".into())]);
        let (code, out_j) = run_joule(&jl, &[], vec![]);
        assert_eq!(code, 0, "joule output: {out_j}");

        let c = instantiate(crate::minic_progs::DES_C, &[("BLOCKS", "10".into())]);
        let image = interp_minic::compile(&c).unwrap();
        let mut m = Machine::new(NullSink);
        let mut exec = interp_nativeref::DirectExecutor::new(&image, &mut m);
        exec.run(100_000_000).unwrap();
        drop(exec);
        let out_c = String::from_utf8_lossy(m.console()).into_owned();
        assert_eq!(out_j, out_c, "interpreted Java and compiled C must agree");
    }

    #[test]
    fn asteroids_runs_frames() {
        let src = instantiate(super::ASTEROIDS_JL, &[("ROCKS", "6".into())]);
        let mut events = Vec::new();
        for i in 0..10 {
            events.push(UiEvent::Tick);
            if i % 3 == 0 {
                events.push(UiEvent::Key(b' '));
            }
        }
        events.push(UiEvent::Quit);
        let (_, out) = run_joule(&src, &[], events);
        assert!(out.starts_with("OK 10 "), "output: {out}");
    }

    #[test]
    fn hanoi_counts_moves() {
        let src = instantiate(super::HANOI_JL, &[("DISKS", "5".into())]);
        let (_, out) = run_joule(&src, &[], vec![]);
        assert_eq!(out, "OK 31\n");
    }

    #[test]
    fn javac_lexes_unit() {
        let src = super::JAVAC_JL.to_string();
        let unit = crate::inputs::source_like(15);
        let (_, out) = run_joule(&src, &[("unit.c", unit)], vec![]);
        assert!(out.starts_with("OK "), "output: {out}");
        let nsyms: usize = out.split_whitespace().nth(2).unwrap().parse().unwrap();
        assert!(nsyms > 10, "output: {out}");
    }

    #[test]
    fn mand_renders_on_events() {
        let src = instantiate(
            super::MAND_JL,
            &[("W", "32".into()), ("H", "24".into())],
        );
        let events = vec![
            UiEvent::Tick,
            UiEvent::Click { x: 140, y: 100 },
            UiEvent::Quit,
        ];
        let (_, out) = run_joule(&src, &[], events);
        assert_eq!(out, "OK 2\n");
    }
}
