//! Benchmark workloads for the interpreter-performance reproduction.
//!
//! Provides the macro suite of Table 2 (each program in its original
//! language, with deterministic synthetic inputs), the Table 1
//! microbenchmarks in all five languages, and a uniform
//! [`runner::run_macro`] / [`runner::run_micro`] entry point that wires a
//! workload to a machine, an interpreter, and a trace sink.
//!
//! Programs are self-checking: each prints `OK …` (often a checksum that
//! must agree across languages — des produces identical ciphertext in C,
//! MIPSI, Joule, Perl, and Tcl) so no experiment can silently measure a
//! broken run.

pub mod guarded;
pub mod inputs;
pub mod joule_progs;
pub mod micro;
pub mod minic_progs;
pub mod perl_progs;
pub mod runner;
pub mod tcl_progs;

pub use guarded::{run_guarded, workload_names, GuardedRun};
pub use runner::{
    compiled_suite, macro_suite, micro_iterations, run_macro, run_micro, RunResult, Scale,
};
