//! Benchmark workloads for the interpreter-performance reproduction.
//!
//! Provides the macro suite of Table 2 (each program in its original
//! language, with deterministic synthetic inputs), the Table 1
//! microbenchmarks in all five languages, and one typed entry point — the
//! [`runner::Runner`] facade over [`runner::run_macro`],
//! [`runner::run_micro`], and [`guarded::run_guarded`] — that wires a
//! [`interp_core::WorkloadId`] to a machine, an interpreter, and a trace
//! sink. Suites enumerate typed ids, so experiments, guard sweeps, and
//! the run-plan engine all share one workload registry.
//!
//! Programs are self-checking: each prints `OK …` (often a checksum that
//! must agree across languages — des produces identical ciphertext in C,
//! MIPSI, Joule, Perl, and Tcl) so no experiment can silently measure a
//! broken run.

pub mod guarded;
pub mod inputs;
pub mod joule_progs;
pub mod micro;
pub mod minic_progs;
pub mod perl_progs;
pub mod runner;
pub mod tcl_progs;

pub use guarded::{classify, guarded_suite, run_guarded, FailureClass, GuardedRun};
pub use runner::{
    compiled_suite, macro_names, macro_suite, micro_iterations, micro_suite, run_macro,
    run_micro, run_source_dispatch, run_source_with, try_run_macro, try_run_macro_dispatch,
    try_run_micro, try_run_micro_dispatch, try_run_source, try_run_source_dispatch, RunResult,
    Runner, Scale,
};
