//! Table 1 microbenchmarks, in all five languages.
//!
//! Each microbenchmark runs `{N}` iterations of one simple operation; the
//! harness divides simulated cycles by the compiled-C cycles for the same
//! `N` to produce the slowdown table. The C source doubles as the MIPSI
//! guest binary, exactly as in the paper.

/// Names of the Table 1 microbenchmarks, in paper order.
pub const MICRO_NAMES: [&str; 6] = [
    "a=b+c",
    "if",
    "null-proc",
    "string-concat",
    "string-split",
    "read",
];

/// Paper description for a microbenchmark.
pub fn micro_description(name: &str) -> &'static str {
    match name {
        "a=b+c" => "assign the sum of two memory locations to a third",
        "if" => "conditional assignment",
        "null-proc" => "null procedure call",
        "string-concat" => "concatenate two strings",
        "string-split" => "split a string into four component strings",
        "read" => "read a 4K file from a warm buffer cache",
        _ => "unknown",
    }
}

/// Mini-C source for microbenchmark `name` (shared by the native runs and
/// MIPSI).
// Workload names are a closed, compile-time set; `guarded::run_guarded`
// validates names before this lookup, so the panic is a programmer error.
#[allow(clippy::panic)]
pub fn micro_c(name: &str) -> &'static str {
    match name {
        "a=b+c" => {
            r#"
int a; int b; int c;
int main() {
    int i;
    b = 17; c = 25;
    for (i = 0; i < {N}; i++) { a = b + c; }
    print_int(a);
    return 0;
}
"#
        }
        "if" => {
            r#"
int a; int b;
int main() {
    int i;
    b = 0;
    for (i = 0; i < {N}; i++) {
        if (i & 1) { a = 1; } else { a = 2; }
        b = b + a;
    }
    print_int(b);
    return 0;
}
"#
        }
        "null-proc" => {
            r#"
int nothing() { return 0; }
int main() {
    int i;
    for (i = 0; i < {N}; i++) { nothing(); }
    print_int({N});
    return 0;
}
"#
        }
        "string-concat" => {
            r#"
char left[16] = "alphabet";
char right[16] = "soupmix";
char dst[64];
int concat2(char *d, char *s1, char *s2) {
    int n;
    n = 0;
    while (*s1) { d[n] = *s1; n = n + 1; s1 = s1 + 1; }
    while (*s2) { d[n] = *s2; n = n + 1; s2 = s2 + 1; }
    d[n] = 0;
    return n;
}
int main() {
    int i; int n;
    n = 0;
    for (i = 0; i < {N}; i++) { n = concat2(dst, left, right); }
    print_int(n);
    return 0;
}
"#
        }
        "string-split" => {
            r#"
char src_[32] = "alpha:beta:gamma:delta";
char parts[64];
int main() {
    int i; int j; int p; int k; int total;
    total = 0;
    for (i = 0; i < {N}; i++) {
        p = 0; k = 0;
        for (j = 0; src_[j]; j++) {
            if (src_[j] == ':') {
                parts[p * 16 + k] = 0;
                p = p + 1;
                k = 0;
            } else {
                parts[p * 16 + k] = src_[j];
                k = k + 1;
            }
        }
        parts[p * 16 + k] = 0;
        total = p + 1;
    }
    print_int(total);
    return 0;
}
"#
        }
        "read" => {
            r#"
char buf[4096];
int main() {
    int i; int fd; int n; int total;
    total = 0;
    for (i = 0; i < {N}; i++) {
        fd = open("warm.dat");
        n = read(fd, buf, 4096);
        close(fd);
        total = total + n;
    }
    print_int(total / {N});
    return 0;
}
"#
        }
        _ => panic!("unknown microbenchmark"),
    }
}

/// Joule source. Joule has no string type, so the string benchmarks copy
/// int arrays in interpreted bytecode — reproducing Java 1.0's *worst*
/// Table 1 rows (504x on string-concat), where string work was not
/// delegated to native libraries.
// Workload names are a closed, compile-time set; `guarded::run_guarded`
// validates names before this lookup, so the panic is a programmer error.
#[allow(clippy::panic)]
pub fn micro_joule(name: &str) -> &'static str {
    match name {
        "a=b+c" => {
            r#"
static int a; static int b; static int c;
void main() {
    b = 17; c = 25;
    for (int i = 0; i < {N}; i++) { a = b + c; }
    Native.printInt(a);
}
"#
        }
        "if" => {
            r#"
static int a; static int b;
void main() {
    for (int i = 0; i < {N}; i++) {
        if ((i & 1) != 0) { a = 1; } else { a = 2; }
        b = b + a;
    }
    Native.printInt(b);
}
"#
        }
        "null-proc" => {
            r#"
void nothing() { }
void main() {
    for (int i = 0; i < {N}; i++) { nothing(); }
    Native.printInt({N});
}
"#
        }
        "string-concat" => {
            r#"
int concat2(int[] d, int[] s1, int[] s2) {
    int n = 0;
    for (int i = 0; i < s1.length; i++) { d[n] = s1[i]; n++; }
    for (int i = 0; i < s2.length; i++) { d[n] = s2[i]; n++; }
    return n;
}
void main() {
    int[] left = new int[8];
    int[] right = new int[7];
    int[] dst = new int[32];
    for (int i = 0; i < 8; i++) { left[i] = 'a' + i; }
    for (int i = 0; i < 7; i++) { right[i] = 's' + i; }
    int n = 0;
    for (int i = 0; i < {N}; i++) { n = concat2(dst, left, right); }
    Native.printInt(n);
}
"#
        }
        "string-split" => {
            r#"
void main() {
    int[] src = new int[22];
    int[] parts = new int[64];
    // "alpha:beta:gamma:delta"
    int[] tmpl = new int[22];
    tmpl[0]='a';tmpl[1]='l';tmpl[2]='p';tmpl[3]='h';tmpl[4]='a';tmpl[5]=':';
    tmpl[6]='b';tmpl[7]='e';tmpl[8]='t';tmpl[9]='a';tmpl[10]=':';
    tmpl[11]='g';tmpl[12]='a';tmpl[13]='m';tmpl[14]='m';tmpl[15]='a';tmpl[16]=':';
    tmpl[17]='d';tmpl[18]='e';tmpl[19]='l';tmpl[20]='t';tmpl[21]='a';
    for (int i = 0; i < 22; i++) { src[i] = tmpl[i]; }
    int total = 0;
    for (int i = 0; i < {N}; i++) {
        int p = 0; int k = 0;
        for (int j = 0; j < 22; j++) {
            if (src[j] == ':') { parts[p * 16 + k] = 0; p++; k = 0; }
            else { parts[p * 16 + k] = src[j]; k++; }
        }
        total = p + 1;
    }
    Native.printInt(total);
}
"#
        }
        "read" => {
            r#"
void main() {
    int total = 0;
    for (int i = 0; i < {N}; i++) {
        int[] data = Native.loadFile("warm.dat");
        total = total + data.length;
    }
    Native.printInt(total / {N});
}
"#
        }
        _ => panic!("unknown microbenchmark"),
    }
}

/// Perl source. String operations use the native runtime (`.` concat,
/// `split`), reproducing Perl's *good* string rows in Table 1.
// Workload names are a closed, compile-time set; `guarded::run_guarded`
// validates names before this lookup, so the panic is a programmer error.
#[allow(clippy::panic)]
pub fn micro_perl(name: &str) -> &'static str {
    match name {
        "a=b+c" => {
            r#"
$b = 17; $c = 25;
for ($i = 0; $i < {N}; $i++) { $a = $b + $c; }
print $a;
"#
        }
        "if" => {
            r#"
$b = 0;
for ($i = 0; $i < {N}; $i++) {
    if ($i % 2) { $a = 1; } else { $a = 2; }
    $b = $b + $a;
}
print $b;
"#
        }
        "null-proc" => {
            r#"
sub nothing { return 0; }
for ($i = 0; $i < {N}; $i++) { &nothing(); }
print {N};
"#
        }
        "string-concat" => {
            r#"
$left = "alphabet";
$right = "soupmix";
for ($i = 0; $i < {N}; $i++) { $dst = $left . $right; }
print length($dst);
"#
        }
        "string-split" => {
            r#"
$src = "alpha:beta:gamma:delta";
for ($i = 0; $i < {N}; $i++) { @parts = split(/:/, $src); }
print scalar(@parts);
"#
        }
        "read" => {
            r#"
$total = 0;
for ($i = 0; $i < {N}; $i++) {
    open(F, "warm.dat");
    $data = <F>;
    $n = length($data);
    while ($line = <F>) { $n += length($line); }
    close(F);
    $total += $n;
}
print $total / {N};
"#
        }
        _ => panic!("unknown microbenchmark"),
    }
}

/// Tcl source. `append`/`split` run in native runtime code (cheap);
/// arithmetic pays the full parse-everything toll (the 6500x row).
// Workload names are a closed, compile-time set; `guarded::run_guarded`
// validates names before this lookup, so the panic is a programmer error.
#[allow(clippy::panic)]
pub fn micro_tcl(name: &str) -> &'static str {
    match name {
        "a=b+c" => {
            r#"
set b 17
set c 25
for {set i 0} {$i < {N}} {incr i} { set a [expr $b + $c] }
puts $a
"#
        }
        "if" => {
            r#"
set b 0
for {set i 0} {$i < {N}} {incr i} {
    if {$i % 2} { set a 1 } else { set a 2 }
    set b [expr $b + $a]
}
puts $b
"#
        }
        "null-proc" => {
            r#"
proc nothing {} { return 0 }
for {set i 0} {$i < {N}} {incr i} { nothing }
puts {N}
"#
        }
        "string-concat" => {
            r#"
set left "alphabet"
set right "soupmix"
for {set i 0} {$i < {N}} {incr i} {
    set dst $left
    append dst $right
}
puts [string length $dst]
"#
        }
        "string-split" => {
            r#"
set src "alpha:beta:gamma:delta"
for {set i 0} {$i < {N}} {incr i} { set parts [split $src :] }
puts [llength $parts]
"#
        }
        "read" => {
            r#"
set total 0
for {set i 0} {$i < {N}} {incr i} {
    set f [open warm.dat]
    set data [read $f]
    close $f
    set total [expr $total + [string length $data]]
}
puts [expr $total / {N}]
"#
        }
        _ => panic!("unknown microbenchmark"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_have_sources_and_descriptions() {
        for name in MICRO_NAMES {
            assert!(!micro_c(name).is_empty());
            assert!(!micro_joule(name).is_empty());
            assert!(!micro_perl(name).is_empty());
            assert!(!micro_tcl(name).is_empty());
            assert_ne!(micro_description(name), "unknown");
        }
    }

    #[test]
    #[should_panic(expected = "unknown microbenchmark")]
    fn unknown_name_panics() {
        micro_c("bogus");
    }
}
