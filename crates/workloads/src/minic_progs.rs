//! The compiled-language workloads, written in mini-C.
//!
//! These are the programs MIPSI interprets and the direct executor runs
//! natively: analogs of the paper's des, compress (LZW), eqntott
//! (truth-table conversion), espresso (boolean cover minimization), li (a
//! small Lisp interpreter) — plus `cc_lite`, a lexer/symbol-table pass
//! standing in for the gcc datapoint of Figure 3.
//!
//! Programs are self-checking: each prints `OK <checksum>` (or `BAD`) so
//! interpreted and native runs can be compared bit-for-bit.

/// The DES-like Feistel cipher. 16 rounds over 16-bit halves with an
/// arithmetic round function — every operation stays below 2^31 so the
/// Joule/Perl/Tcl ports produce identical output.
///
/// `{BLOCKS}` = number of blocks to encrypt+decrypt.
pub const DES_C: &str = r#"
int keys[16];

int fround(int r, int k) {
    return ((r * 31 + k) ^ (r >> 3) ^ (k * 4)) & 0xffff;
}

int encrypt(int l, int r) {
    int i;
    int t;
    for (i = 0; i < 16; i++) {
        t = r;
        r = l ^ fround(r, keys[i]);
        l = t;
    }
    return l * 65536 + r;
}

int decrypt(int l, int r) {
    int i;
    int t;
    for (i = 15; i >= 0; i--) {
        t = l;
        l = r ^ fround(l, keys[i]);
        r = t;
    }
    return l * 65536 + r;
}

int main() {
    int i; int k; int block; int l; int r; int c; int cl; int cr;
    int p; int sum; int bad;
    k = 12345;
    for (i = 0; i < 16; i++) {
        k = (k * 1103 + 12849) & 0xffff;
        keys[i] = k;
    }
    sum = 0;
    bad = 0;
    block = 9029;
    for (i = 0; i < {BLOCKS}; i++) {
        block = (block * 1103 + 12849) & 0x7fffffff;
        l = (block >> 16) & 0xffff;
        r = block & 0xffff;
        c = encrypt(l, r);
        cl = (c >> 16) & 0xffff;
        cr = c & 0xffff;
        sum = (sum + cl + cr) & 0xffffff;
        p = decrypt(cl, cr);
        if (((p >> 16) & 0xffff) != l) bad = bad + 1;
        if ((p & 0xffff) != r) bad = bad + 1;
    }
    if (bad) { print_str("BAD "); print_int(bad); }
    else { print_str("OK "); print_int(sum); }
    print_char('\n');
    return bad;
}
"#;

/// LZW compression (12-bit codes) of a text file, like `compress`.
/// Reads `input.txt`; prints the code count and a checksum.
pub const COMPRESS_C: &str = r#"
char buf[{BUFSZ}];
int prefix[4096];
int suffix[4096];
int hash_code[{HSIZE}];
int hash_key[{HSIZE}];

int main() {
    int fd; int n; int i;
    int next_code; int cur; int c; int h; int key; int found;
    int ncodes; int sum; int probes;
    fd = open("input.txt");
    if (fd < 0) { print_str("BAD open\n"); return 1; }
    n = read(fd, buf, {BUFSZ});
    close(fd);
    /* hash_code[h] == 0 means empty (codes start at 256), so the table
       needs no initialization pass. */
    next_code = 256;
    ncodes = 0;
    sum = 0;
    cur = buf[0];
    for (i = 1; i < n; i++) {
        c = buf[i];
        key = cur * 256 + c;
        h = ((cur * 77 + c) * 2654435) & {HMASK};
        found = -1;
        probes = 0;
        while (probes < {HSIZE}) {
            if (hash_code[h] == 0) break;
            if (hash_key[h] == key) { found = hash_code[h]; break; }
            h = (h + 1) & {HMASK};
            probes = probes + 1;
        }
        if (found >= 0) {
            cur = found;
        } else {
            ncodes = ncodes + 1;
            sum = (sum + cur * 7 + 3) & 0xffffff;
            if (next_code < 4096) {
                hash_code[h] = next_code;
                hash_key[h] = key;
                prefix[next_code] = cur;
                suffix[next_code] = c;
                next_code = next_code + 1;
            }
            cur = c;
        }
    }
    ncodes = ncodes + 1;
    sum = (sum + cur * 7 + 3) & 0xffffff;
    print_str("OK ");
    print_int(ncodes);
    print_char(' ');
    print_int(sum);
    print_char('\n');
    return 0;
}
"#;

/// Truth-table conversion, like `eqntott`: evaluates a PLA-style
/// sum-of-products over all input combinations and emits a sorted
/// minterm summary. `{VARS}` input variables (table has `2^VARS` rows).
pub const EQNTOTT_C: &str = r#"
int terms_mask[24];
int terms_value[24];
int minterms[4096];

int eval_row(int row, int nterms) {
    int t;
    for (t = 0; t < nterms; t++) {
        if ((row & terms_mask[t]) == terms_value[t]) return 1;
    }
    return 0;
}

int main() {
    int nvars; int rows; int nterms; int i; int t; int k;
    int count; int sum; int tmp; int limit; int swapped;
    nvars = {VARS};
    rows = 1 << nvars;
    nterms = 14;
    k = 977;
    for (t = 0; t < nterms; t++) {
        k = (k * 1103 + 12849) & 0x7fffffff;
        terms_mask[t] = (k & (rows - 1)) | 31;
        k = (k * 1103 + 12849) & 0x7fffffff;
        terms_value[t] = k & terms_mask[t];
    }
    count = 0;
    for (i = 0; i < rows; i++) {
        if (eval_row(i, nterms)) {
            if (count < 4096) { minterms[count] = (i * 2654435 + 7) & 0xfffff; }
            count = count + 1;
        }
    }
    limit = count;
    if (limit > 256) limit = 256;
    swapped = 1;
    while (swapped) {
        swapped = 0;
        for (i = 0; i + 1 < limit; i++) {
            if (minterms[i] > minterms[i + 1]) {
                tmp = minterms[i];
                minterms[i] = minterms[i + 1];
                minterms[i + 1] = tmp;
                swapped = 1;
            }
        }
    }
    sum = 0;
    for (i = 0; i < limit; i++) { sum = (sum + minterms[i] * (i + 1)) & 0xffffff; }
    print_str("OK ");
    print_int(count);
    print_char(' ');
    print_int(sum);
    print_char('\n');
    return 0;
}
"#;

/// Boolean cover minimization, like `espresso` (greatly simplified):
/// repeated passes merge cube pairs that differ in exactly one literal.
/// `{CUBES}` initial cubes over 16 variables.
pub const ESPRESSO_C: &str = r#"
int cube_mask[{CUBES2}];
int cube_val[{CUBES2}];
int alive[{CUBES2}];

int popcount16(int x) {
    int n;
    n = 0;
    while (x) { n = n + (x & 1); x = x >> 1; }
    return n;
}

int main() {
    int n; int i; int j; int k; int merged; int diff;
    int sum; int live;
    n = {CUBES};
    k = 31337;
    for (i = 0; i < n; i++) {
        k = (k * 1103 + 12849) & 0x7fffffff;
        cube_mask[i] = k & 0xffff;
        k = (k * 1103 + 12849) & 0x7fffffff;
        cube_val[i] = k & cube_mask[i];
        alive[i] = 1;
    }
    merged = 1;
    while (merged) {
        merged = 0;
        for (i = 0; i < n; i++) {
            if (!alive[i]) continue;
            for (j = i + 1; j < n; j++) {
                if (!alive[j]) continue;
                if (cube_mask[i] != cube_mask[j]) continue;
                diff = cube_val[i] ^ cube_val[j];
                if (popcount16(diff) == 1) {
                    cube_mask[i] = cube_mask[i] & ~diff;
                    cube_val[i] = cube_val[i] & ~diff;
                    alive[j] = 0;
                    merged = 1;
                }
            }
        }
    }
    live = 0;
    sum = 0;
    for (i = 0; i < n; i++) {
        if (alive[i]) {
            live = live + 1;
            sum = (sum + cube_mask[i] * 3 + cube_val[i]) & 0xffffff;
        }
    }
    print_str("OK ");
    print_int(live);
    print_char(' ');
    print_int(sum);
    print_char('\n');
    return 0;
}
"#;

/// A small Lisp interpreter, like `li`: s-expression reader + recursive
/// evaluator over cons cells, run on generated programs. (An interpreter
/// interpreted by an interpreter, as in the paper.)
pub const LI_C: &str = r#"
char src[{SRCSZ}];
int car_[{CELLS}];
int cdr_[{CELLS}];
int ncells;
int pos;
int srclen;

/* values: odd = (number << 1) | 1 ; even = cell index * 2 ; 0 = nil.
   parse() and parse_list() are mutually recursive; mini-C resolves
   function names across the whole unit, so no forward declaration. */

int cons(int a, int d) {
    car_[ncells] = a;
    cdr_[ncells] = d;
    ncells = ncells + 1;
    return (ncells - 1) * 2 + 2;
}

int parse_list() {
    int head;
    while (src[pos] == ' ' || src[pos] == 10) pos = pos + 1;
    if (src[pos] == ')') { pos = pos + 1; return 0; }
    head = parse();
    return cons(head, parse_list());
}

int parse() {
    int n; int neg;
    while (src[pos] == ' ' || src[pos] == 10) pos = pos + 1;
    if (src[pos] == '(') {
        pos = pos + 1;
        return parse_list();
    }
    neg = 0;
    if (src[pos] == '-') { neg = 1; pos = pos + 1; }
    if (src[pos] >= '0' && src[pos] <= '9') {
        n = 0;
        while (src[pos] >= '0' && src[pos] <= '9') {
            n = n * 10 + (src[pos] - '0');
            pos = pos + 1;
        }
        if (neg) n = -n;
        return n * 2 + 1;
    }
    /* operator symbol: encode as negative-odd */
    n = src[pos];
    pos = pos + 1;
    return 0 - (n * 2 + 1);
}

int eval(int v) {
    int op; int acc; int rest; int a; int b;
    if (v == 0) return 1;              /* nil -> 1 */
    if (v % 2 == 1 || v < 0) {
        if (v > 0) return (v - 1) / 2; /* number */
        return 0 - ((0 - v - 1) / 2);  /* bare symbol: its code, negated */
    }
    /* a list: (op args...) */
    op = car_[(v - 2) / 2];
    rest = cdr_[(v - 2) / 2];
    op = 0 - op;                        /* symbols stored negated */
    op = (op - 1) / 2;
    if (op == '+') {
        acc = 0;
        while (rest != 0) {
            acc = acc + eval(car_[(rest - 2) / 2]);
            rest = cdr_[(rest - 2) / 2];
        }
        return acc;
    }
    if (op == '*') {
        acc = 1;
        while (rest != 0) {
            acc = (acc * eval(car_[(rest - 2) / 2])) & 0xffffff;
            rest = cdr_[(rest - 2) / 2];
        }
        return acc;
    }
    if (op == '-') {
        a = eval(car_[(rest - 2) / 2]);
        rest = cdr_[(rest - 2) / 2];
        if (rest == 0) return 0 - a;
        b = eval(car_[(rest - 2) / 2]);
        return a - b;
    }
    if (op == '<') {
        a = eval(car_[(rest - 2) / 2]);
        rest = cdr_[(rest - 2) / 2];
        b = eval(car_[(rest - 2) / 2]);
        return a < b;
    }
    if (op == '?') { /* (? c a b) = if */
        a = eval(car_[(rest - 2) / 2]);
        rest = cdr_[(rest - 2) / 2];
        if (a) return eval(car_[(rest - 2) / 2]);
        rest = cdr_[(rest - 2) / 2];
        return eval(car_[(rest - 2) / 2]);
    }
    return 0;
}

int main() {
    int fd; int v; int sum; int rounds; int r;
    fd = open("program.lsp");
    if (fd < 0) { print_str("BAD open\n"); return 1; }
    srclen = read(fd, src, {SRCSZ});
    close(fd);
    sum = 0;
    rounds = {ROUNDS};
    for (r = 0; r < rounds; r++) {
        pos = 0;
        ncells = 0;
        v = parse();
        sum = (sum + eval(v)) & 0xffffff;
    }
    print_str("OK ");
    print_int(sum);
    print_char('\n');
    return 0;
}
"#;

/// The gcc stand-in: a C-like lexer with a probing symbol table and
/// brace/paren matching over a generated translation unit.
pub const CC_LITE_C: &str = r#"
char src[{SRCSZ}];
char sym_names[8192];
int sym_off[512];
int sym_len[512];
int sym_count_arr[512];
int nsyms;

int sym_lookup(char *name, int len) {
    int i; int j; int ok;
    for (i = 0; i < nsyms; i++) {
        if (sym_len[i] != len) continue;
        ok = 1;
        for (j = 0; j < len; j++) {
            if (sym_names[sym_off[i] + j] != name[j]) { ok = 0; break; }
        }
        if (ok) return i;
    }
    return -1;
}

int sym_add(char *name, int len) {
    int i; int off;
    if (nsyms >= 512) return -1;
    off = 0;
    if (nsyms > 0) off = sym_off[nsyms - 1] + sym_len[nsyms - 1];
    for (i = 0; i < len; i++) { sym_names[off + i] = name[i]; }
    sym_off[nsyms] = off;
    sym_len[nsyms] = len;
    sym_count_arr[nsyms] = 0;
    nsyms = nsyms + 1;
    return nsyms - 1;
}

int is_ident_char(int c) {
    if (c >= 'a' && c <= 'z') return 1;
    if (c >= 'A' && c <= 'Z') return 1;
    if (c >= '0' && c <= '9') return 1;
    if (c == '_') return 1;
    return 0;
}

int main() {
    int fd; int n; int i; int c; int start; int id;
    int ntokens; int nnums; int value; int depth; int maxdepth;
    int folded; int sum;
    fd = open("unit.c");
    if (fd < 0) { print_str("BAD open\n"); return 1; }
    n = read(fd, src, {SRCSZ});
    close(fd);
    nsyms = 0;
    ntokens = 0;
    nnums = 0;
    depth = 0;
    maxdepth = 0;
    folded = 0;
    i = 0;
    while (i < n) {
        c = src[i];
        if (c == ' ' || c == 10 || c == 9) { i = i + 1; continue; }
        if (c == '/' && src[i + 1] == '*') {
            i = i + 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) i = i + 1;
            i = i + 2;
            continue;
        }
        ntokens = ntokens + 1;
        if (is_ident_char(c) && !(c >= '0' && c <= '9')) {
            start = i;
            while (i < n && is_ident_char(src[i])) i = i + 1;
            id = sym_lookup(&src[start], i - start);
            if (id < 0) id = sym_add(&src[start], i - start);
            if (id >= 0) sym_count_arr[id] = sym_count_arr[id] + 1;
            continue;
        }
        if (c >= '0' && c <= '9') {
            value = 0;
            while (i < n && src[i] >= '0' && src[i] <= '9') {
                value = value * 10 + (src[i] - '0');
                i = i + 1;
            }
            nnums = nnums + 1;
            folded = (folded + value) & 0xffffff;
            continue;
        }
        if (c == '{' || c == '(') { depth = depth + 1; if (depth > maxdepth) maxdepth = depth; }
        if (c == '}' || c == ')') { depth = depth - 1; }
        i = i + 1;
    }
    sum = 0;
    for (i = 0; i < nsyms; i++) { sum = (sum + sym_count_arr[i] * (i + 1)) & 0xffffff; }
    if (depth != 0) { print_str("BAD nesting\n"); return 1; }
    print_str("OK ");
    print_int(ntokens);
    print_char(' ');
    print_int(nsyms);
    print_char(' ');
    print_int((sum + folded + maxdepth) & 0xffffff);
    print_char('\n');
    return 0;
}
"#;

/// Generate a deep arithmetic s-expression for the Lisp workload.
pub fn lisp_program(depth: u32) -> Vec<u8> {
    fn gen(out: &mut Vec<u8>, depth: u32, salt: u32) {
        if depth == 0 {
            out.extend_from_slice(((salt % 97) as i64).to_string().as_bytes());
            return;
        }
        let op = match salt % 4 {
            0 => "+",
            1 => "*",
            2 => "-",
            _ => "?",
        };
        out.push(b'(');
        out.extend_from_slice(op.as_bytes());
        out.push(b' ');
        if op == "?" {
            out.extend_from_slice(b"(< ");
            gen(out, 0, salt.wrapping_mul(31) + 1);
            out.push(b' ');
            gen(out, 0, salt.wrapping_mul(37) + 2);
            out.extend_from_slice(b") ");
            gen(out, depth - 1, salt.wrapping_mul(41) + 3);
            out.push(b' ');
            gen(out, depth - 1, salt.wrapping_mul(43) + 4);
        } else {
            gen(out, depth - 1, salt.wrapping_mul(31) + 1);
            out.push(b' ');
            gen(out, depth - 1, salt.wrapping_mul(37) + 2);
            if op == "+" {
                out.push(b' ');
                gen(out, 0, salt.wrapping_mul(41) + 3);
            }
        }
        out.push(b')');
    }
    let mut out = Vec::new();
    gen(&mut out, depth, 0x5eed);
    out.push(b'\n');
    out
}

/// Substitute `{NAME}` placeholders in a program template.
pub fn instantiate(template: &str, substitutions: &[(&str, String)]) -> String {
    let mut out = template.to_string();
    for (name, value) in substitutions {
        out = out.replace(&format!("{{{name}}}"), value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::NullSink;
    use interp_host::Machine;
    use interp_nativeref::DirectExecutor;

    fn run_native(src: &str, files: &[(&str, Vec<u8>)]) -> (i32, String) {
        let image = interp_minic::compile(src).expect("compile");
        let mut m = Machine::new(NullSink);
        for (name, contents) in files {
            m.fs_add_file(name, contents.clone());
        }
        let mut exec = DirectExecutor::new(&image, &mut m);
        let code = exec.run(500_000_000).expect("run");
        drop(exec);
        (code, String::from_utf8_lossy(m.console()).into_owned())
    }

    #[test]
    fn des_roundtrips() {
        let src = instantiate(DES_C, &[("BLOCKS", "20".into())]);
        let (code, out) = run_native(&src, &[]);
        assert_eq!(code, 0, "output: {out}");
        assert!(out.starts_with("OK "), "output: {out}");
    }

    #[test]
    fn compress_finds_structure() {
        let src = instantiate(
            COMPRESS_C,
            &[
                ("BUFSZ", "4096".into()),
                ("HSIZE", "8192".into()),
                ("HMASK", "8191".into()),
            ],
        );
        let input = crate::inputs::text_corpus(500);
        let input_len = input.len().min(4096);
        let (code, out) = run_native(&src, &[("input.txt", input)]);
        assert_eq!(code, 0, "output: {out}");
        let ncodes: usize = out.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(
            ncodes < input_len,
            "LZW should compress: {ncodes} codes for {input_len} bytes"
        );
    }

    #[test]
    fn eqntott_counts_minterms() {
        let src = instantiate(EQNTOTT_C, &[("VARS", "8".into())]);
        let (code, out) = run_native(&src, &[]);
        assert_eq!(code, 0, "output: {out}");
        let count: usize = out.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(count > 0 && count < 256, "minterms = {count}");
    }

    #[test]
    fn espresso_reduces_cover() {
        let src = instantiate(
            ESPRESSO_C,
            &[("CUBES", "40".into()), ("CUBES2", "40".into())],
        );
        let (code, out) = run_native(&src, &[]);
        assert_eq!(code, 0, "output: {out}");
        let live: usize = out.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(live <= 40 && live > 0);
    }

    #[test]
    fn li_evaluates() {
        let src = instantiate(
            LI_C,
            &[
                ("SRCSZ", "8192".into()),
                ("CELLS", "4096".into()),
                ("ROUNDS", "3".into()),
            ],
        );
        let program = lisp_program(6);
        let (code, out) = run_native(&src, &[("program.lsp", program)]);
        assert_eq!(code, 0, "output: {out}");
        assert!(out.starts_with("OK "), "output: {out}");
    }

    #[test]
    fn cc_lite_lexes() {
        let src = instantiate(CC_LITE_C, &[("SRCSZ", "16384".into())]);
        let unit = crate::inputs::source_like(20);
        let (code, out) = run_native(&src, &[("unit.c", unit)]);
        assert_eq!(code, 0, "output: {out}");
        let nsyms: usize = out.split_whitespace().nth(2).unwrap().parse().unwrap();
        assert!(nsyms > 20, "symbol table too small: {nsyms}");
    }

    #[test]
    fn lisp_generator_is_balanced() {
        let p = lisp_program(5);
        let opens = p.iter().filter(|&&c| c == b'(').count();
        let closes = p.iter().filter(|&&c| c == b')').count();
        assert_eq!(opens, closes);
    }
}
