//! The Perlite workloads.
//!
//! Mirrors the paper's Perl suite: des (same output as the compiled
//! version), a2ps (ASCII → PostScript-ish conversion), plexus (an HTTP
//! server's request-processing loop), txt2html (regex-driven markup),
//! and weblint (an HTML checker). The last four are regex- and
//! string-heavy, so their execute profiles are dominated by
//! `match`/`subst` — the Figure 2 phenomenon.

/// DES-like Feistel cipher, identical output to the C/Joule versions.
pub const DES_PL: &str = r#"
sub fround {
    local($r, $k) = @_;
    return (($r * 31 + $k) ^ ($r >> 3) ^ ($k * 4)) & 0xffff;
}

sub encrypt {
    local($l, $r) = @_;
    local($i, $t);
    for ($i = 0; $i < 16; $i++) {
        $t = $r;
        $r = $l ^ &fround($r, $keys[$i]);
        $l = $t;
    }
    return $l * 65536 + $r;
}

sub decrypt {
    local($l, $r) = @_;
    local($i, $t);
    for ($i = 15; $i >= 0; $i--) {
        $t = $l;
        $l = $r ^ &fround($l, $keys[$i]);
        $r = $t;
    }
    return $l * 65536 + $r;
}

$k = 12345;
for ($i = 0; $i < 16; $i++) {
    $k = ($k * 1103 + 12849) & 0xffff;
    $keys[$i] = $k;
}
$sum = 0;
$bad = 0;
$block = 9029;
for ($i = 0; $i < {BLOCKS}; $i++) {
    $block = ($block * 1103 + 12849) & 0x7fffffff;
    $l = ($block >> 16) & 0xffff;
    $r = $block & 0xffff;
    $c = &encrypt($l, $r);
    $cl = ($c >> 16) & 0xffff;
    $cr = $c & 0xffff;
    $sum = ($sum + $cl + $cr) & 0xffffff;
    $p = &decrypt($cl, $cr);
    $bad++ if (($p >> 16) & 0xffff) != $l;
    $bad++ if ($p & 0xffff) != $r;
}
if ($bad) { print "BAD $bad\n"; }
else { print "OK $sum\n"; }
"#;

/// ASCII → PostScript-ish conversion, like a2ps: per-line escaping,
/// page headers, line numbering.
pub const A2PS_PL: &str = r#"
open(IN, "input.txt") || die "no input";
print "%!PS-interp\n";
$lineno = 0;
$page = 1;
print "%%Page: 1\n";
while ($line = <IN>) {
    chop($line);
    $lineno++;
    if ($lineno % 56 == 0) {
        $page++;
        print "showpage\n%%Page: $page\n";
    }
    $line =~ s/\\/\\\\/g;
    $line =~ s/\(/\\(/g;
    $line =~ s/\)/\\)/g;
    $y = 720 - ($lineno % 56) * 12;
    print "72 $y moveto (";
    print $line;
    print ") show\n";
}
close(IN);
print "showpage\n%%Pages: $page\n";
print "OK $lineno $page\n";
"#;

/// HTTP request processing, like the plexus server: parse request lines,
/// route through an associative array, count statuses.
pub const PLEXUS_PL: &str = r#"
$routes{"/index.html"} = 200;
$routes{"/research/interpreters.html"} = 200;
$routes{"/cgi-bin/query"} = 200;
$routes{"/images/logo.gif"} = 200;
$routes{"/docs/paper.ps"} = 200;

open(IN, "requests.txt") || die "no requests";
$nreq = 0;
$ok = 0;
$notfound = 0;
$badreq = 0;
$bytes = 0;
while ($line = <IN>) {
    chop($line);
    if ($line =~ /^(GET|HEAD) ([^ ]+) HTTP/) {
        $nreq++;
        $method = $1;
        $path = $2;
        $status = $routes{$path};
        if (defined($status)) {
            $ok++;
            $body = 512 + length($path) * 16;
            $bytes += $body if $method eq "GET";
            print "$method $path -> 200 $body\n";
        } else {
            $notfound++;
            print "$method $path -> 404\n";
        }
    } elsif ($line =~ /^[A-Za-z-]+:/) {
        # header line: parse and ignore
        $line =~ /^([A-Za-z-]+): *(.*)$/;
        $headers{$1} = $2;
    } elsif (length($line) > 0) {
        $badreq++;
    }
}
close(IN);
print "OK $nreq $ok $notfound $badreq $bytes\n";
"#;

/// Text → HTML conversion, like txt2html: the match/subst-dominated
/// workload (84% of execute instructions in the paper's profile).
pub const TXT2HTML_PL: &str = r#"
open(IN, "input.txt") || die "no input";
print "<html><body>\n<p>\n";
$paras = 1;
$links = 0;
$lines = 0;
while ($line = <IN>) {
    chop($line);
    $lines++;
    if (length($line) == 0) {
        print "</p>\n<p>\n";
        $paras++;
        next;
    }
    $line =~ s/&/&amp;/g;
    $line =~ s/</&lt;/g;
    $line =~ s/>/&gt;/g;
    while ($line =~ /(http:[^ ]+)/) {
        $links++;
        $line =~ s/http:[^ ]+/<a>LINK<\/a>/;
    }
    $line =~ s/\*([a-z]+)\*/<b>$1<\/b>/g;
    if ($line =~ /^([A-Za-z ]+):$/) {
        print "<h2>$1<\/h2>\n";
    } else {
        print $line, "\n";
    }
}
close(IN);
print "</p>\n</body></html>\n";
print "OK $lines $paras $links\n";
"#;

/// HTML syntax checking, like weblint: tag extraction with a nesting
/// stack and an unclosed-tag report.
pub const WEBLINT_PL: &str = r#"
open(IN, "page.html") || die "no page";
$errors = 0;
$tags = 0;
$depth = 0;
while ($line = <IN>) {
    chop($line);
    $rest = $line;
    while ($rest =~ /<(\/?)([a-zA-Z][a-zA-Z0-9]*)([^>]*)>/) {
        $close = $1;
        $tag = $2;
        $tags++;
        $rest =~ s/<[^>]*>//;
        $tag =~ s/([A-Z])/$1/g;
        if ($close eq "/") {
            if ($nesting[$depth - 1] eq $tag) {
                $depth--;
            } else {
                $errors++;
            }
        } else {
            next if $tag eq "br";
            next if $tag eq "hr";
            next if $tag eq "img";
            $nesting[$depth] = $tag;
            $depth++;
        }
    }
}
close(IN);
$errors += $depth;
print "OK $tags $errors\n";
"#;

#[cfg(test)]
mod tests {
    use crate::minic_progs::instantiate;
    use interp_core::NullSink;
    use interp_host::Machine;

    fn run_perl(src: &str, files: &[(&str, Vec<u8>)]) -> String {
        let mut m = Machine::new(NullSink);
        for (name, contents) in files {
            m.fs_add_file(name, contents.clone());
        }
        let mut p = interp_perlite::Perlite::new(&mut m, src).expect("compile");
        p.run().expect("run");
        drop(p);
        String::from_utf8_lossy(m.console()).into_owned()
    }

    #[test]
    fn des_output_matches_compiled_version() {
        let pl = instantiate(super::DES_PL, &[("BLOCKS", "4".into())]);
        let out_p = run_perl(&pl, &[]);

        let c = instantiate(crate::minic_progs::DES_C, &[("BLOCKS", "4".into())]);
        let image = interp_minic::compile(&c).unwrap();
        let mut m = Machine::new(NullSink);
        let mut exec = interp_nativeref::DirectExecutor::new(&image, &mut m);
        exec.run(100_000_000).unwrap();
        drop(exec);
        let out_c = String::from_utf8_lossy(m.console()).into_owned();
        assert_eq!(out_p, out_c, "Perl and compiled C must agree");
    }

    #[test]
    fn a2ps_produces_postscript() {
        let input = crate::inputs::text_corpus(120);
        let out = run_perl(super::A2PS_PL, &[("input.txt", input)]);
        assert!(out.starts_with("%!PS-interp"), "header missing");
        assert!(out.contains(") show"), "no show lines");
        assert!(out.lines().last().unwrap().starts_with("OK "), "{out}");
    }

    #[test]
    fn a2ps_escapes_parens() {
        let out = run_perl(super::A2PS_PL, &[("input.txt", b"a(b)c\\d\n".to_vec())]);
        assert!(out.contains(r"(a\(b\)c\\d) show"), "{out}");
    }

    #[test]
    fn plexus_routes_requests() {
        let reqs = crate::inputs::http_requests(12);
        let out = run_perl(super::PLEXUS_PL, &[("requests.txt", reqs)]);
        let last = out.lines().last().unwrap();
        let fields: Vec<&str> = last.split_whitespace().collect();
        assert_eq!(fields[0], "OK", "{out}");
        let nreq: usize = fields[1].parse().unwrap();
        let ok: usize = fields[2].parse().unwrap();
        let notfound: usize = fields[3].parse().unwrap();
        assert_eq!(nreq, 12);
        assert_eq!(ok + notfound, 12);
        assert!(notfound > 0, "missing /missing hits: {out}");
    }

    #[test]
    fn txt2html_marks_up() {
        let input = b"intro text here\n\nsection heading:\nmore *bold* words\nvisit http://site now\n".to_vec();
        let out = run_perl(super::TXT2HTML_PL, &[("input.txt", input)]);
        assert!(out.contains("<h2>section heading</h2>"), "{out}");
        assert!(out.contains("<b>bold</b>"), "{out}");
        assert!(out.contains("<a>LINK</a>"), "{out}");
        assert!(out.contains("</p>\n<p>"), "{out}");
        assert!(out.lines().last().unwrap().starts_with("OK "), "{out}");
    }

    #[test]
    fn weblint_finds_the_planted_errors() {
        let page = crate::inputs::html_page(10);
        let out = run_perl(super::WEBLINT_PL, &[("page.html", page)]);
        let last = out.lines().last().unwrap();
        let fields: Vec<&str> = last.split_whitespace().collect();
        assert_eq!(fields[0], "OK");
        let tags: usize = fields[1].parse().unwrap();
        let errors: usize = fields[2].parse().unwrap();
        assert!(tags > 30, "{out}");
        assert!(errors > 0, "the generator plants unclosed tags: {out}");
    }

    #[test]
    fn weblint_clean_page_has_no_errors() {
        let page = b"<html><body><p>fine</p><p>also <b>fine</b></p></body></html>\n".to_vec();
        let out = run_perl(super::WEBLINT_PL, &[("page.html", page)]);
        assert!(out.ends_with("OK 10 0\n"), "{out}");
    }
}
