//! The workload registry and runner: one entry point that builds a
//! machine, loads inputs and events, runs the right interpreter, and
//! returns the counters — the piece of plumbing every experiment shares.

use interp_core::{
    CommandSet, ConsoleDigest, Dispatch, DispatchFault, DispatchStrategy, Language, RunArtifact,
    RunStats, TraceSink, WorkloadId, WorkloadKind,
};
use interp_guard::{GuardError, Limits};
use interp_host::{Machine, UiEvent};

use crate::minic_progs::{self, instantiate};
use crate::{inputs, joule_progs, micro, perl_progs, tcl_progs};

pub use interp_core::Scale;

/// Everything a finished run yields.
pub struct RunResult<S> {
    /// The counters behind Tables 1–2 and Figures 1–2.
    pub stats: RunStats,
    /// The interpreter's virtual-command names.
    pub commands: CommandSet,
    /// Console output (used to validate runs).
    pub console: String,
    /// The trace sink (e.g. a finished pipeline simulation).
    pub sink: S,
    /// Size of the interpreter's program input in bytes (Table 2 "Size").
    pub program_bytes: usize,
}

impl<S> RunResult<S> {
    /// The sink-independent part of this result as a memoizable
    /// [`RunArtifact`] (no cycle summary or sweep points — the run-plan
    /// engine fills those in from the concrete sink).
    pub fn base_artifact(&self) -> RunArtifact {
        RunArtifact {
            stats: self.stats.clone(),
            commands: self.commands.clone(),
            console: ConsoleDigest::of(&self.console),
            program_bytes: self.program_bytes,
            cycles: None,
            sweep: None,
        }
    }
}

/// Macro benchmarks per interpreted language, in Table 2 order. For `C`
/// this is the *compiled comparison set* (the Figure 3 "SPEC" programs);
/// Table 2's C section is just `des`.
pub fn macro_names(language: Language) -> &'static [&'static str] {
    match language {
        Language::C => &["des", "compress", "eqntott", "espresso", "li", "cc_lite"],
        Language::Mipsi => &["des", "compress", "eqntott", "espresso", "li"],
        Language::Javelin => &["des", "asteroids", "hanoi", "javac", "mand"],
        Language::Perlite => &["des", "a2ps", "plexus", "txt2html", "weblint"],
        Language::Tclite => &[
            "des", "tcllex", "tcltags", "hanoi", "demos", "ical", "tkdiff", "xf",
        ],
    }
}

/// The macro benchmark suite in Table 2 order, as typed [`WorkloadId`]s.
pub fn macro_suite(scale: Scale) -> Vec<WorkloadId> {
    let mut suite = vec![WorkloadId::macro_bench(Language::C, "des", scale)];
    for language in [
        Language::Mipsi,
        Language::Javelin,
        Language::Perlite,
        Language::Tclite,
    ] {
        suite.extend(
            macro_names(language)
                .iter()
                .map(|&name| WorkloadId::macro_bench(language, name, scale)),
        );
    }
    suite
}

/// The compiled comparison set for Figure 3 (the paper's SPEC programs,
/// run natively).
pub fn compiled_suite(scale: Scale) -> Vec<WorkloadId> {
    macro_names(Language::C)
        .iter()
        .map(|&name| WorkloadId::macro_bench(Language::C, name, scale))
        .collect()
}

/// The Table 1 microbenchmark grid: every micro in all five languages.
pub fn micro_suite(scale: Scale) -> Vec<WorkloadId> {
    let mut suite = Vec::new();
    for &name in micro::MICRO_NAMES.iter() {
        for language in Language::ALL {
            suite.push(WorkloadId::micro(language, name, scale));
        }
    }
    suite
}

fn n(scale: Scale, test: u32, paper: u32) -> String {
    match scale {
        Scale::Test => test.to_string(),
        Scale::Paper => paper.to_string(),
    }
}

fn nu(scale: Scale, test: usize, paper: usize) -> usize {
    match scale {
        Scale::Test => test,
        Scale::Paper => paper,
    }
}

/// Mini-C source + input files for a compiled/MIPSI workload.
// Workload names are a closed, compile-time set; `guarded::run_guarded`
// validates names before this lookup, so the panic is a programmer error.
#[allow(clippy::panic)]
pub(crate) fn minic_workload(name: &str, scale: Scale) -> (String, Vec<(String, Vec<u8>)>) {
    match name {
        "des" => (
            instantiate(minic_progs::DES_C, &[("BLOCKS", n(scale, 20, 400))]),
            vec![],
        ),
        "compress" => {
            let bufsz = nu(scale, 4096, 32768);
            let words = nu(scale, 500, 4500);
            // The paper-scale hash tables span ~1 MB, far past the
            // 32-entry dTLB's 256 KB reach — the §4.1 compress phenomenon.
            let hsize = nu(scale, 8192, 131072);
            (
                instantiate(
                    minic_progs::COMPRESS_C,
                    &[
                        ("BUFSZ", bufsz.to_string()),
                        ("HSIZE", hsize.to_string()),
                        ("HMASK", (hsize - 1).to_string()),
                    ],
                ),
                vec![("input.txt".into(), inputs::text_corpus(words))],
            )
        }
        "eqntott" => (
            instantiate(minic_progs::EQNTOTT_C, &[("VARS", n(scale, 8, 13))]),
            vec![],
        ),
        "espresso" => {
            let cubes = n(scale, 40, 160);
            (
                instantiate(
                    minic_progs::ESPRESSO_C,
                    &[("CUBES", cubes.clone()), ("CUBES2", cubes)],
                ),
                vec![],
            )
        }
        "li" => (
            instantiate(
                minic_progs::LI_C,
                &[
                    ("SRCSZ", "32768".into()),
                    ("CELLS", "8192".into()),
                    ("ROUNDS", n(scale, 3, 40)),
                ],
            ),
            vec![(
                "program.lsp".into(),
                minic_progs::lisp_program(nu(scale, 6, 10) as u32),
            )],
        ),
        "cc_lite" => (
            instantiate(minic_progs::CC_LITE_C, &[("SRCSZ", "65536".into())]),
            vec![(
                "unit.c".into(),
                inputs::source_like(nu(scale, 20, 150)),
            )],
        ),
        other => panic!("unknown mini-C workload `{other}`"),
    }
}

/// Joule source + files + events.
// Workload names are a closed, compile-time set; `guarded::run_guarded`
// validates names before this lookup, so the panic is a programmer error.
#[allow(clippy::panic)]
pub(crate) fn joule_workload(
    name: &str,
    scale: Scale,
) -> (String, Vec<(String, Vec<u8>)>, Vec<UiEvent>) {
    match name {
        "des" => (
            instantiate(joule_progs::DES_JL, &[("BLOCKS", n(scale, 10, 150))]),
            vec![],
            vec![],
        ),
        "asteroids" => {
            let frames = nu(scale, 10, 90);
            let mut events = Vec::new();
            for i in 0..frames {
                events.push(UiEvent::Tick);
                if i % 3 == 0 {
                    events.push(UiEvent::Key(b' '));
                }
            }
            events.push(UiEvent::Quit);
            (
                instantiate(joule_progs::ASTEROIDS_JL, &[("ROCKS", n(scale, 6, 14))]),
                vec![],
                events,
            )
        }
        "hanoi" => (
            instantiate(joule_progs::HANOI_JL, &[("DISKS", n(scale, 5, 8))]),
            vec![],
            vec![],
        ),
        "javac" => (
            joule_progs::JAVAC_JL.to_string(),
            vec![(
                "unit.c".into(),
                inputs::source_like(nu(scale, 15, 120)),
            )],
            vec![],
        ),
        "mand" => {
            let mut events = vec![UiEvent::Tick];
            for (x, y) in [(140u16, 100u16), (120, 90), (130, 95)] {
                events.push(UiEvent::Click { x, y });
            }
            events.push(UiEvent::Quit);
            (
                instantiate(
                    joule_progs::MAND_JL,
                    &[
                        ("W", n(scale, 32, 96)),
                        ("H", n(scale, 24, 72)),
                    ],
                ),
                vec![],
                events,
            )
        }
        other => panic!("unknown Joule workload `{other}`"),
    }
}

// Workload names are a closed, compile-time set; `guarded::run_guarded`
// validates names before this lookup, so the panic is a programmer error.
#[allow(clippy::panic)]
pub(crate) fn perl_workload(name: &str, scale: Scale) -> (String, Vec<(String, Vec<u8>)>) {
    match name {
        "des" => (
            instantiate(perl_progs::DES_PL, &[("BLOCKS", n(scale, 4, 40))]),
            vec![],
        ),
        "a2ps" => (
            perl_progs::A2PS_PL.to_string(),
            vec![(
                "input.txt".into(),
                inputs::text_corpus(nu(scale, 120, 1500)),
            )],
        ),
        "plexus" => (
            perl_progs::PLEXUS_PL.to_string(),
            vec![(
                "requests.txt".into(),
                inputs::http_requests(nu(scale, 12, 150)),
            )],
        ),
        "txt2html" => (
            perl_progs::TXT2HTML_PL.to_string(),
            vec![(
                "input.txt".into(),
                inputs::markup_text(nu(scale, 120, 1200)),
            )],
        ),
        "weblint" => (
            perl_progs::WEBLINT_PL.to_string(),
            vec![("page.html".into(), inputs::html_page(nu(scale, 10, 80)))],
        ),
        other => panic!("unknown Perl workload `{other}`"),
    }
}

// Workload names are a closed, compile-time set; `guarded::run_guarded`
// validates names before this lookup, so the panic is a programmer error.
#[allow(clippy::panic)]
pub(crate) fn tcl_workload(
    name: &str,
    scale: Scale,
) -> (String, Vec<(String, Vec<u8>)>, Vec<UiEvent>) {
    match name {
        "des" => (
            instantiate(tcl_progs::DES_TCL, &[("BLOCKS", n(scale, 1, 2))]),
            vec![],
            vec![],
        ),
        "tcllex" => (
            tcl_progs::TCLLEX_TCL.to_string(),
            vec![("source.txt".into(), inputs::source_like(nu(scale, 2, 10)))],
            vec![],
        ),
        "tcltags" => (
            tcl_progs::TCLTAGS_TCL.to_string(),
            vec![(
                "procs.tcl".into(),
                inputs::tcl_source_like(nu(scale, 6, 60)),
            )],
            vec![],
        ),
        "hanoi" => (
            instantiate(tcl_progs::HANOI_TCL, &[("DISKS", n(scale, 3, 5))]),
            vec![],
            vec![],
        ),
        "demos" => {
            let clicks = nu(scale, 2, 12);
            let mut events = Vec::new();
            for i in 0..clicks {
                events.push(UiEvent::Click {
                    x: (20 + i * 13) as u16,
                    y: (30 + i * 7) as u16,
                });
                if i % 3 == 1 {
                    events.push(UiEvent::Expose);
                }
            }
            events.push(UiEvent::Quit);
            (tcl_progs::DEMOS_TCL.to_string(), vec![], events)
        }
        "tkdiff" => {
            let (a, b) = inputs::diff_pair(nu(scale, 21, 90));
            (
                tcl_progs::TKDIFF_TCL.to_string(),
                vec![("a.txt".into(), a), ("b.txt".into(), b)],
                vec![],
            )
        }
        "ical" => {
            let clicks = nu(scale, 3, 15);
            let mut events = Vec::new();
            for i in 0..clicks {
                events.push(UiEvent::Click {
                    x: (10 + (i * 37) % 230) as u16,
                    y: (20 + (i * 29) % 150) as u16,
                });
                if i % 4 == 2 {
                    events.push(UiEvent::Expose);
                }
            }
            events.push(UiEvent::Quit);
            (tcl_progs::ICAL_TCL.to_string(), vec![], events)
        }
        "xf" => (
            tcl_progs::XF_TCL.to_string(),
            vec![(
                "layout.spec".into(),
                inputs::xf_layout(nu(scale, 8, 40)),
            )],
            vec![],
        ),
        other => panic!("unknown Tcl workload `{other}`"),
    }
}

/// Legacy per-interpreter step budget handed to engines that take one.
/// High enough that the unified [`Limits`] — not this constant — is what
/// bounds a supervised run.
const RUN_BUDGET: u64 = 2_000_000_000;

fn bad_program(language: Language, detail: impl std::fmt::Display) -> GuardError {
    GuardError::BadProgram {
        lang: language.tag(),
        detail: detail.to_string(),
    }
}

/// Compile `src` for `language` and execute it on the matching engine
/// under `limits`, with `files` preloaded into the simulated filesystem
/// and `events` queued on the UI ring. This is the one place a source
/// string meets an interpreter: the macro and micro registries resolve
/// names to sources and call it, and the conformance engine feeds it
/// generated programs directly.
pub fn run_source_with<S: TraceSink>(
    language: Language,
    src: &str,
    files: Vec<(String, Vec<u8>)>,
    events: Vec<UiEvent>,
    limits: Limits,
    sink: S,
) -> Result<RunResult<S>, GuardError> {
    run_source_dispatch(
        language,
        src,
        files,
        events,
        limits,
        DispatchStrategy::Naive,
        DispatchFault::None,
        sink,
    )
}

/// [`run_source_with`] plus the dispatch axis: selects `dispatch` on the
/// engine (through the shared [`Dispatch`] trait, clamped to what the
/// engine implements) and injects `fault` (conformance testing only).
#[allow(clippy::too_many_arguments)]
pub fn run_source_dispatch<S: TraceSink>(
    language: Language,
    src: &str,
    files: Vec<(String, Vec<u8>)>,
    events: Vec<UiEvent>,
    limits: Limits,
    dispatch: DispatchStrategy,
    fault: DispatchFault,
    sink: S,
) -> Result<RunResult<S>, GuardError> {
    let mut m = Machine::with_limits(sink, limits);
    for (fname, contents) in files {
        m.fs_add_file(&fname, contents);
    }
    for e in events {
        m.post_event(e);
    }
    match language {
        Language::C => {
            let image = interp_minic::compile(src).map_err(|e| bad_program(language, e))?;
            let program_bytes = image.size_bytes() as usize;
            let mut exec = interp_nativeref::DirectExecutor::new(&image, &mut m);
            let res = exec.run(RUN_BUDGET);
            let commands = exec.commands().clone();
            drop(exec);
            res.map_err(GuardError::from)?;
            try_finish(language, m, commands, program_bytes)
        }
        Language::Mipsi => {
            let image = interp_minic::compile(src).map_err(|e| bad_program(language, e))?;
            let program_bytes = image.size_bytes() as usize;
            let mut emu = interp_mipsi::Mipsi::new(&image, &mut m);
            emu.set_strategy(dispatch);
            emu.inject_fault(fault);
            let res = emu.run(RUN_BUDGET);
            let commands = emu.commands().clone();
            drop(emu);
            res.map_err(GuardError::from)?;
            try_finish(language, m, commands, program_bytes)
        }
        Language::Javelin => {
            let prog = interp_javelin::compile(src).map_err(|e| bad_program(language, e))?;
            let program_bytes = prog.code_bytes();
            let mut vm = interp_javelin::Jvm::new(&mut m, prog);
            vm.set_strategy(dispatch);
            vm.inject_fault(fault);
            let res = vm.run(RUN_BUDGET);
            let commands = vm.commands().clone();
            drop(vm);
            res.map_err(GuardError::from)?;
            try_finish(language, m, commands, program_bytes)
        }
        Language::Perlite => {
            let program_bytes = src.len();
            let mut p = interp_perlite::Perlite::new(&mut m, src).map_err(GuardError::from)?;
            p.set_strategy(dispatch);
            p.inject_fault(fault);
            let res = p.run();
            let commands = p.commands().clone();
            drop(p);
            res.map_err(GuardError::from)?;
            try_finish(language, m, commands, program_bytes)
        }
        Language::Tclite => {
            let program_bytes = src.len();
            let mut tcl = interp_tclite::Tclite::new(&mut m);
            tcl.set_strategy(dispatch);
            tcl.inject_fault(fault);
            let res = tcl.run(src);
            let commands = tcl.commands().clone();
            drop(tcl);
            res.map_err(GuardError::from)?;
            try_finish(language, m, commands, program_bytes)
        }
    }
}

/// Run a bare source string (no input files, no UI events) on
/// `language`'s engine under `limits`. The conformance engine's entry
/// point: lowered IR programs are self-contained by construction.
pub fn try_run_source<S: TraceSink>(
    language: Language,
    src: &str,
    limits: Limits,
    sink: S,
) -> Result<RunResult<S>, GuardError> {
    run_source_with(language, src, Vec::new(), Vec::new(), limits, sink)
}

/// [`try_run_source`] under a dispatch strategy with an optional injected
/// dispatch-tier fault — the conformance engine's strategy-witness entry
/// point.
pub fn try_run_source_dispatch<S: TraceSink>(
    language: Language,
    src: &str,
    limits: Limits,
    dispatch: DispatchStrategy,
    fault: DispatchFault,
    sink: S,
) -> Result<RunResult<S>, GuardError> {
    run_source_dispatch(
        language,
        src,
        Vec::new(),
        Vec::new(),
        limits,
        dispatch,
        fault,
        sink,
    )
}

/// Run one macro benchmark under `limits` and return its counters, with
/// every failure — unknown name, compile error, limit trip, runtime
/// error, failed self-check — as a typed [`GuardError`] instead of a
/// panic. This is the entry point the supervised run-plan pool uses so a
/// fuel deadline (`limits.max_host_steps`) stops a wedged run
/// cooperatively at its next guard poll.
pub fn try_run_macro<S: TraceSink>(
    language: Language,
    name: &str,
    scale: Scale,
    limits: Limits,
    sink: S,
) -> Result<RunResult<S>, GuardError> {
    try_run_macro_dispatch(language, name, scale, limits, DispatchStrategy::Naive, sink)
}

/// [`try_run_macro`] under a dispatch strategy.
pub fn try_run_macro_dispatch<S: TraceSink>(
    language: Language,
    name: &str,
    scale: Scale,
    limits: Limits,
    dispatch: DispatchStrategy,
    sink: S,
) -> Result<RunResult<S>, GuardError> {
    if !macro_names(language).contains(&name) {
        return Err(bad_program(language, format!("unknown macro workload `{name}`")));
    }
    let (src, files, events) = match language {
        Language::C | Language::Mipsi => {
            let (src, files) = minic_workload(name, scale);
            (src, files, vec![])
        }
        Language::Javelin => joule_workload(name, scale),
        Language::Perlite => {
            let (src, files) = perl_workload(name, scale);
            (src, files, vec![])
        }
        Language::Tclite => tcl_workload(name, scale),
    };
    run_source_dispatch(
        language,
        &src,
        files,
        events,
        limits,
        dispatch,
        DispatchFault::None,
        sink,
    )
}

/// Run one macro benchmark and return its counters.
///
/// # Panics
///
/// Panics on unknown `(language, name)` pairs or if the workload fails
/// its own self-check — benchmarks that silently compute garbage are
/// worse than crashes. Use [`try_run_macro`] for a panic-free boundary.
// The panic is the documented contract of this legacy entry point; the
// supervised pool goes through `try_run_macro` instead.
#[allow(clippy::panic)]
pub fn run_macro<S: TraceSink>(
    language: Language,
    name: &str,
    scale: Scale,
    sink: S,
) -> RunResult<S> {
    try_run_macro(language, name, scale, Limits::unlimited(), sink)
        .unwrap_or_else(|e| panic!("macro workload {language}/{name} failed: {e}"))
}

/// Run one Table 1 microbenchmark under `limits`, with every failure as
/// a typed [`GuardError`]. The C variant is also the MIPSI guest.
pub fn try_run_micro<S: TraceSink>(
    language: Language,
    name: &str,
    scale: Scale,
    limits: Limits,
    sink: S,
) -> Result<RunResult<S>, GuardError> {
    try_run_micro_dispatch(language, name, scale, limits, DispatchStrategy::Naive, sink)
}

/// [`try_run_micro`] under a dispatch strategy.
pub fn try_run_micro_dispatch<S: TraceSink>(
    language: Language,
    name: &str,
    scale: Scale,
    limits: Limits,
    dispatch: DispatchStrategy,
    sink: S,
) -> Result<RunResult<S>, GuardError> {
    if !micro::MICRO_NAMES.contains(&name) {
        return Err(bad_program(language, format!("unknown microbenchmark `{name}`")));
    }
    // Iteration counts per language tier (high-level interpreters execute
    // fewer iterations of the same operation, as the paper's 5-second
    // trials did implicitly). Counts are high enough to amortize each
    // runtime's fixed startup cost below the per-iteration cost.
    let iters_c = n(scale, 2000, 20000);
    let iters_low = n(scale, 300, 3000); // mipsi, javelin
    let iters_perl = n(scale, 120, 1000);
    let iters_tcl = n(scale, 15, 80);
    let io_iters = |base: &str| -> String {
        // The read benchmark is dominated by the shared kernel copy; keep
        // counts lower so runs stay quick.
        match base {
            "read" => n(scale, 5, 60),
            _ => unreachable!(),
        }
    };
    let warm_file = ("warm.dat".to_string(), vec![0x5au8; 4096]);
    let (template, iters) = match language {
        Language::C => (micro::micro_c(name), iters_c),
        Language::Mipsi => (micro::micro_c(name), iters_low),
        Language::Javelin => (micro::micro_joule(name), iters_low),
        Language::Perlite => (micro::micro_perl(name), iters_perl),
        Language::Tclite => (micro::micro_tcl(name), iters_tcl),
    };
    let iters = if name == "read" { io_iters("read") } else { iters };
    let src = instantiate(template, &[("N", iters)]);
    run_source_dispatch(
        language,
        &src,
        vec![warm_file],
        vec![],
        limits,
        dispatch,
        DispatchFault::None,
        sink,
    )
}

/// Run one Table 1 microbenchmark. The C variant is also the MIPSI guest.
///
/// # Panics
///
/// Panics on unknown names or failed self-checks. Use [`try_run_micro`]
/// for a panic-free boundary.
// The panic is the documented contract of this legacy entry point; the
// supervised pool goes through `try_run_micro` instead.
#[allow(clippy::panic)]
pub fn run_micro<S: TraceSink>(
    language: Language,
    name: &str,
    scale: Scale,
    sink: S,
) -> RunResult<S> {
    try_run_micro(language, name, scale, Limits::unlimited(), sink)
        .unwrap_or_else(|e| panic!("microbenchmark {language}/{name} failed: {e}"))
}

/// Microbenchmark iteration count for `(language, name, scale)` — needed
/// to normalize slowdowns per iteration.
pub fn micro_iterations(language: Language, name: &str, scale: Scale) -> u64 {
    let v = |s: &str| s.parse::<u64>().expect("numeric");
    if name == "read" {
        return v(&n(scale, 5, 60));
    }
    match language {
        Language::C => v(&n(scale, 2000, 20000)),
        Language::Mipsi | Language::Javelin => v(&n(scale, 300, 3000)),
        Language::Perlite => v(&n(scale, 120, 1000)),
        Language::Tclite => v(&n(scale, 15, 80)),
    }
}

/// The unified runner facade: one typed entry point over
/// [`run_macro`], [`run_micro`], and the guarded runner, dispatching on
/// [`WorkloadId::kind`]. Experiments and the run-plan engine go through
/// this instead of choosing an entry point by hand.
pub struct Runner;

impl Runner {
    /// Run `workload` into `sink` and return the full result.
    ///
    /// # Panics
    ///
    /// Panics on unknown workload names or failed self-checks, exactly
    /// like the underlying entry points. Use [`Runner::run_guarded`] for
    /// a panic-free boundary.
    pub fn run<S: TraceSink>(workload: WorkloadId, sink: S) -> RunResult<S> {
        match workload.kind {
            WorkloadKind::Macro => {
                run_macro(workload.language, workload.name, workload.scale, sink)
            }
            WorkloadKind::Micro => {
                run_micro(workload.language, workload.name, workload.scale, sink)
            }
        }
    }

    /// Run `workload` into `sink` under `limits`, with every failure as
    /// a typed [`GuardError`] instead of a panic. This is the supervised
    /// pool's entry point: a fuel deadline rides in on
    /// `limits.max_host_steps` and surfaces as
    /// [`GuardError::HostStepBudget`].
    pub fn try_run<S: TraceSink>(
        workload: WorkloadId,
        limits: Limits,
        sink: S,
    ) -> Result<RunResult<S>, GuardError> {
        Runner::try_run_dispatch(workload, limits, DispatchStrategy::Naive, sink)
    }

    /// [`Runner::try_run`] under a dispatch strategy — the entry point
    /// the run-plan executor uses to honor [`RunRequest::dispatch`]
    /// (strategies unsupported by the workload's engine clamp to naive).
    ///
    /// [`RunRequest::dispatch`]: interp_core::RunRequest
    pub fn try_run_dispatch<S: TraceSink>(
        workload: WorkloadId,
        limits: Limits,
        dispatch: DispatchStrategy,
        sink: S,
    ) -> Result<RunResult<S>, GuardError> {
        match workload.kind {
            WorkloadKind::Macro => try_run_macro_dispatch(
                workload.language,
                workload.name,
                workload.scale,
                limits,
                dispatch,
                sink,
            ),
            WorkloadKind::Micro => try_run_micro_dispatch(
                workload.language,
                workload.name,
                workload.scale,
                limits,
                dispatch,
                sink,
            ),
        }
    }

    /// Run `workload` under resource limits with fault injection, never
    /// panicking. See [`crate::guarded::run_guarded`].
    pub fn run_guarded(
        workload: WorkloadId,
        limits: interp_guard::Limits,
        plan: &interp_guard::FaultPlan,
    ) -> crate::guarded::GuardedRun {
        crate::guarded::run_guarded(workload, limits, plan)
    }
}

fn try_finish<S: TraceSink>(
    language: Language,
    mut machine: Machine<S>,
    commands: CommandSet,
    program_bytes: usize,
) -> Result<RunResult<S>, GuardError> {
    let console = String::from_utf8_lossy(&machine.take_console()).into_owned();
    // Benchmarks that silently compute garbage are worse than crashes:
    // a failed self-check is a runtime fault, not a degraded success.
    if console.contains("BAD") {
        return Err(GuardError::Runtime {
            lang: language.tag(),
            detail: "workload failed its self-check".into(),
        });
    }
    let (stats, sink) = machine.into_parts();
    Ok(RunResult {
        stats,
        commands,
        console,
        sink,
        program_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp_core::NullSink;

    #[test]
    fn entire_macro_suite_runs_at_test_scale() {
        for id in macro_suite(Scale::Test) {
            let result = Runner::run(id, NullSink);
            assert!(
                result.stats.instructions > 1000,
                "{id}: too few instructions"
            );
            assert!(
                result.console.contains("OK"),
                "{id}: no self-check output: {}",
                result.console
            );
            let artifact = result.base_artifact();
            assert!(artifact.console.ok, "{id}: digest disagrees with console");
            assert_eq!(artifact.stats.instructions, result.stats.instructions);
        }
    }

    #[test]
    fn compiled_suite_runs() {
        for id in compiled_suite(Scale::Test) {
            let result = Runner::run(id, NullSink);
            assert!(result.console.contains("OK"), "{id}");
            // Native execution: fetch/decode is free.
            assert_eq!(result.stats.avg_fetch_decode(), 0.0, "{id}");
        }
    }

    #[test]
    fn suites_are_typed_and_sized_like_the_paper() {
        let macros = macro_suite(Scale::Test);
        assert_eq!(macros.len(), 24, "Table 2 has 24 rows");
        assert!(macros.iter().all(|id| id.kind == WorkloadKind::Macro));
        let micros = micro_suite(Scale::Test);
        assert_eq!(micros.len(), 30, "Table 1: 6 micros x 5 languages");
        assert!(micros.iter().all(|id| id.kind == WorkloadKind::Micro));
        // Every suite id is resolvable by name in its language registry.
        for id in macros {
            assert!(macro_names(id.language).contains(&id.name), "{id}");
        }
    }

    #[test]
    fn des_agrees_across_all_five_languages() {
        // All runs use Test scale but different BLOCKS; rerun the C
        // version at each interpreter's block count and compare.
        use crate::minic_progs::{instantiate, DES_C};
        for (lang, blocks) in [
            (Language::Mipsi, 20u32),
            (Language::Javelin, 10),
            (Language::Perlite, 4),
            (Language::Tclite, 1),
        ] {
            let interp = run_macro(lang, "des", Scale::Test, NullSink);
            let src = instantiate(DES_C, &[("BLOCKS", blocks.to_string())]);
            let image = interp_minic::compile(&src).unwrap();
            let mut m = Machine::new(NullSink);
            let mut exec = interp_nativeref::DirectExecutor::new(&image, &mut m);
            exec.run(1_000_000_000).unwrap();
            drop(exec);
            let native = String::from_utf8_lossy(m.console()).into_owned();
            assert_eq!(interp.console, native, "{lang} des disagrees with C");
        }
    }

    #[test]
    fn all_micros_run_in_all_languages() {
        for name in crate::micro::MICRO_NAMES {
            for lang in Language::ALL {
                let result = run_micro(lang, name, Scale::Test, NullSink);
                assert!(
                    result.stats.instructions > 50,
                    "{lang} {name}: {} instructions",
                    result.stats.instructions
                );
                assert!(micro_iterations(lang, name, Scale::Test) > 0);
            }
        }
    }

    #[test]
    fn fetch_decode_ordering_matches_table_2() {
        // Table 2's central claim: F/D(MIPSI) ≈ F/D(Java) ≪ F/D(Perl) ≪
        // F/D(Tcl).
        let mipsi = run_macro(Language::Mipsi, "des", Scale::Test, NullSink)
            .stats
            .avg_fetch_decode();
        let java = run_macro(Language::Javelin, "des", Scale::Test, NullSink)
            .stats
            .avg_fetch_decode();
        let perl = run_macro(Language::Perlite, "des", Scale::Test, NullSink)
            .stats
            .avg_fetch_decode();
        let tcl = run_macro(Language::Tclite, "des", Scale::Test, NullSink)
            .stats
            .avg_fetch_decode();
        assert!(java < 40.0, "java fd = {java}");
        assert!(mipsi < 100.0, "mipsi fd = {mipsi}");
        assert!(perl > java, "perl {perl} <= java {java}");
        assert!(tcl > 3.0 * perl, "tcl {tcl} not ≫ perl {perl}");
    }
}
