//! The Tclite workloads.
//!
//! Mirrors the paper's Tcl suite: des (same output as the compiled
//! version, on a much smaller input — Tcl executes thousands of native
//! instructions per command), tcllex (a lexical analyzer), tcltags (an
//! emacs-tags generator), and the Tk-based hanoi, demos, and tkdiff.

/// DES-like Feistel cipher, identical output to the C version for the
/// same `{BLOCKS}`.
pub const DES_TCL: &str = r#"
proc fround {r k} {
    return [expr (($r * 31 + $k) ^ ($r >> 3) ^ ($k * 4)) & 65535]
}

proc encrypt {l r klist} {
    for {set i 0} {$i < 16} {incr i} {
        set t $r
        set r [expr $l ^ [fround $r [lindex $klist $i]]]
        set l $t
    }
    return [expr $l * 65536 + $r]
}

proc decrypt {l r klist} {
    for {set i 15} {$i >= 0} {incr i -1} {
        set t $l
        set l [expr $r ^ [fround $l [lindex $klist $i]]]
        set r $t
    }
    return [expr $l * 65536 + $r]
}

set k 12345
set klist {}
for {set i 0} {$i < 16} {incr i} {
    set k [expr ($k * 1103 + 12849) % 65536]
    lappend klist $k
}
set sum 0
set bad 0
set block 9029
for {set i 0} {$i < {BLOCKS}} {incr i} {
    set block [expr ($block * 1103 + 12849) % 2147483648]
    set l [expr ($block / 65536) % 65536]
    set r [expr $block % 65536]
    set c [encrypt $l $r $klist]
    set cl [expr ($c / 65536) % 65536]
    set cr [expr $c % 65536]
    set sum [expr ($sum + $cl + $cr) % 16777216]
    set p [decrypt $cl $cr $klist]
    if {[expr ($p / 65536) % 65536] != $l} { incr bad }
    if {[expr $p % 65536] != $r} { incr bad }
}
if {$bad} { puts "BAD $bad" } else { puts "OK $sum" }
"#;

/// A lexical analyzer: per-character scanning via `string index`, the
/// classic Tcl-is-slow-at-this workload.
pub const TCLLEX_TCL: &str = r#"
set f [open source.txt]
set src [read $f]
close $f
set n [string length $src]
set i 0
set nident 0
set nnum 0
set npunct 0
set sum 0
while {$i < $n} {
    set c [string index $src $i]
    if {[string compare $c " "] == 0 || [string compare $c "\n"] == 0 || [string compare $c "\t"] == 0} {
        incr i
        continue
    }
    set code [string ord $c]
    if {($code >= 97 && $code <= 122) || ($code >= 65 && $code <= 90) || $code == 95} {
        set len 0
        while {$i < $n} {
            set c [string index $src $i]
            set code [string ord $c]
            if {($code >= 97 && $code <= 122) || ($code >= 65 && $code <= 90) || ($code >= 48 && $code <= 57) || $code == 95} {
                incr i
                incr len
            } else {
                break
            }
        }
        incr nident
        set sum [expr ($sum + $len) % 16777216]
        continue
    }
    if {$code >= 48 && $code <= 57} {
        set v 0
        while {$i < $n} {
            set c [string index $src $i]
            set code [string ord $c]
            if {$code >= 48 && $code <= 57} {
                set v [expr $v * 10 + $code - 48]
                incr i
            } else {
                break
            }
        }
        incr nnum
        set sum [expr ($sum + $v) % 16777216]
        continue
    }
    incr npunct
    incr i
}
puts "OK $nident $nnum $npunct $sum"
"#;

/// tcltags: scan Tcl source for `proc` definitions and build a tags list.
pub const TCLTAGS_TCL: &str = r#"
set f [open procs.tcl]
set tags {}
set lineno 0
while {[gets $f line] >= 0} {
    incr lineno
    if {[string compare [string range $line 0 4] "proc "] == 0} {
        set rest [string range $line 5 [string length $line]]
        set sp [string first " " $rest]
        if {$sp > 0} {
            set name [string range $rest 0 [expr $sp - 1]]
        } else {
            set name $rest
        }
        lappend tags "$name:$lineno"
    }
}
close $f
set out ""
foreach t $tags { append out $t " " }
puts $out
puts "OK [llength $tags] $lineno"
"#;

/// Tk towers of Hanoi: recursion with a canvas redraw per move.
pub const HANOI_TCL: &str = r#"
set moves 0
set h(0) {DISKS}
set h(1) 0
set h(2) 0

proc draw_move {from to disk} {
    global h
    tk_rect [expr $from * 80 + 10] 40 60 120 0
    tk_rect [expr $to * 80 + 10] 40 60 120 0
    tk_rect [expr $from * 80 + 38] 40 4 120 7
    tk_rect [expr $to * 80 + 38] 40 4 120 7
    tk_rect [expr $to * 80 + 40 - $disk * 5] [expr 150 - $h($to) * 10] [expr $disk * 10] 8 [expr $disk + 1]
    tk_update
}

proc hanoi {n from to via} {
    global moves h
    if {$n == 0} { return }
    hanoi [expr $n - 1] $from $via $to
    incr moves
    set h($from) [expr $h($from) - 1]
    set h($to) [expr $h($to) + 1]
    draw_move $from $to $n
    hanoi [expr $n - 1] $via $to $from
}

tk_clear 0
hanoi {DISKS} 0 2 1
puts "OK $moves"
"#;

/// Tk widget demos: build a screen of widgets, then service a synthetic
/// event stream.
pub const DEMOS_TCL: &str = r#"
proc draw_screen {offset} {
    tk_clear 0
    for {set row 0} {$row < 4} {incr row} {
        for {set col 0} {$col < 3} {incr col} {
            set x [expr $col * 84 + 4 + $offset]
            set y [expr $row * 46 + 4]
            tk_widget $x $y 78 40 "w$row$col"
        }
    }
    tk_text 8 188 "demo screen" 6
    tk_update
}

draw_screen 0
set clicks 0
set redraws 1
set running 1
while {$running} {
    set e [tk_nextevent]
    set kind [lindex $e 0]
    if {[string compare $kind "quit"] == 0 || [string compare $kind "none"] == 0} {
        set running 0
    } elseif {[string compare $kind "click"] == 0} {
        incr clicks
        draw_screen [expr $clicks % 7]
        incr redraws
    } elseif {[string compare $kind "expose"] == 0} {
        draw_screen 0
        incr redraws
    }
}
puts "OK $clicks $redraws"
"#;

/// ical: an interactive calendar — appointments in an associative array
/// keyed by day, a month grid redraw, and event-driven day selection.
pub const ICAL_TCL: &str = r#"
proc draw_month {selected} {
    global appts
    tk_clear 7
    tk_text 90 4 "July 1996" 0
    for {set day 1} {$day <= 31} {incr day} {
        set col [expr ($day + 0) % 7]
        set row [expr ($day + 6) / 7]
        set x [expr $col * 36 + 4]
        set y [expr $row * 30 + 14]
        if {$day == $selected} {
            tk_rect $x $y 32 26 3
        } else {
            tk_rect $x $y 32 26 6
        }
        if {[info_has $day]} {
            tk_oval [expr $x + 26] [expr $y + 6] 3 1
        }
    }
    tk_update
}

proc info_has {day} {
    global appts
    if {[string length $appts($day)] > 0} { return 1 }
    return 0
}

# Populate a month of appointments.
for {set d 1} {$d <= 31} {incr d} { set appts($d) "" }
set appts(4) "holiday"
set appts(11) "paper deadline"
set appts(18) "review meeting"
set appts(25) "asplos travel"

draw_month 1
set selected 1
set opens 0
set running 1
while {$running} {
    set e [tk_nextevent]
    set kind [lindex $e 0]
    if {[string compare $kind "quit"] == 0 || [string compare $kind "none"] == 0} {
        set running 0
    } elseif {[string compare $kind "click"] == 0} {
        set x [lindex $e 1]
        set y [lindex $e 2]
        set col [expr $x / 36]
        set row [expr ($y - 14) / 30]
        set day [expr $row * 7 + $col]
        if {$day < 1} { set day 1 }
        if {$day > 31} { set day 31 }
        set selected $day
        draw_month $selected
        if {[info_has $day]} {
            tk_text 4 180 $appts($day) 0
            incr opens
        }
        tk_update
    } elseif {[string compare $kind "expose"] == 0} {
        draw_month $selected
    }
}
puts "OK $selected $opens"
"#;

/// xf: an interface builder — reads a widget specification, generates
/// long-named variables for every attribute (the paper's 5200-instruction
/// fetch/decode row and 514-instruction symbol lookups come from exactly
/// this kind of generated code), and renders the layout.
pub const XF_TCL: &str = r#"
proc make_widget {kind index x y w h} {
    global widget_specification_table_count
    global widget_attribute_name_for_kind_$index widget_attribute_position_x_$index
    global widget_attribute_position_y_$index widget_attribute_dimension_w_$index
    global widget_attribute_dimension_h_$index
    set widget_attribute_name_for_kind_$index $kind
    set widget_attribute_position_x_$index $x
    set widget_attribute_position_y_$index $y
    set widget_attribute_dimension_w_$index $w
    set widget_attribute_dimension_h_$index $h
    incr widget_specification_table_count
    return $index
}

proc render_widget {index} {
    set kind [set_of widget_attribute_name_for_kind_$index]
    set x [set_of widget_attribute_position_x_$index]
    set y [set_of widget_attribute_position_y_$index]
    set w [set_of widget_attribute_dimension_w_$index]
    set h [set_of widget_attribute_dimension_h_$index]
    if {[string compare $kind button] == 0} {
        tk_widget $x $y $w $h "b$index"
    } elseif {[string compare $kind label] == 0} {
        tk_text $x $y "label$index" 6
    } else {
        tk_rect $x $y $w $h 5
    }
}

# One level of indirection, like xf's generated accessors.
proc set_of {name} {
    global $name
    return [set $name]
}

set widget_specification_table_count 0
set f [open layout.spec]
set nlines 0
while {[gets $f line] >= 0} {
    incr nlines
    set fields [split $line " "]
    if {[llength $fields] < 6} { continue }
    make_widget [lindex $fields 0] [lindex $fields 1] [lindex $fields 2] [lindex $fields 3] [lindex $fields 4] [lindex $fields 5]
}
close $f

tk_clear 0
for {set i 0} {$i < $widget_specification_table_count} {incr i} {
    render_widget $i
}
tk_update
puts "OK $widget_specification_table_count $nlines"
"#;

/// tkdiff: line-by-line comparison of two files with a graphical gutter.
pub const TKDIFF_TCL: &str = r#"
proc read_lines {name} {
    set f [open $name]
    set lines {}
    while {[gets $f line] >= 0} {
        lappend lines $line
    }
    close $f
    return $lines
}

set a [read_lines a.txt]
set b [read_lines b.txt]
set na [llength $a]
set nb [llength $b]
set same 0
set changed 0
set deleted 0
tk_clear 0
set i 0
set j 0
while {$i < $na && $j < $nb} {
    set la [lindex $a $i]
    set lb [lindex $b $j]
    if {[string compare $la $lb] == 0} {
        incr same
        tk_line 0 [expr $i % 190] 4 [expr $i % 190] 2
        incr i
        incr j
    } else {
        # If the next a-line matches this b-line, a's line was deleted.
        set del 0
        if {[expr $i + 1] < $na} {
            if {[string compare [lindex $a [expr $i + 1]] $lb] == 0} {
                set del 1
            }
        }
        if {$del} {
            incr deleted
            tk_rect 0 [expr $i % 190] 6 2 5
            incr i
        } else {
            incr changed
            tk_rect 0 [expr $i % 190] 6 2 4
            incr i
            incr j
        }
    }
}
set extra [expr $na - $i + $nb - $j]
tk_update
puts "OK $same $changed $deleted $extra"
"#;

#[cfg(test)]
mod tests {
    use crate::minic_progs::instantiate;
    use interp_core::NullSink;
    use interp_host::{Machine, UiEvent};

    fn run_tcl(
        src: &str,
        files: &[(&str, Vec<u8>)],
        events: Vec<UiEvent>,
    ) -> String {
        let mut m = Machine::new(NullSink);
        for (name, contents) in files {
            m.fs_add_file(name, contents.clone());
        }
        for e in events {
            m.post_event(e);
        }
        let mut tcl = interp_tclite::Tclite::new(&mut m);
        tcl.run(src).expect("script ok");
        drop(tcl);
        String::from_utf8_lossy(m.console()).into_owned()
    }

    #[test]
    fn des_output_matches_compiled_version() {
        let tcl = instantiate(super::DES_TCL, &[("BLOCKS", "1".into())]);
        let out_t = run_tcl(&tcl, &[], vec![]);

        let c = instantiate(crate::minic_progs::DES_C, &[("BLOCKS", "1".into())]);
        let image = interp_minic::compile(&c).unwrap();
        let mut m = Machine::new(NullSink);
        let mut exec = interp_nativeref::DirectExecutor::new(&image, &mut m);
        exec.run(100_000_000).unwrap();
        drop(exec);
        let out_c = String::from_utf8_lossy(m.console()).into_owned();
        assert_eq!(out_t, out_c, "Tcl and compiled C must agree");
    }

    #[test]
    fn tcllex_tokenizes() {
        let src = crate::inputs::source_like(2);
        let out = run_tcl(super::TCLLEX_TCL, &[("source.txt", src)], vec![]);
        let fields: Vec<&str> = out.split_whitespace().collect();
        assert_eq!(fields[0], "OK", "{out}");
        let nident: usize = fields[1].parse().unwrap();
        assert!(nident > 10, "{out}");
    }

    #[test]
    fn tcltags_extracts_procs() {
        let src = crate::inputs::tcl_source_like(6);
        let out = run_tcl(super::TCLTAGS_TCL, &[("procs.tcl", src)], vec![]);
        assert!(out.contains("handler_0:"), "{out}");
        let last = out.lines().last().unwrap();
        assert!(last.starts_with("OK 6 "), "{out}");
    }

    #[test]
    fn hanoi_counts_moves() {
        let src = instantiate(super::HANOI_TCL, &[("DISKS", "3".into())]);
        let out = run_tcl(&src, &[], vec![]);
        assert_eq!(out.lines().last().unwrap(), "OK 7");
    }

    #[test]
    fn demos_services_events() {
        let events = vec![
            UiEvent::Click { x: 10, y: 20 },
            UiEvent::Expose,
            UiEvent::Click { x: 90, y: 60 },
            UiEvent::Quit,
        ];
        let out = run_tcl(super::DEMOS_TCL, &[], events);
        assert_eq!(out.lines().last().unwrap(), "OK 2 4");
    }

    #[test]
    fn ical_selects_days() {
        let events = vec![
            UiEvent::Click { x: 40, y: 50 },
            UiEvent::Click { x: 150, y: 80 },
            UiEvent::Expose,
            UiEvent::Quit,
        ];
        let out = run_tcl(super::ICAL_TCL, &[], events);
        let last = out.lines().last().unwrap();
        let fields: Vec<&str> = last.split_whitespace().collect();
        assert_eq!(fields[0], "OK", "{out}");
        let selected: i64 = fields[1].parse().unwrap();
        assert!((1..=31).contains(&selected), "{out}");
    }

    #[test]
    fn xf_builds_widgets_with_generated_names() {
        let spec = crate::inputs::xf_layout(8);
        let out = run_tcl(super::XF_TCL, &[("layout.spec", spec)], vec![]);
        let last = out.lines().last().unwrap();
        assert!(last.starts_with("OK 8 "), "{out}");
    }

    #[test]
    fn xf_lookup_cost_exceeds_des() {
        // The paper's xf row: generated long-named variables drive the
        // highest per-access symbol-table costs of the Tcl suite.
        use interp_core::NullSink;
        let spec = crate::inputs::xf_layout(8);
        let mut m = Machine::new(NullSink);
        m.fs_add_file("layout.spec", spec);
        let mut tcl = interp_tclite::Tclite::new(&mut m);
        tcl.run(super::XF_TCL).unwrap();
        drop(tcl);
        let xf_cost = m.stats().avg_mem_model_cost();

        let src = crate::minic_progs::instantiate(super::DES_TCL, &[("BLOCKS", "1".into())]);
        let mut m2 = Machine::new(NullSink);
        let mut tcl2 = interp_tclite::Tclite::new(&mut m2);
        tcl2.run(&src).unwrap();
        drop(tcl2);
        let des_cost = m2.stats().avg_mem_model_cost();
        assert!(
            xf_cost > des_cost,
            "xf {xf_cost:.0} should exceed des {des_cost:.0} per access"
        );
    }

    #[test]
    fn tkdiff_compares() {
        let (a, b) = crate::inputs::diff_pair(21);
        let out = run_tcl(
            super::TKDIFF_TCL,
            &[("a.txt", a), ("b.txt", b)],
            vec![],
        );
        let fields: Vec<&str> = out
            .lines()
            .last()
            .unwrap()
            .split_whitespace()
            .collect();
        assert_eq!(fields[0], "OK", "{out}");
        let same: usize = fields[1].parse().unwrap();
        let changed: usize = fields[2].parse().unwrap();
        let deleted: usize = fields[3].parse().unwrap();
        assert!(same > 10, "{out}");
        assert!(changed > 0, "{out}");
        assert!(deleted > 0, "{out}");
    }
}
