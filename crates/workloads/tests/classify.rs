//! Exhaustive coverage of the supervisor's failure taxonomy:
//! `classify` must map every `RunOutcome` shape to the retry class the
//! supervision layer's policy assumes, and the mapping must stay total
//! as `GuardError` grows.

use interp_guard::{GuardError, RunOutcome};
use interp_workloads::{classify, FailureClass};

fn outcome_fixtures() -> Vec<(RunOutcome, FailureClass, &'static str)> {
    vec![
        (
            RunOutcome::Completed { exit: 0 },
            FailureClass::Success,
            "clean completion",
        ),
        (
            RunOutcome::Completed { exit: 3 },
            FailureClass::Success,
            "nonzero exit is still a structured completion",
        ),
        (
            RunOutcome::Faulted(GuardError::CommandBudget {
                executed: 10,
                cap: 10,
            }),
            FailureClass::Transient,
            "command budget",
        ),
        (
            RunOutcome::Faulted(GuardError::HostStepBudget {
                executed: 10,
                cap: 10,
            }),
            FailureClass::Transient,
            "host-step budget",
        ),
        (
            RunOutcome::Faulted(GuardError::OutOfMemory {
                requested: 64,
                live_bytes: 1024,
                cap: 1024,
            }),
            FailureClass::Transient,
            "heap cap",
        ),
        (
            RunOutcome::Faulted(GuardError::CallDepth { depth: 9, cap: 8 }),
            FailureClass::Transient,
            "call depth",
        ),
        (
            RunOutcome::Faulted(GuardError::HeapMisuse {
                addr: 0x10,
                detail: "double free",
            }),
            FailureClass::Transient,
            "heap misuse",
        ),
        (
            RunOutcome::Faulted(GuardError::TraceMismatch { expected: "branch" }),
            FailureClass::Transient,
            "trace mismatch",
        ),
        (
            RunOutcome::Faulted(GuardError::Runtime {
                lang: "tclite",
                detail: "can't read x".into(),
            }),
            FailureClass::Transient,
            "guest runtime error",
        ),
        (
            RunOutcome::Faulted(GuardError::BadProgram {
                lang: "perlite",
                detail: "parse error".into(),
            }),
            FailureClass::Permanent,
            "bad program: retrying cannot fix the source",
        ),
        (
            RunOutcome::Panicked("escaped".into()),
            FailureClass::Permanent,
            "panic: interpreter state is suspect",
        ),
    ]
}

#[test]
fn every_outcome_shape_classifies_as_documented() {
    for (outcome, expected, why) in outcome_fixtures() {
        assert_eq!(classify(&outcome), expected, "{why}: {outcome:?}");
    }
}

#[test]
fn only_success_comes_from_completion() {
    for (outcome, class, _) in outcome_fixtures() {
        assert_eq!(
            class == FailureClass::Success,
            matches!(outcome, RunOutcome::Completed { .. }),
            "{outcome:?}"
        );
    }
}

#[test]
fn panics_are_never_retried_structured_faults_usually_are() {
    // The policy the classes encode: permanent = quarantine, transient
    // = retry. A panic and a bad program must never look retryable.
    assert_eq!(
        classify(&RunOutcome::Panicked("p".into())),
        FailureClass::Permanent
    );
    assert_eq!(
        classify(&RunOutcome::Faulted(GuardError::BadProgram {
            lang: "minic",
            detail: "syntax".into()
        })),
        FailureClass::Permanent
    );
    assert_eq!(
        classify(&RunOutcome::Faulted(GuardError::CommandBudget {
            executed: 1,
            cap: 1
        })),
        FailureClass::Transient
    );
}
