//! Explore Figure 4 interactively: feed one benchmark's instruction
//! stream through twelve I-cache configurations at once and find its
//! working-set knee.
//!
//! ```sh
//! cargo run --release --example cache_explorer [tcl|perl|java]
//! ```

use interpreters::archsim::CacheSweep;
use interpreters::core::Language;
use interpreters::workloads::{run_macro, Scale};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "tcl".into());
    let (lang, bench) = match which.as_str() {
        "perl" => (Language::Perlite, "txt2html"),
        "java" => (Language::Javelin, "javac"),
        _ => (Language::Tclite, "tcltags"),
    };
    println!("sweeping I-cache configurations for {} {bench}...", lang.label());
    let result = run_macro(lang, bench, Scale::Test, CacheSweep::figure4());
    let sweep = result.sink;

    println!("\nmisses per 100 instructions:");
    println!("{:>8} {:>10} {:>10} {:>10}", "size", "direct", "2-way", "4-way");
    for kb in [8usize, 16, 32, 64] {
        let at = |assoc: usize| {
            sweep
                .point(kb * 1024, assoc)
                .map(|p| p.miss_per_100)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:>6}KB {:>10.2} {:>10.2} {:>10.2}",
            kb,
            at(1),
            at(2),
            at(4)
        );
    }

    // Locate the knee: the first size where the direct-mapped miss rate
    // drops below half of the 8 KB rate.
    let base = sweep.point(8 * 1024, 1).unwrap().miss_per_100;
    let knee = [16usize, 32, 64]
        .into_iter()
        .find(|kb| sweep.point(kb * 1024, 1).unwrap().miss_per_100 < base / 2.0);
    match knee {
        Some(kb) => println!(
            "\nworking-set knee: between {}KB and {kb}KB (paper: Tcl 16-32KB, Perl 32-64KB)",
            kb / 2
        ),
        None => println!("\nworking set exceeds 64KB for this benchmark"),
    }
}
