//! The paper's common reference point: the same DES-like cipher in all
//! five languages, producing identical output — and wildly different
//! instruction counts.
//!
//! ```sh
//! cargo run --release --example des_five_ways
//! ```

use interpreters::core::{Language, NullSink};
use interpreters::workloads::{run_macro, Scale};

fn main() {
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>9}   output",
        "language", "vcommands", "native", "avg F/D", "avg exec"
    );
    for lang in Language::ALL {
        let result = run_macro(lang, "des", Scale::Test, NullSink);
        println!(
            "{:<16} {:>12} {:>12} {:>9.1} {:>9.1}   {}",
            lang.label(),
            result.stats.commands,
            result.stats.steady_state_instructions(),
            result.stats.avg_fetch_decode(),
            result.stats.avg_execute(),
            result.console.trim()
        );
    }
    println!();
    println!("Same algorithm, same checksums per block count — but the native");
    println!("instructions per virtual command span three orders of magnitude,");
    println!("tracking each virtual machine's level of abstraction (Table 2).");
}
