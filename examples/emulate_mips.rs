//! Use the toolchain end-to-end: compile your own mini-C program, run it
//! natively and under the MIPSI emulator, and compare what the hardware
//! would see — the paper's §3.1 experiment on your own code.
//!
//! ```sh
//! cargo run --release --example emulate_mips
//! ```

use interpreters::archsim::PipelineSim;
use interpreters::host::Machine;
use interpreters::mipsi::Mipsi;
use interpreters::nativeref::DirectExecutor;

const PROGRAM: &str = r#"
int primes[200];

int main() {
    int count; int candidate; int i; int is_prime;
    count = 0;
    candidate = 2;
    while (count < 200) {
        is_prime = 1;
        for (i = 0; i < count; i++) {
            if (candidate % primes[i] == 0) { is_prime = 0; break; }
            if (primes[i] * primes[i] > candidate) break;
        }
        if (is_prime) {
            primes[count] = candidate;
            count = count + 1;
        }
        candidate = candidate + 1;
    }
    print_str("200th prime: ");
    print_int(primes[199]);
    print_char('\n');
    return 0;
}
"#;

fn main() {
    let image = interpreters::minic::compile(PROGRAM).expect("compiles");
    println!(
        "compiled: {} bytes of text, {} bytes of data\n",
        image.text_bytes(),
        image.data.len()
    );
    // Peek at the generated code.
    println!("first instructions:");
    for line in image.disassemble().lines().take(8) {
        println!("  {line}");
    }

    // Native run.
    let mut m = Machine::new(PipelineSim::alpha_21064());
    let mut exec = DirectExecutor::new(&image, &mut m);
    exec.run(1_000_000_000).expect("native run");
    drop(exec);
    let native_out = String::from_utf8_lossy(m.console()).into_owned();
    let (native_stats, native_sim) = m.into_parts();
    let native = native_sim.report();

    // Interpreted run.
    let mut m = Machine::new(PipelineSim::alpha_21064());
    let mut emu = Mipsi::new(&image, &mut m);
    emu.run(1_000_000_000).expect("emulated run");
    drop(emu);
    let mipsi_out = String::from_utf8_lossy(m.console()).into_owned();
    let (mipsi_stats, mipsi_sim) = m.into_parts();
    let mipsi = mipsi_sim.report();

    assert_eq!(native_out, mipsi_out, "emulation must be faithful");
    println!("\noutput (identical in both modes): {}", native_out.trim());
    println!(
        "\n{:<12} {:>14} {:>12} {:>8}",
        "mode", "instructions", "cycles", "busy"
    );
    println!(
        "{:<12} {:>14} {:>12} {:>7.1}%",
        "native",
        native_stats.instructions,
        native.cycles,
        native.busy_fraction() * 100.0
    );
    println!(
        "{:<12} {:>14} {:>12} {:>7.1}%",
        "MIPSI",
        mipsi_stats.instructions,
        mipsi.cycles,
        mipsi.busy_fraction() * 100.0
    );
    println!(
        "\nslowdown: {:.1}x in instructions, {:.1}x in cycles",
        mipsi_stats.instructions as f64 / native_stats.instructions as f64,
        mipsi.cycles as f64 / native.cycles as f64
    );
    println!(
        "fetch/decode: {:.1} native instructions per emulated instruction",
        mipsi_stats.avg_fetch_decode()
    );
}
