//! Quickstart: run a script on an instrumented interpreter and see what
//! the paper's measurement stack sees.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use interpreters::archsim::{PipelineSim, StallCause};
use interpreters::host::Machine;
use interpreters::tclite::Tclite;

fn main() {
    // A machine whose instruction stream flows into the Alpha-21064-like
    // timing model.
    let mut machine = Machine::new(PipelineSim::alpha_21064());

    let script = r#"
        proc fib {n} {
            if {$n < 2} { return $n }
            return [expr [fib [expr $n - 1]] + [fib [expr $n - 2]]]
        }
        puts "fib(12) = [fib 12]"
    "#;

    let mut tcl = Tclite::new(&mut machine);
    tcl.run(script).expect("script runs");
    let commands = tcl.commands().clone();
    drop(tcl);

    println!("console: {}", String::from_utf8_lossy(machine.console()));
    let (stats, sim) = machine.into_parts();
    let report = sim.report();

    println!("--- what the interpreter did ---");
    println!("{}", stats.summary(&commands));
    println!("--- what the processor saw ---");
    println!(
        "cycles: {}  CPI: {:.2}  busy: {:.1}%",
        report.cycles,
        report.cpi(),
        report.busy_fraction() * 100.0
    );
    for cause in StallCause::ALL {
        let f = report.stall_fraction(cause);
        if f > 0.005 {
            println!("  {:<12} {:>5.1}% of issue slots", cause.label(), f * 100.0);
        }
    }
    println!(
        "\nA Tcl fib costs ~{:.0} native instructions per virtual command — the",
        stats.avg_fetch_decode() + stats.avg_execute()
    );
    println!("paper's headline number, reproduced on your machine.");
}
