#!/usr/bin/env bash
# Tier-1 verification gate.
#
#   build + tests      — the seed acceptance bar (must stay green)
#   clippy strictness  — `unwrap_used` / `panic` are denied workspace-wide
#                        in shipped code. Test modules are exempt (the
#                        default clippy targets do not lint `#[cfg(test)]`
#                        code, which is where the historical unwrap/assert
#                        sites live). The new crates additionally build
#                        warning-free.
#   determinism        — `repro` stdout must be byte-identical on 1 worker
#                        vs many; the timed comparison also shows the
#                        parallel plan finishing no slower than serial.
#   guard smoke        — a fast 16-seed fault-injection sweep across all
#                        five execution engines; exits nonzero if any run
#                        panics instead of returning a typed outcome.
#   chaos smoke        — 8 seeds of the full plan with faults injected
#                        into the interpreters AND the pool (stalls,
#                        artifact drops, worker panics); every seed must
#                        complete with job-count-invariant degradation
#                        markers.
#   conform smoke      — 32 seeded programs over the shared semantic IR,
#                        each lowered to all five interpreters; exits
#                        nonzero on any cross-interpreter console
#                        divergence (with a shrunk minimal reproducer).
#   crash-resume       — a journaled run is deliberately crashed mid-plan
#                        (exit 86 after 5 durable appends); the rerun with
#                        --resume must reuse the journal and print stdout
#                        byte-identical to the cold run.
#   journal-chaos      — 12 seeds of journal corruption (torn tail, bit
#                        flip, mid-truncation, duplicate key, stale
#                        epoch, bad version); every defect must be
#                        detected, classified, and healed.
#   golden snapshots   — every renderer's test-scale output must be
#                        byte-identical to the committed goldens.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy gate (no unwrap, no panic in shipped code) =="
cargo clippy --workspace -q -- \
  -D clippy::unwrap_used -D clippy::panic
cargo clippy -p interp-guard -p interp-microbench -q -- \
  -D warnings -D clippy::unwrap_used -D clippy::panic
# The supervision, harness, and conformance layers — including the
# journal/persistence module in interp-runplan — are held to the same
# no-unwrap/no-panic bar explicitly (their host-crate dependencies keep
# -D warnings off here).
cargo clippy -p interp-runplan -p interp-harness -p interp-conformance -q -- \
  -D clippy::unwrap_used -D clippy::panic

echo "== repro determinism (1 worker vs many, test scale) =="
cargo build --release -p interp-harness --bins
REPRO=./target/release/repro
t0=$(date +%s.%N)
"$REPRO" all --scale test --jobs 1 >/tmp/repro_serial.txt 2>/dev/null
t1=$(date +%s.%N)
"$REPRO" all --scale test >/tmp/repro_parallel.txt 2>/tmp/repro_timings.txt
t2=$(date +%s.%N)
cmp /tmp/repro_serial.txt /tmp/repro_parallel.txt \
  || { echo "repro output differs between --jobs 1 and parallel"; exit 1; }
serial=$(echo "$t1 $t0" | awk '{printf "%.2f", $1-$2}')
parallel=$(echo "$t2 $t1" | awk '{printf "%.2f", $1-$2}')
echo "repro all (test scale): serial ${serial}s, parallel ${parallel}s"
grep "run plan:" /tmp/repro_timings.txt

echo "== guard smoke sweep (16 seeds, test scale) =="
"$REPRO" guard --seeds 16 --scale test

echo "== chaos smoke (8 seeds, guest+pool fault injection) =="
"$REPRO" chaos --seeds 8 --scale test

echo "== conformance smoke (32 seeds, 5 interpreters, zero divergence) =="
"$REPRO" conform --seeds 32 \
  || { echo "cross-interpreter divergence detected; see the shrunk reproducer above"; exit 1; }

echo "== crash-resume (deliberate mid-plan crash, then --resume, byte-diff vs cold) =="
CACHE=/tmp/repro_resume_cache
rm -rf "$CACHE"
set +e
"$REPRO" all --scale test --cache-dir "$CACHE" --crash-after 5 >/dev/null 2>&1
status=$?
set -e
[ "$status" -eq 86 ] \
  || { echo "crash harness exited $status, expected 86"; exit 1; }
"$REPRO" all --scale test --cache-dir "$CACHE" --resume \
  >/tmp/repro_resumed.txt 2>/tmp/repro_resume_report.txt
cmp /tmp/repro_parallel.txt /tmp/repro_resumed.txt \
  || { echo "resumed output differs from the cold run"; exit 1; }
grep "^journal " /tmp/repro_resume_report.txt
rm -rf "$CACHE"

echo "== journal-chaos (seeded journal corruption: detect, classify, heal) =="
"$REPRO" journal-chaos --seeds 12

echo "== golden snapshots (byte-diff vs committed renders) =="
cargo test -q -p interp-harness --test goldens \
  || { echo "golden snapshots drifted; if intentional, regenerate with:"; \
       echo "  UPDATE_GOLDENS=1 cargo test -p interp-harness --test goldens"; exit 1; }

echo "verify: OK"
