#!/usr/bin/env bash
# Tier-1 verification gate.
#
#   build + tests      — the seed acceptance bar (must stay green)
#   clippy strictness  — `unwrap_used` / `panic` are denied workspace-wide
#                        in shipped code. Test modules are exempt (the
#                        default clippy targets do not lint `#[cfg(test)]`
#                        code, which is where the historical unwrap/assert
#                        sites live). The new crates additionally build
#                        warning-free.
#   determinism        — `repro` stdout must be byte-identical on 1 worker
#                        vs many; the timed comparison also shows the
#                        parallel plan finishing no slower than serial.
#   guard smoke        — a fast 16-seed fault-injection sweep across all
#                        five execution engines; exits nonzero if any run
#                        panics instead of returning a typed outcome.
#   chaos smoke        — 8 seeds of the full plan with faults injected
#                        into the interpreters AND the pool (stalls,
#                        artifact drops, worker panics); every seed must
#                        complete with job-count-invariant degradation
#                        markers.
#   conform smoke      — 32 seeded programs over the shared semantic IR,
#                        each lowered to all five interpreters; exits
#                        nonzero on any cross-interpreter console
#                        divergence (with a shrunk minimal reproducer).
#                        Runs twice: the classic naive sweep, then
#                        --dispatch all, which adds every supported
#                        fast-dispatch tier (threaded, superinstr,
#                        inline-cache, tiered) as extra witness columns.
#   crash-resume       — a journaled run is deliberately crashed mid-plan
#                        (exit 86 after 5 durable appends); the rerun with
#                        --resume must reuse the journal and print stdout
#                        byte-identical to the cold run.
#   two-process cache  — two concurrent `repro all` processes sharing one
#                        --cache-dir must both exit 0, execute each run
#                        exactly once between them, and leave a journal
#                        byte-identical to a serial cold run's; a compact
#                        pass over it is a no-op and status reports full
#                        coverage.
#   serve smoke        — a `repro serve` daemon answers two concurrent
#                        `repro submit`/`repro wait` clients over one
#                        cache: both response bodies byte-identical to
#                        the serial cold `repro all`, execution split
#                        exactly-once; then a second daemon is SIGKILLed
#                        mid-request and a restarted daemon recovers the
#                        orphaned claim, again byte-identical.
#   fleet smoke        — two `repro serve` daemons join one cache as a
#                        failover fleet; one is SIGKILLed mid-burst and
#                        the survivor adopts its claimed work: every
#                        response byte-identical to the serial cold run
#                        with balanced exactly-once accounting, and one
#                        `--stop` drains the fleet clean.
#   journal-chaos      — 32 seeds = two full rotations of the sixteen
#                        lanes: six corruption lanes (torn tail, bit
#                        flip, mid-truncation, duplicate key, stale
#                        epoch, bad version) each detected, classified,
#                        and healed; three multi-writer lanes
#                        (interleaved writers, stale-lock takeover,
#                        compaction raced against an appender) each
#                        exactly-once and clean; six serve lanes
#                        (torn client request, daemon killed between
#                        claim and commit, clients racing a daemon and a
#                        batch run, a wedged fleet member swept by its
#                        peer, a dead member's work adopted exactly-once
#                        by two racing daemons, a storm of expired
#                        deadlines) each typed-rejected or recovered;
#                        and the tiered guard-trip lane (spurious trace
#                        guard failure mid-run) aborted, blacklisted,
#                        and byte-identical to a never-tiered run.
#   golden snapshots   — every renderer's test-scale output must be
#                        byte-identical to the committed goldens.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy gate (no unwrap, no panic in shipped code) =="
cargo clippy --workspace -q -- \
  -D clippy::unwrap_used -D clippy::panic
cargo clippy -p interp-guard -p interp-microbench -q -- \
  -D warnings -D clippy::unwrap_used -D clippy::panic
# The supervision, harness, and conformance layers — including the
# journal/persistence module in interp-runplan — are held to the same
# no-unwrap/no-panic bar explicitly (their host-crate dependencies keep
# -D warnings off here).
cargo clippy -p interp-runplan -p interp-harness -p interp-conformance -q -- \
  -D clippy::unwrap_used -D clippy::panic

echo "== repro determinism (1 worker vs many, test scale) =="
cargo build --release -p interp-harness --bins
REPRO=./target/release/repro
t0=$(date +%s.%N)
"$REPRO" all --scale test --jobs 1 >/tmp/repro_serial.txt 2>/dev/null
t1=$(date +%s.%N)
"$REPRO" all --scale test >/tmp/repro_parallel.txt 2>/tmp/repro_timings.txt
t2=$(date +%s.%N)
cmp /tmp/repro_serial.txt /tmp/repro_parallel.txt \
  || { echo "repro output differs between --jobs 1 and parallel"; exit 1; }
serial=$(echo "$t1 $t0" | awk '{printf "%.2f", $1-$2}')
parallel=$(echo "$t2 $t1" | awk '{printf "%.2f", $1-$2}')
echo "repro all (test scale): serial ${serial}s, parallel ${parallel}s"
grep "run plan:" /tmp/repro_timings.txt

echo "== guard smoke sweep (16 seeds, test scale) =="
"$REPRO" guard --seeds 16 --scale test

echo "== chaos smoke (8 seeds, guest+pool fault injection) =="
"$REPRO" chaos --seeds 8 --scale test

echo "== conformance smoke (32 seeds, 5 interpreters, zero divergence) =="
"$REPRO" conform --seeds 32 \
  || { echo "cross-interpreter divergence detected; see the shrunk reproducer above"; exit 1; }

echo "== conformance smoke, all dispatch tiers (32 seeds, 12 engine witnesses) =="
"$REPRO" conform --seeds 32 --dispatch all \
  || { echo "fast-dispatch tier diverged from naive; see the shrunk reproducer above"; exit 1; }

echo "== tiered conformance smoke (16 seeds, trace-recording tier vs naive) =="
"$REPRO" conform --seeds 16 --dispatch naive,tiered \
  || { echo "tiered trace execution diverged from naive; see the shrunk reproducer above"; exit 1; }

echo "== crash-resume (deliberate mid-plan crash, then --resume, byte-diff vs cold) =="
CACHE=/tmp/repro_resume_cache
rm -rf "$CACHE"
set +e
"$REPRO" all --scale test --cache-dir "$CACHE" --crash-after 5 >/dev/null 2>&1
status=$?
set -e
[ "$status" -eq 86 ] \
  || { echo "crash harness exited $status, expected 86"; exit 1; }
"$REPRO" all --scale test --cache-dir "$CACHE" --resume \
  >/tmp/repro_resumed.txt 2>/tmp/repro_resume_report.txt
cmp /tmp/repro_parallel.txt /tmp/repro_resumed.txt \
  || { echo "resumed output differs from the cold run"; exit 1; }
grep "^journal " /tmp/repro_resume_report.txt
rm -rf "$CACHE"

echo "== two-process shared cache (exactly-once split, byte-diff vs cold) =="
COLD=/tmp/repro_coord_cold
SHARED=/tmp/repro_coord_shared
rm -rf "$COLD" "$SHARED"
"$REPRO" all --scale test --jobs 4 --cache-dir "$COLD" \
  >/tmp/repro_coord_cold.txt 2>/dev/null
"$REPRO" all --scale test --jobs 4 --cache-dir "$SHARED" \
  >/tmp/repro_coord_a.txt 2>/tmp/repro_coord_a.err &
pid_a=$!
"$REPRO" all --scale test --jobs 4 --cache-dir "$SHARED" \
  >/tmp/repro_coord_b.txt 2>/tmp/repro_coord_b.err &
pid_b=$!
wait "$pid_a" || { echo "first concurrent process failed"; cat /tmp/repro_coord_a.err; exit 1; }
wait "$pid_b" || { echo "second concurrent process failed"; cat /tmp/repro_coord_b.err; exit 1; }
cmp /tmp/repro_coord_cold.txt /tmp/repro_coord_a.txt \
  || { echo "first concurrent stdout differs from cold"; exit 1; }
cmp /tmp/repro_coord_cold.txt /tmp/repro_coord_b.txt \
  || { echo "second concurrent stdout differs from cold"; exit 1; }
cmp "$COLD/artifacts.journal" "$SHARED/artifacts.journal" \
  || { echo "shared-cache journal differs from the serial cold journal"; exit 1; }
planned=$(grep "^journal " /tmp/repro_coord_a.err | sed 's/.* of \([0-9]*\) planned.*/\1/')
executed=$(cat /tmp/repro_coord_a.err /tmp/repro_coord_b.err \
  | grep "^journal " | sed 's/.*executed \([0-9]*\),.*/\1/' | awk '{s+=$1} END {print s}')
[ "$executed" = "$planned" ] \
  || { echo "exactly-once violated: $executed executed across the pair, $planned planned"; exit 1; }
echo "two processes split $planned runs exactly-once ($executed executed total)"
"$REPRO" compact --cache-dir "$SHARED" | grep "already clean" \
  || { echo "cooperatively-filled journal was not canonical"; exit 1; }
"$REPRO" status --cache-dir "$SHARED" | grep "100% reuse" \
  || { echo "status does not report full coverage"; exit 1; }
rm -rf "$COLD" "$SHARED"

echo "== serve smoke (daemon + 2 concurrent clients, exactly-once, byte-diff vs cold) =="
SERVE=/tmp/repro_serve_cache
rm -rf "$SERVE"
"$REPRO" serve --cache-dir "$SERVE" --poll-ms 10 --max-requests 2 --jobs 4 \
  2>/tmp/repro_serve_daemon.err &
serve_pid=$!
"$REPRO" submit all --id smoke-a --cache-dir "$SERVE" >/dev/null 2>&1
"$REPRO" submit all --id smoke-b --cache-dir "$SERVE" >/dev/null 2>&1
"$REPRO" wait smoke-a --cache-dir "$SERVE" --poll-ms 10 \
  >/tmp/repro_serve_a.txt 2>/tmp/repro_serve_a.err &
wait_a=$!
"$REPRO" wait smoke-b --cache-dir "$SERVE" --poll-ms 10 \
  >/tmp/repro_serve_b.txt 2>/tmp/repro_serve_b.err &
wait_b=$!
wait "$wait_a" || { echo "wait smoke-a failed"; cat /tmp/repro_serve_a.err; exit 1; }
wait "$wait_b" || { echo "wait smoke-b failed"; cat /tmp/repro_serve_b.err; exit 1; }
wait "$serve_pid" || { echo "serve daemon failed"; cat /tmp/repro_serve_daemon.err; exit 1; }
cmp /tmp/repro_serial.txt /tmp/repro_serve_a.txt \
  || { echo "serve response smoke-a differs from the serial cold run"; exit 1; }
cmp /tmp/repro_serial.txt /tmp/repro_serve_b.txt \
  || { echo "serve response smoke-b differs from the serial cold run"; exit 1; }
planned=$(sed 's/.* of \([0-9]*\) planned.*/\1/' /tmp/repro_serve_a.err)
served_exec=$(cat /tmp/repro_serve_a.err /tmp/repro_serve_b.err \
  | grep "^serve " | sed 's/.*executed \([0-9]*\),.*/\1/' | awk '{s+=$1} END {print s}')
[ "$served_exec" = "$planned" ] \
  || { echo "serve exactly-once violated: $served_exec executed across 2 responses, $planned planned"; exit 1; }
echo "serve answered 2 clients over $planned runs exactly-once ($served_exec executed total)"

echo "== serve SIGKILL recovery (kill mid-request, restart, byte-diff vs cold) =="
KILLCACHE=/tmp/repro_serve_kill
rm -rf "$KILLCACHE"
"$REPRO" submit all --id smoke-r --cache-dir "$KILLCACHE" >/dev/null 2>&1
"$REPRO" serve --cache-dir "$KILLCACHE" --poll-ms 10 --max-requests 1 --jobs 4 \
  >/dev/null 2>&1 &
kill_pid=$!
for _ in $(seq 1 1200); do
  [ -s "$KILLCACHE/artifacts.journal" ] && break
  sleep 0.05
done
[ -s "$KILLCACHE/artifacts.journal" ] \
  || { echo "serve daemon never started journaling the request"; exit 1; }
kill -9 "$kill_pid" 2>/dev/null || true
wait "$kill_pid" 2>/dev/null || true
# Unless the daemon finished in the instant before the kill landed, the
# request is an orphaned claim now — a restarted daemon must recover it.
if [ ! -f "$KILLCACHE/serve/outbox/smoke-r.resp" ]; then
  "$REPRO" serve --cache-dir "$KILLCACHE" --poll-ms 10 --max-requests 1 --jobs 4 \
    2>/tmp/repro_serve_restart.err \
    || { echo "restarted serve daemon failed"; cat /tmp/repro_serve_restart.err; exit 1; }
fi
"$REPRO" wait smoke-r --cache-dir "$KILLCACHE" --poll-ms 10 \
  >/tmp/repro_serve_r.txt 2>/tmp/repro_serve_r.err \
  || { echo "wait smoke-r failed after recovery"; cat /tmp/repro_serve_r.err; exit 1; }
cmp /tmp/repro_serial.txt /tmp/repro_serve_r.txt \
  || { echo "recovered serve response differs from the serial cold run"; exit 1; }
grep "^serve smoke-r:" /tmp/repro_serve_r.err
rm -rf "$SERVE" "$KILLCACHE"

echo "== fleet smoke (2 daemons, SIGKILL one mid-burst, survivor adopts, drain) =="
FLEET=/tmp/repro_fleet_cache
rm -rf "$FLEET"
"$REPRO" serve --cache-dir "$FLEET" --poll-ms 10 --serve-jobs 2 --jobs 4 \
  2>/tmp/repro_fleet_a.err &
fleet_a=$!
"$REPRO" serve --cache-dir "$FLEET" --poll-ms 10 --serve-jobs 2 --jobs 4 \
  2>/tmp/repro_fleet_b.err &
fleet_b=$!
for _ in $(seq 1 1200); do
  members=$(find "$FLEET/serve/fleet" -maxdepth 1 -type f ! -name '.*' ! -name '*.hb' 2>/dev/null | wc -l)
  [ "$members" -eq 2 ] && break
  sleep 0.05
done
[ "$members" -eq 2 ] || { echo "fleet never reached 2 members"; exit 1; }
"$REPRO" submit all --id fleet-0 --cache-dir "$FLEET" >/dev/null 2>&1
"$REPRO" submit all --id fleet-1 --cache-dir "$FLEET" >/dev/null 2>&1
"$REPRO" submit all --id fleet-2 --cache-dir "$FLEET" >/dev/null 2>&1
for _ in $(seq 1 1200); do
  [ -s "$FLEET/artifacts.journal" ] && break
  sleep 0.05
done
[ -s "$FLEET/artifacts.journal" ] \
  || { echo "no fleet member ever started journaling the burst"; exit 1; }
kill -9 "$fleet_a" 2>/dev/null || true
wait "$fleet_a" 2>/dev/null || true
for id in fleet-0 fleet-1 fleet-2; do
  "$REPRO" wait "$id" --cache-dir "$FLEET" --poll-ms 10 \
    >"/tmp/repro_fleet_$id.txt" 2>"/tmp/repro_fleet_$id.err" \
    || { echo "wait $id failed after the kill"; cat "/tmp/repro_fleet_$id.err"; exit 1; }
  cmp /tmp/repro_serial.txt "/tmp/repro_fleet_$id.txt" \
    || { echo "fleet response $id differs from the serial cold run"; exit 1; }
  reused=$(sed -n 's/^serve [^:]*: reused \([0-9]*\) of.*/\1/p' "/tmp/repro_fleet_$id.err")
  planned=$(sed -n 's/.* of \([0-9]*\) planned.*/\1/p' "/tmp/repro_fleet_$id.err")
  executed=$(sed -n 's/.*executed \([0-9]*\),.*/\1/p' "/tmp/repro_fleet_$id.err")
  live=$(sed -n 's/.*reused-live \([0-9]*\).*/\1/p' "/tmp/repro_fleet_$id.err")
  [ "$((reused + executed + live))" -eq "$planned" ] \
    || { echo "fleet accounting for $id does not balance: $reused + $executed + $live != $planned"; exit 1; }
done
"$REPRO" serve --stop --cache-dir "$FLEET" --poll-ms 10 >/dev/null \
  || { echo "fleet stop failed"; exit 1; }
wait "$fleet_b" || { echo "surviving fleet member failed"; cat /tmp/repro_fleet_b.err; exit 1; }
leftover=$(find "$FLEET/serve/fleet" -maxdepth 1 -type f 2>/dev/null | wc -l)
[ "$leftover" -eq 0 ] || { echo "drained fleet left $leftover member file(s)"; exit 1; }
echo "fleet survived a SIGKILL mid-burst: 3 byte-identical responses, clean drain"
rm -rf "$FLEET"

echo "== bench trajectory (JSON artifact + dispatch-tier gate) =="
"$REPRO" bench --scale test --jobs 4 --out /tmp/repro_bench.json >/tmp/repro_bench_summary.txt \
  || { echo "bench failed (a fast dispatch tier regressed vs naive?)"; \
       cat /tmp/repro_bench_summary.txt; exit 1; }
grep -q '"schema": "bench-trajectory/5"' /tmp/repro_bench.json \
  || { echo "bench trajectory missing schema marker"; exit 1; }
grep -q '"dispatch"' /tmp/repro_bench.json \
  || { echo "bench trajectory missing dispatch-tier section"; exit 1; }
grep -q "bench: dispatch tiers ok" /tmp/repro_bench_summary.txt \
  || { echo "bench summary missing the dispatch-tier gate marker"; \
       cat /tmp/repro_bench_summary.txt; exit 1; }
rm -f /tmp/repro_bench.json /tmp/repro_bench_summary.txt

echo "== journal-chaos (corruption + multi-writer + serve + fleet + tiered lanes, 2 full rotations) =="
"$REPRO" journal-chaos --seeds 32

echo "== golden snapshots (byte-diff vs committed renders) =="
cargo test -q -p interp-harness --test goldens \
  || { echo "golden snapshots drifted; if intentional, regenerate with:"; \
       echo "  UPDATE_GOLDENS=1 cargo test -p interp-harness --test goldens"; exit 1; }

echo "verify: OK"
