#!/usr/bin/env bash
# Tier-1 verification gate.
#
#   build + tests      — the seed acceptance bar (must stay green)
#   clippy strictness  — `unwrap_used` / `panic` are denied workspace-wide
#                        in shipped code. Test modules are exempt (the
#                        default clippy targets do not lint `#[cfg(test)]`
#                        code, which is where the historical unwrap/assert
#                        sites live). The new crates additionally build
#                        warning-free.
#   guard smoke        — a fast 16-seed fault-injection sweep across all
#                        five execution engines; exits nonzero if any run
#                        panics instead of returning a typed outcome.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy gate (no unwrap, no panic in shipped code) =="
cargo clippy --workspace -q -- \
  -D clippy::unwrap_used -D clippy::panic
cargo clippy -p interp-guard -p interp-microbench -q -- \
  -D warnings -D clippy::unwrap_used -D clippy::panic

echo "== guard smoke sweep (16 seeds, test scale) =="
cargo build --release -p interp-harness --bins
./target/release/repro guard --seeds 16 --scale test

echo "verify: OK"
