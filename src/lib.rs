//! Umbrella crate for the reproduction of *The Structure and Performance
//! of Interpreters* (Romer et al., ASPLOS 1996).
//!
//! Re-exports every workspace crate under one roof:
//!
//! * [`core`] — instruction records, trace sinks, phases, per-command stats.
//! * [`host`] — the instrumented simulated host machine all interpreters
//!   run on (memory, allocator, strings, hash tables, files, graphics).
//! * [`archsim`] — the Alpha-21064-like timing model (Table 3) and the
//!   Figure 4 I-cache sweep.
//! * [`isa`] / [`minic`] — the MIPS R3000 subset and the mini-C compiler
//!   that produces guest binaries.
//! * [`mipsi`], [`javelin`], [`perlite`], [`tclite`] — the four
//!   interpreters, spanning the paper's virtual-machine spectrum.
//! * [`nativeref`] — direct (compiled) execution of the same binaries.
//! * [`workloads`] — the Table 1 microbenchmarks and Table 2 macro suite,
//!   addressed through typed [`core::WorkloadId`]s.
//! * [`runplan`] — the parallel run-plan engine: deduplicates the
//!   experiments' typed [`core::RunRequest`]s, executes them on a worker
//!   pool, and memoizes [`core::RunArtifact`]s for every renderer.
//! * [`conformance`] — the differential conformance engine: seeded
//!   programs over a shared semantic IR, lowered to all five
//!   interpreters and checked for zero console divergence.
//! * [`harness`] — drivers that regenerate every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use interpreters::core::NullSink;
//! use interpreters::host::Machine;
//! use interpreters::tclite::Tclite;
//!
//! let mut machine = Machine::new(NullSink);
//! let mut tcl = Tclite::new(&mut machine);
//! let result = tcl.run("set x [expr 6 * 7]")?;
//! assert_eq!(result, "42");
//! drop(tcl);
//! // Every native instruction the interpreter executed was counted:
//! assert!(machine.stats().instructions > 1000);
//! # Ok::<(), interpreters::tclite::TclError>(())
//! ```

pub use interp_archsim as archsim;
pub use interp_conformance as conformance;
pub use interp_guard as guard;
pub use interp_core as core;
pub use interp_harness as harness;
pub use interp_host as host;
pub use interp_isa as isa;
pub use interp_javelin as javelin;
pub use interp_minic as minic;
pub use interp_mipsi as mipsi;
pub use interp_nativeref as nativeref;
pub use interp_perlite as perlite;
pub use interp_runplan as runplan;
pub use interp_tclite as tclite;
pub use interp_workloads as workloads;
