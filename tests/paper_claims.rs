//! Integration tests asserting the paper's headline claims end-to-end,
//! across crates, at test scale. These are the "does the reproduction
//! reproduce?" checks — EXPERIMENTS.md cites them.

use interpreters::archsim::{CacheSweep, PipelineSim, StallCause};
use interpreters::core::{Language, NullSink};
use interpreters::workloads::{run_macro, Scale};

/// §3.4: the virtual-machine spectrum — commands needed for the same task
/// shrink as the VM level rises, while instructions per command grow.
#[test]
fn vm_level_spectrum_on_des() {
    let mut rows = Vec::new();
    for lang in [
        Language::Mipsi,
        Language::Javelin,
        Language::Perlite,
        Language::Tclite,
    ] {
        let result = run_macro(lang, "des", Scale::Test, NullSink);
        let per_command = result.stats.avg_fetch_decode() + result.stats.avg_execute();
        // Normalize commands per DES block (block counts differ by tier).
        let blocks = match lang {
            Language::Mipsi => 20.0,
            Language::Javelin => 10.0,
            Language::Perlite => 4.0,
            _ => 1.0,
        };
        rows.push((lang, result.stats.commands as f64 / blocks, per_command));
    }
    // Commands per block decrease monotonically up the VM spectrum...
    for pair in rows.windows(2) {
        assert!(
            pair[1].1 < pair[0].1 * 1.5,
            "{}: {} commands/block should not exceed {}'s {}",
            pair[1].0,
            pair[1].1,
            pair[0].0,
            pair[0].1
        );
    }
    // ...while Tcl's instructions/command dwarf MIPSI's.
    let mipsi = rows[0].2;
    let tcl = rows[3].2;
    assert!(
        tcl > 10.0 * mipsi,
        "instructions/command: tcl {tcl} vs mipsi {mipsi}"
    );
}

/// §4: interpreter architectural footprint is a property of the
/// interpreter, not the interpreted program.
#[test]
fn footprint_belongs_to_the_interpreter() {
    let programs = ["des", "tcllex", "tcltags"];
    let mut imiss = Vec::new();
    for name in programs {
        let result = run_macro(Language::Tclite, name, Scale::Test, PipelineSim::alpha_21064());
        imiss.push(result.sink.report().stall_fraction(StallCause::Imiss));
    }
    let (min, max) = imiss
        .iter()
        .fold((f64::MAX, f64::MIN), |(a, b), &x| (a.min(x), b.max(x)));
    assert!(
        max - min < 0.08,
        "Tcl imiss fractions vary too much across programs: {imiss:?}"
    );
}

/// §4.1/Figure 4: the interpreter i-cache hierarchy — MIPSI fits an 8 KB
/// cache; Tcl and Perl need tens of KB.
#[test]
fn icache_working_sets() {
    let mipsi = run_macro(Language::Mipsi, "des", Scale::Test, CacheSweep::figure4());
    let tcl = run_macro(Language::Tclite, "tcltags", Scale::Test, CacheSweep::figure4());
    let at = |sweep: &CacheSweep, kb: usize| sweep.point(kb * 1024, 1).unwrap().miss_per_100;
    assert!(
        at(&mipsi.sink, 8) < 0.6,
        "MIPSI must fit an 8KB icache: {}",
        at(&mipsi.sink, 8)
    );
    assert!(
        at(&tcl.sink, 8) > 4.0 * at(&tcl.sink, 64) + 0.2,
        "Tcl 8KB {} vs 64KB {}",
        at(&tcl.sink, 8),
        at(&tcl.sink, 64)
    );
}

/// Figure 2's native-library claim: graphics-heavy Java programs spend
/// most execute-side instructions in native code; compute-heavy ones
/// don't.
#[test]
fn java_native_library_split() {
    use interpreters::core::Phase;
    let hanoi = run_macro(Language::Javelin, "hanoi", Scale::Test, NullSink);
    let des = run_macro(Language::Javelin, "des", Scale::Test, NullSink);
    let native_share = |r: &interpreters::workloads::RunResult<NullSink>| {
        r.stats.phase_instructions(Phase::Native) as f64
            / r.stats.steady_state_instructions() as f64
    };
    assert!(
        native_share(&hanoi) > 0.4,
        "hanoi native share {}",
        native_share(&hanoi)
    );
    assert!(
        native_share(&des) < 0.1,
        "des native share {}",
        native_share(&des)
    );
}

/// Table 2's Perl precompilation: startup instructions scale with program
/// size, not run length.
#[test]
fn perl_precompilation_scales_with_source() {
    use interpreters::core::Phase;
    let small = run_macro(Language::Perlite, "des", Scale::Test, NullSink);
    // a2ps has a much longer run but similar-size source; weblint similar.
    let startup_fraction = small.stats.phase_instructions(Phase::Startup) as f64
        / small.stats.instructions as f64;
    assert!(
        startup_fraction < 0.5,
        "startup should not dominate a real run: {startup_fraction}"
    );
    assert!(small.stats.phase_instructions(Phase::Startup) > 1_000);
}

/// The repro binary's experiments are deterministic end to end.
#[test]
fn experiments_are_deterministic() {
    let a = run_macro(Language::Perlite, "txt2html", Scale::Test, PipelineSim::alpha_21064());
    let b = run_macro(Language::Perlite, "txt2html", Scale::Test, PipelineSim::alpha_21064());
    assert_eq!(a.sink.report().cycles, b.sink.report().cycles);
    assert_eq!(a.console, b.console);
}
