//! Property-based differential tests: the same randomly-generated
//! computation must produce identical results in Rust (the oracle), in
//! compiled mini-C (native and MIPSI-interpreted), in Tcl, and in Perl.
//! This is the strongest correctness net in the repository: any semantic
//! divergence between the compiler, the emulator, and the interpreters
//! shows up as a counterexample.

use interpreters::core::NullSink;
use interpreters::host::Machine;
use interpreters::mipsi::Mipsi;
use interpreters::nativeref::DirectExecutor;
use proptest::prelude::*;

/// A small arithmetic expression AST with wrapping-32-bit semantics.
#[derive(Debug, Clone)]
enum Expr {
    Num(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval_i32(&self) -> i32 {
        match self {
            Expr::Num(v) => *v,
            Expr::Add(a, b) => a.eval_i32().wrapping_add(b.eval_i32()),
            Expr::Sub(a, b) => a.eval_i32().wrapping_sub(b.eval_i32()),
            Expr::Mul(a, b) => a.eval_i32().wrapping_mul(b.eval_i32()),
        }
    }

    /// Evaluate in i64 (Tcl/Perl semantics — no wrapping for our ranges).
    fn eval_i64(&self) -> i64 {
        match self {
            Expr::Num(v) => i64::from(*v),
            Expr::Add(a, b) => a.eval_i64() + b.eval_i64(),
            Expr::Sub(a, b) => a.eval_i64() - b.eval_i64(),
            Expr::Mul(a, b) => a.eval_i64() * b.eval_i64(),
        }
    }

    fn to_c(&self) -> String {
        match self {
            Expr::Num(v) => format!("{v}"),
            Expr::Add(a, b) => format!("({} + {})", a.to_c(), b.to_c()),
            Expr::Sub(a, b) => format!("({} - {})", a.to_c(), b.to_c()),
            Expr::Mul(a, b) => format!("({} * {})", a.to_c(), b.to_c()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    // Small constants keep i64 evaluation comfortably un-overflowed, so
    // the i32-wrapping and i64 oracles agree.
    let leaf = (-50i32..50).prop_map(Expr::Num);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn run_native(src: &str) -> String {
    let image = interpreters::minic::compile(src).expect("compile");
    let mut m = Machine::new(NullSink);
    let mut exec = DirectExecutor::new(&image, &mut m);
    exec.run(50_000_000).expect("run");
    drop(exec);
    String::from_utf8_lossy(m.console()).into_owned()
}

fn run_mipsi(src: &str) -> String {
    let image = interpreters::minic::compile(src).expect("compile");
    let mut m = Machine::new(NullSink);
    let mut emu = Mipsi::new(&image, &mut m);
    emu.run(50_000_000).expect("run");
    drop(emu);
    String::from_utf8_lossy(m.console()).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn minic_native_and_mipsi_match_the_oracle(expr in arb_expr()) {
        let expected = expr.eval_i32();
        let src = format!("int main() {{ print_int({}); return 0; }}", expr.to_c());
        prop_assert_eq!(run_native(&src), expected.to_string());
        prop_assert_eq!(run_mipsi(&src), expected.to_string());
    }

    #[test]
    fn tcl_expr_matches_the_oracle(expr in arb_expr()) {
        let expected = expr.eval_i64();
        let mut m = Machine::new(NullSink);
        let mut tcl = interpreters::tclite::Tclite::new(&mut m);
        let script = format!("expr {}", expr.to_c());
        let result = tcl.run(&script).expect("tcl runs");
        prop_assert_eq!(result, expected.to_string());
    }

    #[test]
    fn perl_matches_the_oracle(expr in arb_expr()) {
        let expected = expr.eval_i64();
        let mut m = Machine::new(NullSink);
        let src = format!("$v = {};\nprint $v;", expr.to_c());
        let mut p = interpreters::perlite::Perlite::new(&mut m, &src).expect("compiles");
        p.run().expect("runs");
        drop(p);
        prop_assert_eq!(
            String::from_utf8_lossy(m.console()).into_owned(),
            expected.to_string()
        );
    }

    #[test]
    fn joule_matches_the_oracle(expr in arb_expr()) {
        let expected = expr.eval_i32();
        let src = format!("void main() {{ Native.printInt({}); }}", expr.to_c());
        let prog = interpreters::javelin::compile(&src).expect("compiles");
        let mut m = Machine::new(NullSink);
        let mut vm = interpreters::javelin::Jvm::new(&mut m, prog);
        vm.run(50_000_000).expect("runs");
        drop(vm);
        prop_assert_eq!(
            String::from_utf8_lossy(m.console()).into_owned(),
            expected.to_string()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulated allocator never hands out overlapping blocks and
    /// survives arbitrary alloc/free interleavings.
    #[test]
    fn allocator_handles_random_scripts(script in proptest::collection::vec((0u8..2, 1u32..2000), 1..60)) {
        let mut m = Machine::new(NullSink);
        let mut live: Vec<(u32, u32)> = Vec::new();
        for (op, size) in script {
            if op == 0 || live.is_empty() {
                let addr = m.malloc(size);
                // No overlap with any live block.
                for &(a, s) in &live {
                    prop_assert!(
                        addr + size <= a || a + s <= addr,
                        "overlap: [{addr}, {}) vs [{a}, {})", addr + size, a + s
                    );
                }
                live.push((addr, size));
            } else {
                let idx = (size as usize) % live.len();
                let (addr, _) = live.swap_remove(idx);
                m.mfree(addr);
            }
        }
        for (addr, _) in live {
            m.mfree(addr);
        }
        prop_assert_eq!(m.heap().live_blocks(), 0);
    }

    /// The simulated hash table behaves exactly like a HashMap.
    #[test]
    fn hash_table_matches_hashmap(ops in proptest::collection::vec((0u8..3, 0u8..24, 0u32..1000), 1..80)) {
        use std::collections::HashMap;
        let mut m = Machine::new(NullSink);
        let table = m.hash_new(4);
        let mut model: HashMap<String, u32> = HashMap::new();
        let keys: Vec<String> = (0..24).map(|i| format!("key_number_{i}")).collect();
        let sim_keys: Vec<_> = keys.iter().map(|k| m.str_alloc(k.as_bytes())).collect();
        for (op, key_i, value) in ops {
            let key = &keys[key_i as usize];
            let sim_key = sim_keys[key_i as usize];
            match op {
                0 => {
                    let prev = m.hash_insert(table, sim_key, value);
                    prop_assert_eq!(prev, model.insert(key.clone(), value));
                }
                1 => {
                    prop_assert_eq!(m.hash_lookup(table, sim_key), model.get(key).copied());
                }
                _ => {
                    prop_assert_eq!(m.hash_remove(table, sim_key), model.remove(key));
                }
            }
        }
        prop_assert_eq!(m.hash_count(table) as usize, model.len());
    }
}
