//! Fault-injection property tests: corrupted guests must die politely.
//!
//! The contract under test, for every seeded corruption of a guest
//! program: the interpreter returns a typed error or completes, it never
//! panics, and it never runs past the unified command budget — so a
//! corrupted guest can neither crash nor hang the host.

use interpreters::core::NullSink;
use interpreters::guard::{FaultKind, FaultPlan, Limits};
use interpreters::host::Machine;
use interpreters::workloads::minic_progs::instantiate;
use interpreters::workloads::{joule_progs, perl_progs, tcl_progs};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tight command budget so even "accidentally still valid" corrupted
/// guests finish the test quickly.
const CMD_CAP: u64 = 100_000;

fn limits() -> Limits {
    Limits::guarded().with_max_commands(CMD_CAP)
}

/// Build a machine for one fault lane (applying any planned allocation
/// failure), run `body`, and assert the ending was structured and within
/// budget.
fn assert_structured<F>(what: &str, seed: u64, plan: &FaultPlan, body: F)
where
    F: FnOnce(&mut Machine<NullSink>) -> Result<(), String>,
{
    let plan = *plan;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut m = Machine::with_limits(NullSink, limits());
        if let Some(nth) = plan.alloc_fail_at() {
            m.inject_alloc_failure(nth);
        }
        let res = body(&mut m);
        (res, m.stats().commands)
    }));
    match outcome {
        Ok((_res, commands)) => {
            // Ok and Err are both acceptable endings — a flip can be
            // harmless — but the command budget must hold within one.
            assert!(
                commands <= CMD_CAP + 1,
                "{what} seed {seed}: ran {commands} commands past cap {CMD_CAP}"
            );
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string payload".into());
            panic!("{what} seed {seed} panicked: {msg}");
        }
    }
}

#[test]
fn bitflipped_javelin_bytecode_always_ends_structured() {
    let src = instantiate(joule_progs::HANOI_JL, &[("DISKS", "4".to_string())]);
    let prog = interpreters::javelin::compile(&src).expect("clean program compiles");
    for seed in 0..150u64 {
        let plan = FaultPlan {
            seed,
            kind: FaultKind::BitFlips {
                count: 1 + (seed % 7) as u32,
            },
        };
        let mut corrupted = prog.clone();
        for f in &mut corrupted.functions {
            plan.corrupt_bytes(&mut f.code);
        }
        assert_structured("javelin bitflip", seed, &plan, move |m| {
            let mut vm = interpreters::javelin::Jvm::new(m, corrupted);
            vm.run(u64::MAX / 2).map(|_| ()).map_err(|e| e.to_string())
        });
    }
}

#[test]
fn corrupted_perl_sources_always_end_structured() {
    let base = instantiate(perl_progs::DES_PL, &[("BLOCKS", "2".to_string())]);
    for seed in 0..150u64 {
        let plan = FaultPlan::source_sweep(seed);
        let mut src = base.clone();
        plan.corrupt_text(&mut src);
        assert_structured("perl source fault", seed, &plan, |m| {
            let mut p = interpreters::perlite::Perlite::new(m, &src)
                .map_err(|e| e.to_string())?;
            p.run().map_err(|e| e.to_string())
        });
    }
}

#[test]
fn corrupted_tcl_sources_always_end_structured() {
    let base = instantiate(tcl_progs::DES_TCL, &[("BLOCKS", "1".to_string())]);
    for seed in 0..150u64 {
        let plan = FaultPlan::source_sweep(seed);
        let mut src = base.clone();
        plan.corrupt_text(&mut src);
        assert_structured("tcl source fault", seed, &plan, |m| {
            let mut tcl = interpreters::tclite::Tclite::new(m);
            tcl.run(&src).map(|_| ()).map_err(|e| e.to_string())
        });
    }
}

#[test]
fn pathological_sources_hit_typed_limits_not_the_rust_stack() {
    // Deep nesting is the classic recursive-descent stack killer; both
    // parsers must refuse it with a typed error.
    let deep_perl = format!("$x = {}1{};\n", "(".repeat(20_000), ")".repeat(20_000));
    let mut m = Machine::with_limits(NullSink, limits());
    let err = match interpreters::perlite::Perlite::new(&mut m, &deep_perl) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("20k-deep parens compiled"),
    };
    assert!(err.contains("nesting too deep"), "{err}");

    let deep_tcl = format!("set x [expr {}1{}]", "(".repeat(20_000), ")".repeat(20_000));
    let mut m = Machine::with_limits(NullSink, limits());
    let mut tcl = interpreters::tclite::Tclite::new(&mut m);
    let err = tcl.run(&deep_tcl).expect_err("20k-deep parens evaluated");
    assert!(err.message.contains("nesting too deep"), "{}", err.message);
}

#[test]
fn chaos_seeds_never_abort_the_plan() {
    // The supervision contract, swept over 50 chaos seeds: with faults
    // injected into the interpreters AND the pool (stalls, artifact
    // drops, worker panics), every planned slot still resolves — to an
    // artifact or a typed RunFailure — and the degradation summary is
    // identical between a serial and a parallel execution.
    use interpreters::core::{Language, RunRequest, Scale, WorkloadId};
    use interpreters::runplan::{
        chaos_execute, render_chaos_summary, with_quiet_injected_panics, Plan, ResolveError,
        SuperviseConfig,
    };

    let plan = Plan::build([
        RunRequest::counting(WorkloadId::macro_bench(Language::Mipsi, "des", Scale::Test)),
        RunRequest::counting(WorkloadId::macro_bench(Language::Javelin, "hanoi", Scale::Test)),
        RunRequest::counting(WorkloadId::macro_bench(Language::Tclite, "des", Scale::Test)),
        RunRequest::counting(WorkloadId::micro(Language::C, "a=b+c", Scale::Test)),
        RunRequest::counting(WorkloadId::micro(Language::Perlite, "call", Scale::Test)),
    ]);
    let config = SuperviseConfig::new().with_retries(1);
    with_quiet_injected_panics(|| {
        for seed in 0..50u64 {
            let parallel = chaos_execute(&plan, 4, seed, &config);
            for request in plan.requests() {
                assert!(
                    !matches!(
                        parallel.store.resolve(request),
                        Err(ResolveError::Unplanned(_))
                    ),
                    "seed {seed}: {request} went missing from the store"
                );
            }
            let serial = chaos_execute(&plan, 1, seed, &config);
            assert_eq!(
                render_chaos_summary(seed, &serial),
                render_chaos_summary(seed, &parallel),
                "seed {seed}: degradation depends on job count"
            );
        }
    });
}

#[test]
fn runaway_guests_trip_the_command_budget() {
    // An honest infinite loop in each source interpreter must end in a
    // typed budget trip, not a hang.
    let mut m = Machine::with_limits(NullSink, limits());
    let mut p = interpreters::perlite::Perlite::new(&mut m, "while (1) { $i = $i + 1; }\n")
        .expect("loop compiles");
    let err = p.run().expect_err("infinite loop must trip");
    let g = interpreters::guard::GuardError::from(err);
    assert!(g.is_limit(), "perl: {g}");

    let mut m = Machine::with_limits(NullSink, limits());
    let mut tcl = interpreters::tclite::Tclite::new(&mut m);
    let err = tcl.run("while {1} {set i 1}").expect_err("infinite loop must trip");
    let g = interpreters::guard::GuardError::from(err);
    assert!(g.is_limit(), "tcl: {g}");
}
