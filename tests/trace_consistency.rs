//! Cross-crate invariant: the statistics the machine reports and the
//! instruction stream the sink receives are two views of the same events,
//! for every interpreter in the workspace.

use interpreters::core::{CountingSink, Language, NullSink, TeeSink, VecSink};
use interpreters::host::Machine;
use interpreters::workloads::{run_macro, run_micro, Scale};

#[test]
fn stats_and_sink_agree_for_every_interpreter() {
    for lang in Language::ALL {
        let result = run_macro(lang, "des", Scale::Test, CountingSink::default());
        assert_eq!(
            result.stats.instructions, result.sink.instructions,
            "{lang}: stats vs sink instruction counts"
        );
        assert_eq!(
            result.stats.loads, result.sink.loads,
            "{lang}: load counts"
        );
        assert_eq!(
            result.stats.stores, result.sink.stores,
            "{lang}: store counts"
        );
    }
}

#[test]
fn phases_partition_all_instructions() {
    use interpreters::core::Phase;
    for lang in Language::ALL {
        let result = run_macro(lang, "des", Scale::Test, NullSink);
        let by_phase: u64 = Phase::ALL
            .iter()
            .map(|&p| result.stats.phase_instructions(p))
            .sum();
        assert_eq!(
            by_phase, result.stats.instructions,
            "{lang}: phases must partition the instruction count"
        );
    }
}

#[test]
fn per_command_counters_sum_to_phase_totals() {
    use interpreters::core::Phase;
    for lang in [Language::Mipsi, Language::Javelin] {
        let result = run_micro(lang, "a=b+c", Scale::Test, NullSink);
        let fd_sum: u64 = result
            .stats
            .commands_iter()
            .map(|(_, s)| s.fetch_decode)
            .sum();
        let fd_total = result.stats.phase_instructions(Phase::FetchDecode);
        // Commands receive fetch/decode retroactively; only trailing
        // loop-exit work may be unattributed.
        let unattributed = fd_total - fd_sum;
        assert!(
            (unattributed as f64) < 0.05 * fd_total as f64,
            "{lang}: {unattributed} of {fd_total} fetch/decode instructions unattributed"
        );
    }
}

#[test]
fn trace_pcs_stay_inside_declared_text() {
    // Every instruction-fetch address an interpreter generates must fall
    // inside the text segment its routines declared.
    let mut machine = Machine::new(TeeSink::new(VecSink::default(), NullSink));
    let mut tcl = interpreters::tclite::Tclite::new(&mut machine);
    tcl.run("set s 0\nfor {set i 0} {$i < 5} {incr i} { set s [expr $s + $i] }\nputs $s")
        .unwrap();
    drop(tcl);
    let text_end = interpreters::host::TEXT_BASE + machine.layout().text_bytes();
    let (_, sink) = machine.into_parts();
    assert!(!sink.a.trace.is_empty());
    for rec in &sink.a.trace {
        assert!(
            rec.pc >= interpreters::host::TEXT_BASE && rec.pc < text_end,
            "pc {:#x} outside text [{:#x}, {:#x})",
            rec.pc,
            interpreters::host::TEXT_BASE,
            text_end
        );
    }
}

#[test]
fn deterministic_runs_produce_identical_counters() {
    for lang in [Language::Tclite, Language::Perlite] {
        let a = run_macro(lang, "des", Scale::Test, NullSink);
        let b = run_macro(lang, "des", Scale::Test, NullSink);
        assert_eq!(a.stats.instructions, b.stats.instructions, "{lang}");
        assert_eq!(a.stats.commands, b.stats.commands, "{lang}");
        assert_eq!(a.console, b.console, "{lang}");
    }
}
